//! Offline drop-in shim for the subset of the [`rand` 0.8 API] this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so this crate provides a
//! source-compatible implementation of exactly the surface the FitAct
//! reproduction calls:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded through
//!   SplitMix64 (not the upstream ChaCha12 stream, but the same trait
//!   contract: seeded streams are reproducible across runs and platforms),
//! * [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive integer/float
//!   ranges) and [`Rng::gen_bool`],
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`],
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Anything outside that surface is intentionally absent; add methods here as
//! the workspace grows rather than widening blindly.
//!
//! [`rand` 0.8 API]: https://docs.rs/rand/0.8

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` seed (the only constructor the
    /// workspace actually uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, uniform over all values for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits give a uniform dyadic rational in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = uniform_u128_below(rng, span);
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = uniform_u128_below(rng, span);
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, bound)` by widening multiplication (Lemire's
/// method); bias is at most 2⁻⁶⁴ per draw, far below test resolution.
pub(crate) fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound > u64::MAX as u128 {
        // Only reachable for spans wider than u64; rejection-sample the top.
        loop {
            let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            if v < u128::MAX - u128::MAX % bound {
                return v % bound;
            }
        }
    }
    ((rng.next_u64() as u128 * bound) >> 64) & (u64::MAX as u128)
}

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let u = <$t as Standard>::sample_standard(rng);
                start + (end - start) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator.
    ///
    /// The upstream `StdRng` is ChaCha12; this shim substitutes xoshiro256++
    /// (Blackman & Vigna), which passes BigCrush and is more than adequate for
    /// initialisation, shuffling and Monte-Carlo fault sampling. Streams are
    /// reproducible for a fixed seed across runs and platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{uniform_u128_below, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u128_below(rng, i as u128 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u128_below(rng, self.len() as u128) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            let v = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&v));
            let w: f64 = rng.gen();
            assert!((0.0..1.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
            let inc = rng.gen_range(2..=3);
            assert!((2..=3).contains(&inc));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 32-element shuffle left the slice sorted");
        assert!([1u32; 0].choose(&mut rng).is_none());
    }
}
