//! Offline drop-in shim for the subset of the [`proptest` 1.x API] this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides a
//! source-compatible property-testing harness for the patterns the FitAct
//! reproduction relies on:
//!
//! * the [`proptest!`] macro with `#[test]` functions whose arguments are
//!   `name in strategy` bindings, and an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * numeric range strategies (`0u32..32`, `-10.0f32..40.0`, `1..=20`) and
//!   [`any::<T>()`] for integer types,
//! * [`prop_assert!`] / [`prop_assert_eq!`] with optional message arguments.
//!
//! Unlike upstream proptest there is no shrinking: a failing case reports the
//! sampled inputs and panics. Cases are generated deterministically (seeded
//! per test body), so failures are reproducible.
//!
//! [`proptest` 1.x API]: https://docs.rs/proptest/1

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Harness configuration: how many cases each property runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error produced by a failing `prop_assert…!`; carries the failure message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

/// A source of random test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy returned by [`any`]: the full value space of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generates arbitrary values of `T` (integers: uniform over all bit
/// patterns; floats: uniform in `[-1e6, 1e6]`, which is what the fixed-point
/// tests can meaningfully consume).
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Strategy for Any<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(-1.0e6f64..1.0e6)
    }
}

/// Runs `body` for `config.cases` deterministic cases; used by [`proptest!`].
pub fn run_cases(config: ProptestConfig, mut body: impl FnMut(&mut StdRng, u32)) {
    for case in 0..config.cases {
        // Derive a fresh, deterministic stream per case so failures print a
        // case index that fully reproduces the inputs.
        let mut rng = StdRng::seed_from_u64(
            0xF17A_C700u64 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        body(&mut rng, case);
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
    pub mod prop {}
}

/// Defines property tests: each `#[test]` function's `arg in strategy`
/// bindings are sampled per case and the body re-run for every case.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases($config, |__proptest_rng, __proptest_case| {
                    $( let $arg = $crate::Strategy::sample(&($strategy), __proptest_rng); )*
                    let __proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __proptest_result {
                        panic!(
                            "proptest case {} failed: {}\n  inputs: {}",
                            __proptest_case,
                            e.0,
                            [$( format!(concat!(stringify!($arg), " = {:?}"), $arg) ),*].join(", "),
                        );
                    }
                });
            }
        )*
    };
    // Optional `#![proptest_config(...)]` header.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, reporting the sampled
/// inputs on failure instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Discards the current case when the precondition does not hold.
///
/// Unlike upstream proptest the shim does not resample a replacement case —
/// the case simply passes vacuously — so keep assumptions loose enough that
/// a healthy fraction of cases survives.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 0u32..32, y in -10.0f32..40.0, z in 1usize..=20) {
            prop_assert!(x < 32);
            prop_assert!((-10.0..40.0).contains(&y), "y = {}", y);
            prop_assert!((1..=20).contains(&z));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_header_is_accepted(v in any::<i32>()) {
            prop_assert_eq!(v, v);
            prop_assert_ne!(v, v.wrapping_add(1));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_inputs() {
        crate::run_cases(ProptestConfig::with_cases(4), |rng, case| {
            let x = crate::Strategy::sample(&(0u32..4), rng);
            let result: Result<(), TestCaseError> = (|| {
                prop_assert!(x > 100, "x = {}", x);
                Ok(())
            })();
            if let Err(e) = result {
                panic!("proptest case {case} failed: {}", e.0);
            }
        });
    }
}
