//! Offline drop-in shim for the subset of the [`criterion` 0.5 API] this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this crate implements
//! a small wall-clock measuring harness behind the criterion surface the
//! benches call: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up for ~0.5 s, then
//! `sample_size` samples are collected, each timing a batch of iterations
//! sized so one sample takes ≥ ~2 ms. Mean, median and min are printed in a
//! criterion-like single line:
//!
//! ```text
//! matmul/nn/256           time: [1.2345 ms 1.2456 ms 1.2789 ms]
//! ```
//!
//! (min, median, mean — not criterion's confidence interval, but comparable
//! across runs of this same harness).
//!
//! [`criterion` 0.5 API]: https://docs.rs/criterion/0.5

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmark
/// work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group: a function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Conversion into a rendered benchmark id (mirrors criterion's
/// `IntoBenchmarkId` so both strings and [`BenchmarkId`] are accepted).
pub trait IntoBenchmarkId {
    /// The rendered `group/function/parameter` suffix.
    fn into_id_string(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id_string(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_id_string(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id_string(self) -> String {
        self
    }
}

/// The measurement driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    /// Iterations per timed sample (set by the harness).
    iters_per_sample: u64,
    /// Duration of the last timed sample.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it in batches sized by the harness.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id_string());
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, &mut routine);
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id_string());
        let sample_size = self.sample_size;
        self.criterion
            .run_one(&full, sample_size, &mut |b: &mut Bencher| routine(b, input));
        self
    }

    /// Finishes the group (formatting separator only in this shim).
    pub fn finish(self) {
        println!();
    }
}

/// Entry point of the measuring harness.
#[derive(Debug)]
pub struct Criterion {
    warmup: Duration,
    target_sample: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(500),
            target_sample: Duration::from_millis(2),
            // Mirrors criterion's `--test` smoke mode (`cargo bench -- --test`):
            // run every benchmark exactly once, without warm-up or sampling, so
            // CI can prove bench code still works without paying for timing.
            test_mode: std::env::args().any(|arg| arg == "--test"),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, 100, &mut routine);
        self
    }

    fn run_one(&mut self, name: &str, sample_size: usize, routine: &mut dyn FnMut(&mut Bencher)) {
        // Warm up and size the per-sample batch so a sample is long enough to
        // time reliably.
        let mut bencher = Bencher {
            iters_per_sample: 1,
            elapsed: Duration::ZERO,
        };
        if self.test_mode {
            routine(&mut bencher);
            println!("{name:<40} (smoke test: 1 iteration, not timed)");
            return;
        }
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < self.warmup {
            routine(&mut bencher);
            warmup_iters += bencher.iters_per_sample;
            // Grow batches geometrically so the warm-up loop itself is cheap.
            bencher.iters_per_sample = (bencher.iters_per_sample * 2).min(1 << 20);
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;
        let iters_per_sample =
            ((self.target_sample.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64).max(1);

        let mut samples = Vec::with_capacity(sample_size);
        bencher.iters_per_sample = iters_per_sample;
        for _ in 0..sample_size {
            routine(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{name:<40} time: [{} {} {}]",
            format_time(min),
            format_time(median),
            format_time(mean)
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.4} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.4} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.4} ms", seconds * 1e3)
    } else {
        format!("{seconds:.4} s")
    }
}

/// Declares a benchmark group function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_group_function_parameter() {
        assert_eq!(
            BenchmarkId::new("relu", "alexnet").into_id_string(),
            "relu/alexnet"
        );
        assert_eq!(BenchmarkId::from_parameter(256).into_id_string(), "256");
    }

    #[test]
    fn harness_measures_a_cheap_function() {
        let mut c = Criterion {
            warmup: Duration::from_millis(10),
            target_sample: Duration::from_micros(100),
            test_mode: false,
        };
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        let mut count = 0u64;
        group.bench_function("increment", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            })
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn test_mode_runs_each_benchmark_exactly_once() {
        let mut c = Criterion {
            warmup: Duration::from_millis(10),
            target_sample: Duration::from_micros(100),
            test_mode: true,
        };
        let mut count = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        assert_eq!(count, 1, "--test mode must not warm up or sample");
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(format_time(2.5e-9).ends_with("ns"));
        assert!(format_time(2.5e-6).ends_with("µs"));
        assert!(format_time(2.5e-3).ends_with("ms"));
        assert!(format_time(2.5).ends_with('s'));
    }
}
