//! Repeated inject → evaluate → restore fault-injection campaigns.

use crate::injector::BitFlipInjector;
use crate::map::MemoryMap;
use crate::FaultError;
use fitact_nn::metrics::SampleStats;
use fitact_nn::Network;
use fitact_tensor::Tensor;

/// Configuration of one fault-injection campaign (one point in the paper's
/// Fig. 5 / Fig. 6 plots: one network, one fault rate, many trials).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Per-bit fault rate (the paper sweeps 1e-7 … 3e-5).
    pub fault_rate: f64,
    /// Number of independent fault-injection trials.
    pub trials: usize,
    /// Evaluation batch size.
    pub batch_size: usize,
    /// Seed for the fault-site sampler.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            fault_rate: 1e-6,
            trials: 20,
            batch_size: 64,
            seed: 0,
        }
    }
}

impl CampaignConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidConfig`] for zero trials/batch size or a
    /// negative fault rate.
    pub fn validate(&self) -> Result<(), FaultError> {
        if self.trials == 0 {
            return Err(FaultError::InvalidConfig("trials must be non-zero".into()));
        }
        if self.batch_size == 0 {
            return Err(FaultError::InvalidConfig(
                "batch_size must be non-zero".into(),
            ));
        }
        if self.fault_rate < 0.0 {
            return Err(FaultError::InvalidConfig(format!(
                "fault_rate must be non-negative, got {}",
                self.fault_rate
            )));
        }
        Ok(())
    }
}

/// The outcome of a fault-injection campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Per-trial top-1 accuracy (fraction in `[0, 1]`).
    pub accuracies: Vec<f32>,
    /// Summary statistics over the trials.
    pub stats: SampleStats,
    /// Accuracy of the (quantised) network without any injected fault.
    pub fault_free_accuracy: f32,
    /// Total number of bit flips injected across all trials.
    pub total_faults: u64,
    /// The fault rate the campaign was run at.
    pub fault_rate: f64,
}

impl CampaignResult {
    /// Mean accuracy over the trials.
    pub fn mean_accuracy(&self) -> f32 {
        self.stats.mean
    }
}

/// Runs fault-injection campaigns against a network and a fixed evaluation
/// set.
#[derive(Debug)]
pub struct Campaign<'a> {
    network: &'a mut Network,
    inputs: &'a Tensor,
    targets: &'a [usize],
    map: MemoryMap,
}

impl<'a> Campaign<'a> {
    /// Creates a campaign over the full parameter memory of `network`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::EmptyMemoryMap`] if the network has no
    /// parameters.
    pub fn new(
        network: &'a mut Network,
        inputs: &'a Tensor,
        targets: &'a [usize],
    ) -> Result<Self, FaultError> {
        let map = MemoryMap::of_network(network);
        Self::with_map(network, inputs, targets, map)
    }

    /// Creates a campaign restricted to parameters whose path satisfies
    /// `filter` (the paper's Fig. 1 injects faults only into the input layer
    /// and the second convolutional layer).
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::EmptyMemoryMap`] if the filter matches nothing.
    pub fn with_layer_filter<F: Fn(&str) -> bool>(
        network: &'a mut Network,
        inputs: &'a Tensor,
        targets: &'a [usize],
        filter: F,
    ) -> Result<Self, FaultError> {
        let map = MemoryMap::of_network_filtered(network, filter);
        Self::with_map(network, inputs, targets, map)
    }

    fn with_map(
        network: &'a mut Network,
        inputs: &'a Tensor,
        targets: &'a [usize],
        map: MemoryMap,
    ) -> Result<Self, FaultError> {
        if map.is_empty() {
            return Err(FaultError::EmptyMemoryMap);
        }
        Ok(Campaign {
            network,
            inputs,
            targets,
            map,
        })
    }

    /// The memory map the campaign injects into.
    pub fn memory_map(&self) -> &MemoryMap {
        &self.map
    }

    /// Runs the campaign: `config.trials` times, sample faults at
    /// `config.fault_rate`, inject them, evaluate accuracy on the evaluation
    /// set, and restore the original parameters.
    ///
    /// Trials are independent, so they are spread across all available cores.
    /// Each trial draws its fault sites from a private RNG stream derived
    /// from `(config.seed, trial_index)` ([`BitFlipInjector::for_trial`]), so
    /// the per-trial results — and therefore the whole campaign — are
    /// **bit-identical regardless of the number of worker threads**, including
    /// the fully serial path ([`Campaign::run_serial`]). This is pinned by the
    /// `parallel_campaign_matches_serial_bit_for_bit` test.
    ///
    /// The network is returned to its pre-campaign state afterwards (this is
    /// verified by the restore-snapshot test below).
    ///
    /// # Errors
    ///
    /// Returns configuration errors and propagates evaluation failures.
    pub fn run(&mut self, config: &CampaignConfig) -> Result<CampaignResult, FaultError> {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        self.run_with_threads(config, threads)
    }

    /// Runs the campaign on the calling thread only; produces exactly the
    /// same result as [`Campaign::run`].
    ///
    /// # Errors
    ///
    /// Returns configuration errors and propagates evaluation failures.
    pub fn run_serial(&mut self, config: &CampaignConfig) -> Result<CampaignResult, FaultError> {
        self.run_with_threads(config, 1)
    }

    /// Runs the campaign with an explicit worker-thread count (mainly for
    /// scaling experiments; results do not depend on `threads`).
    ///
    /// # Errors
    ///
    /// Returns configuration errors and propagates evaluation failures.
    pub fn run_with_threads(
        &mut self,
        config: &CampaignConfig,
        threads: usize,
    ) -> Result<CampaignResult, FaultError> {
        config.validate()?;
        let snapshot = self.network.snapshot();
        let fault_free_accuracy =
            self.network
                .evaluate(self.inputs, self.targets, config.batch_size)?;
        let threads = threads.clamp(1, config.trials);
        let mut outcomes: Vec<Option<Result<(f32, u64), FaultError>>> =
            (0..config.trials).map(|_| None).collect();
        if threads <= 1 {
            run_trials(
                self.network,
                &snapshot,
                self.inputs,
                self.targets,
                &self.map,
                config,
                0,
                &mut outcomes,
            );
            // `run_trials` restores after every trial, so the borrowed
            // network ends the campaign in its pre-campaign state.
        } else {
            // Trial-level parallelism: each worker gets a private clone of the
            // network (evaluation mutates layer caches) and a contiguous range
            // of trial indices; outcome slots are disjoint `split_at_mut`
            // chunks, so workers never synchronise until the final join.
            let trials_per = config.trials.div_ceil(threads);
            let network = &*self.network;
            let (inputs, targets, map) = (self.inputs, self.targets, &self.map);
            std::thread::scope(|scope| {
                let mut remaining = outcomes.as_mut_slice();
                let mut first_trial = 0usize;
                while first_trial < config.trials {
                    let count = trials_per.min(config.trials - first_trial);
                    let (chunk, rest) = remaining.split_at_mut(count);
                    remaining = rest;
                    let mut worker_net = network.clone();
                    let snapshot = &snapshot;
                    let start = first_trial;
                    scope.spawn(move || {
                        // One campaign worker already occupies this core;
                        // nested matmul fan-out would oversubscribe the
                        // machine (results are thread-count-invariant either
                        // way).
                        fitact_tensor::matmul::serial_scope(|| {
                            run_trials(
                                &mut worker_net,
                                snapshot,
                                inputs,
                                targets,
                                map,
                                config,
                                start,
                                chunk,
                            );
                        });
                    });
                    first_trial += count;
                }
            });
        }
        let mut accuracies = Vec::with_capacity(config.trials);
        let mut total_faults = 0u64;
        for outcome in outcomes {
            let (accuracy, faults) =
                outcome.expect("every trial index is covered by exactly one worker")?;
            accuracies.push(accuracy);
            total_faults += faults;
        }
        let stats = SampleStats::from_sample(&accuracies)
            .expect("trials is non-zero, so the sample is non-empty");
        Ok(CampaignResult {
            accuracies,
            stats,
            fault_free_accuracy,
            total_faults,
            fault_rate: config.fault_rate,
        })
    }
}

/// Executes trials `first_trial .. first_trial + outcomes.len()` on `network`,
/// writing `(accuracy, fault_count)` per trial into `outcomes`.
///
/// Each trial seeds its own injector from `(config.seed, trial_index)`, so the
/// result of a trial depends only on its index — never on which worker ran it
/// or what ran before it on the same network (the snapshot restore guarantees
/// identical starting parameters).
#[allow(clippy::too_many_arguments)]
fn run_trials(
    network: &mut Network,
    snapshot: &[Tensor],
    inputs: &Tensor,
    targets: &[usize],
    map: &MemoryMap,
    config: &CampaignConfig,
    first_trial: usize,
    outcomes: &mut [Option<Result<(f32, u64), FaultError>>],
) {
    for (offset, outcome) in outcomes.iter_mut().enumerate() {
        let mut injector = BitFlipInjector::for_trial(config.seed, first_trial + offset);
        let sites = injector.sample_sites(map, config.fault_rate);
        let faults = sites.len() as u64;
        injector.inject(network, &sites);
        let result = network.evaluate(inputs, targets, config.batch_size);
        // Always restore, even if evaluation failed.
        network
            .restore(snapshot)
            .expect("snapshot taken from the same network always restores");
        *outcome = Some(
            result
                .map(|accuracy| (accuracy, faults))
                .map_err(FaultError::from),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injector::quantize_network;
    use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
    use fitact_nn::loss::CrossEntropyLoss;
    use fitact_nn::optim::Sgd;
    use fitact_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A small trained MLP on a separable 2-D problem, plus its eval set.
    fn trained_setup() -> (Network, Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(0);
        let root = Sequential::new()
            .with(Box::new(Linear::new(2, 16, &mut rng)))
            .with(Box::new(ActivationLayer::relu("h", &[16])))
            .with(Box::new(Linear::new(16, 2, &mut rng)));
        let mut net = Network::new("mlp", root);
        let inputs = init::uniform(&[128, 2], -1.0, 1.0, &mut rng);
        let targets: Vec<usize> = (0..128)
            .map(|i| {
                let row = &inputs.as_slice()[i * 2..(i + 1) * 2];
                usize::from(row[0] > row[1])
            })
            .collect();
        let loss = CrossEntropyLoss::new();
        let mut opt = Sgd::with_momentum(0.1, 0.9, 0.0);
        for _ in 0..40 {
            net.train_batch(&inputs, &targets, &loss, &mut opt).unwrap();
        }
        quantize_network(&mut net);
        (net, inputs, targets)
    }

    #[test]
    fn config_validation() {
        assert!(CampaignConfig::default().validate().is_ok());
        assert!(CampaignConfig {
            trials: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CampaignConfig {
            batch_size: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CampaignConfig {
            fault_rate: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn campaign_restores_network_after_running() {
        let (mut net, inputs, targets) = trained_setup();
        let before = net.snapshot();
        let mut campaign = Campaign::new(&mut net, &inputs, &targets).unwrap();
        campaign
            .run(&CampaignConfig {
                fault_rate: 1e-3,
                trials: 5,
                batch_size: 64,
                seed: 1,
            })
            .unwrap();
        assert_eq!(net.snapshot(), before);
    }

    #[test]
    fn zero_fault_rate_matches_fault_free_accuracy() {
        let (mut net, inputs, targets) = trained_setup();
        let mut campaign = Campaign::new(&mut net, &inputs, &targets).unwrap();
        let result = campaign
            .run(&CampaignConfig {
                fault_rate: 0.0,
                trials: 3,
                batch_size: 64,
                seed: 2,
            })
            .unwrap();
        assert_eq!(result.total_faults, 0);
        for acc in &result.accuracies {
            assert_eq!(*acc, result.fault_free_accuracy);
        }
    }

    #[test]
    fn high_fault_rate_degrades_accuracy() {
        let (mut net, inputs, targets) = trained_setup();
        let mut campaign = Campaign::new(&mut net, &inputs, &targets).unwrap();
        let clean = campaign
            .run(&CampaignConfig {
                fault_rate: 0.0,
                trials: 1,
                batch_size: 64,
                seed: 3,
            })
            .unwrap();
        let noisy = campaign
            .run(&CampaignConfig {
                fault_rate: 5e-2,
                trials: 10,
                batch_size: 64,
                seed: 3,
            })
            .unwrap();
        assert!(noisy.total_faults > 0);
        assert!(
            noisy.mean_accuracy() < clean.fault_free_accuracy,
            "noisy {} vs clean {}",
            noisy.mean_accuracy(),
            clean.fault_free_accuracy
        );
        assert_eq!(noisy.accuracies.len(), 10);
        assert_eq!(noisy.fault_rate, 5e-2);
        assert!(noisy.stats.min <= noisy.stats.median && noisy.stats.median <= noisy.stats.max);
    }

    #[test]
    fn layer_filter_limits_the_fault_space() {
        let (mut net, inputs, targets) = trained_setup();
        let full_bits = MemoryMap::of_network(&net).total_bits();
        let campaign =
            Campaign::with_layer_filter(&mut net, &inputs, &targets, |p| p.starts_with("0/"))
                .unwrap();
        assert!(campaign.memory_map().total_bits() < full_bits);
        drop(campaign);
        assert!(matches!(
            Campaign::with_layer_filter(&mut net, &inputs, &targets, |_| false),
            Err(FaultError::EmptyMemoryMap)
        ));
    }

    #[test]
    fn campaigns_are_reproducible_for_a_seed() {
        let (mut net, inputs, targets) = trained_setup();
        let config = CampaignConfig {
            fault_rate: 1e-3,
            trials: 4,
            batch_size: 64,
            seed: 9,
        };
        let a = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run(&config)
            .unwrap();
        let b = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run(&config)
            .unwrap();
        assert_eq!(a.accuracies, b.accuracies);
        assert_eq!(a.total_faults, b.total_faults);
    }

    #[test]
    fn parallel_campaign_matches_serial_bit_for_bit() {
        let (mut net, inputs, targets) = trained_setup();
        let config = CampaignConfig {
            fault_rate: 2e-3,
            trials: 9,
            batch_size: 64,
            seed: 11,
        };
        let serial = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run_serial(&config)
            .unwrap();
        // Force thread counts beyond what the machine reports, including ones
        // that split the 9 trials unevenly.
        for threads in [2, 3, 4, 16] {
            let parallel = Campaign::new(&mut net, &inputs, &targets)
                .unwrap()
                .run_with_threads(&config, threads)
                .unwrap();
            assert_eq!(
                parallel.accuracies, serial.accuracies,
                "threads = {threads}"
            );
            assert_eq!(
                parallel.total_faults, serial.total_faults,
                "threads = {threads}"
            );
            assert_eq!(parallel.stats, serial.stats, "threads = {threads}");
            assert_eq!(
                parallel.fault_free_accuracy, serial.fault_free_accuracy,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn trial_results_depend_only_on_seed_and_index() {
        let (mut net, inputs, targets) = trained_setup();
        // A 6-trial campaign's first three trials must match a 3-trial
        // campaign exactly: trial identity is (seed, index), not history.
        let long = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run(&CampaignConfig {
                fault_rate: 2e-3,
                trials: 6,
                batch_size: 64,
                seed: 7,
            })
            .unwrap();
        let short = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run(&CampaignConfig {
                fault_rate: 2e-3,
                trials: 3,
                batch_size: 64,
                seed: 7,
            })
            .unwrap();
        assert_eq!(&long.accuracies[..3], &short.accuracies[..]);
    }
}
