//! Repeated inject → evaluate → restore fault-injection campaigns.
//!
//! Two stopping rules share one trial engine:
//!
//! * [`Campaign::run`] — the classic fixed-trial-count campaign (the paper's
//!   Figs. 5/6 protocol): uniform sites, one accuracy sample per trial,
//! * [`Campaign::run_until`] — the statistical campaign: trials are
//!   stratified by layer / bit class, each trial is classified as masked /
//!   tolerable SDC / critical SDC, and batches keep launching until the
//!   pooled critical-SDC Wilson interval is narrower than a target ε (or the
//!   trial budget runs out). Because the interval tightens fastest exactly
//!   when the answer is lopsided — which low fault rates make the common
//!   case — typical campaigns stop at a fraction of the fixed budget a
//!   worst-case-variance design would need.
//!
//! Under the default [`TrialEngine::CheckpointResumed`] engine both stopping
//! rules evaluate trials from cached clean layer activations
//! ([`CheckpointCache`]): the fault-free forward runs once per campaign and
//! each trial re-executes only the layers downstream of its faults,
//! bit-identically to the full-forward engine.

use crate::checkpoint::{CheckpointCache, ResumePlan};
use crate::map::MemoryMap;
use crate::model::{FaultModel, TransientBitFlip, TrialContext};
use crate::stats::{
    stratified_half_width, stratum_sigma, z_for_confidence, StratumPool, TrialOutcome, TrialPoint,
    WilsonInterval,
};
use crate::strata::{StratifiedSampler, StratumSpec};
use crate::FaultError;
use fitact_nn::metrics::SampleStats;
use fitact_nn::{Network, NetworkSnapshot};
use fitact_tensor::Tensor;

/// Identifies the per-trial RNG stream derivation this build uses.
///
/// Campaign checkpoints and the distributed work-unit protocol embed this tag
/// so that state written by one build is only ever resumed or extended by a
/// build that derives identical fault streams — a silent derivation change
/// would otherwise merge incompatible trials into one report.
pub const TRIAL_STREAM_PROVENANCE: &str = "splitmix64/(seed, stratum, trial) v1";

/// Derives the RNG-stream seed of one trial from the campaign seed, the
/// stratum index and the trial index (SplitMix64 finalisation).
///
/// A trial's faults depend only on this triple — never on which worker ran
/// the trial or what ran before it — which is what keeps campaigns
/// bit-identical across worker-thread counts. Stratum 0 reproduces the
/// pre-stratification derivation, so uniform campaigns draw the same fault
/// sites they always have.
pub(crate) fn trial_stream_seed(seed: u64, stratum: usize, trial: usize) -> u64 {
    let seed = seed ^ (stratum as u64).wrapping_mul(0xA24B_AED4_963E_E407);
    let mut z = seed ^ (trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration of one fixed-trial-count campaign (one point in the paper's
/// Fig. 5 / Fig. 6 plots: one network, one fault rate, many trials).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Per-bit fault rate (the paper sweeps 1e-7 … 3e-5).
    pub fault_rate: f64,
    /// Number of independent fault-injection trials.
    pub trials: usize,
    /// Evaluation batch size.
    pub batch_size: usize,
    /// Seed for the fault-site sampler.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            fault_rate: 1e-6,
            trials: 20,
            batch_size: 64,
            seed: 0,
        }
    }
}

impl CampaignConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidConfig`] for zero trials/batch size or a
    /// negative fault rate.
    pub fn validate(&self) -> Result<(), FaultError> {
        if self.trials == 0 {
            return Err(FaultError::InvalidConfig("trials must be non-zero".into()));
        }
        if self.batch_size == 0 {
            return Err(FaultError::InvalidConfig(
                "batch_size must be non-zero".into(),
            ));
        }
        if self.fault_rate < 0.0 {
            return Err(FaultError::InvalidConfig(format!(
                "fault_rate must be non-negative, got {}",
                self.fault_rate
            )));
        }
        Ok(())
    }
}

/// How each round's trial budget is split across the strata.
///
/// Both policies are **deterministic functions of merged pool state** — the
/// scheduling determinism contract of `docs/distributed.md` holds for
/// either, so serial, threaded, checkpoint-resumed and distributed runs
/// stay bit-identical under both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllocationPolicy {
    /// The classic round-robin split: every stratum receives
    /// `round_trials` fresh trials per round (within one of equal at a
    /// truncated final round). This is the legacy behaviour, byte-for-byte.
    #[default]
    Equal,
    /// Neyman (variance-proportional) allocation: the round budget goes to
    /// strata proportional to `w_h · σ̃_h` — population weight times the
    /// Wilson-centre standard-deviation estimate of the stratum's
    /// critical-SDC rate — with a per-stratum floor
    /// ([`StatCampaignConfig::floor_trials`]) so no stratum starves. High-
    /// variance strata (exponent bits, early layers) absorb the budget and
    /// the stratified estimator tightens in fewer trials.
    Neyman,
}

impl AllocationPolicy {
    /// Short lowercase name — the CLI `--allocation` value and the report's
    /// `allocation` field.
    pub fn name(self) -> &'static str {
        match self {
            AllocationPolicy::Equal => "equal",
            AllocationPolicy::Neyman => "neyman",
        }
    }

    /// Parses a policy name as `--allocation` accepts it.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "equal" => Some(AllocationPolicy::Equal),
            "neyman" => Some(AllocationPolicy::Neyman),
            _ => None,
        }
    }
}

/// Configuration of a statistical (stratified, sequentially-stopped)
/// campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct StatCampaignConfig {
    /// Per-bit fault rate applied within each stratum.
    pub fault_rate: f64,
    /// Evaluation batch size.
    pub batch_size: usize,
    /// Seed for the per-trial fault streams.
    pub seed: u64,
    /// Target half-width of the pooled critical-SDC Wilson interval: the
    /// campaign stops as soon as the interval is at least this tight.
    pub epsilon: f64,
    /// Two-sided confidence level of the reported intervals (e.g. `0.95`).
    pub confidence: f64,
    /// Top-1 accuracy drop beyond which a trial counts as critical SDC.
    pub critical_threshold: f32,
    /// Trials launched per stratum per round (one parallel batch).
    pub round_trials: usize,
    /// Minimum total trials before early stopping may trigger.
    pub min_trials: usize,
    /// Total-trial budget: the final round is truncated so the campaign
    /// never exceeds it, and stops (unconverged) once it is reached.
    pub max_trials: usize,
    /// The strata trials are drawn from. Defaults to the sign / exponent /
    /// mantissa bit-class split.
    pub strata: Vec<StratumSpec>,
    /// How each round's budget is split across the strata.
    pub allocation: AllocationPolicy,
    /// Minimum trials every stratum receives per round under
    /// [`AllocationPolicy::Neyman`] (ignored under `Equal`, where every
    /// stratum receives `round_trials`). A floor of at least 1 keeps every
    /// Wilson interval accumulating calibration trials no matter how small
    /// the stratum's estimated variance becomes.
    pub floor_trials: usize,
}

impl Default for StatCampaignConfig {
    fn default() -> Self {
        StatCampaignConfig {
            fault_rate: 1e-6,
            batch_size: 64,
            seed: 0,
            epsilon: 0.02,
            confidence: 0.95,
            critical_threshold: 0.05,
            round_trials: 8,
            min_trials: 24,
            max_trials: 512,
            strata: StratumSpec::by_bit_class(),
            allocation: AllocationPolicy::Equal,
            floor_trials: 1,
        }
    }
}

impl StatCampaignConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::NonPositiveEpsilon`] for ε ≤ 0,
    /// [`FaultError::EmptyStrata`] for an empty stratum list,
    /// [`FaultError::EmptyStratum`] for a stratum with no bit classes, and
    /// [`FaultError::InvalidConfig`] for the remaining range violations.
    pub fn validate(&self) -> Result<(), FaultError> {
        if self.epsilon <= 0.0 || !self.epsilon.is_finite() {
            return Err(FaultError::NonPositiveEpsilon(self.epsilon));
        }
        if self.strata.is_empty() {
            return Err(FaultError::EmptyStrata);
        }
        for spec in &self.strata {
            if spec.bit_classes.is_empty() {
                return Err(FaultError::EmptyStratum(spec.label.clone()));
            }
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(FaultError::InvalidConfig(format!(
                "confidence must be inside (0, 1), got {}",
                self.confidence
            )));
        }
        if !(0.0..=1.0).contains(&self.critical_threshold) {
            return Err(FaultError::InvalidConfig(format!(
                "critical_threshold must be in [0, 1], got {}",
                self.critical_threshold
            )));
        }
        if self.fault_rate < 0.0 {
            return Err(FaultError::InvalidConfig(format!(
                "fault_rate must be non-negative, got {}",
                self.fault_rate
            )));
        }
        if self.batch_size == 0 {
            return Err(FaultError::InvalidConfig(
                "batch_size must be non-zero".into(),
            ));
        }
        if self.round_trials == 0 {
            return Err(FaultError::InvalidConfig(
                "round_trials must be non-zero".into(),
            ));
        }
        if self.max_trials == 0 || self.max_trials < self.min_trials {
            return Err(FaultError::InvalidConfig(format!(
                "max_trials ({}) must be non-zero and at least min_trials ({})",
                self.max_trials, self.min_trials
            )));
        }
        if self.floor_trials == 0 || self.floor_trials > self.round_trials {
            return Err(FaultError::InvalidConfig(format!(
                "floor_trials ({}) must be in 1..=round_trials ({})",
                self.floor_trials, self.round_trials
            )));
        }
        Ok(())
    }
}

/// The outcome of a fixed-trial-count campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Per-trial top-1 accuracy (fraction in `[0, 1]`).
    pub accuracies: Vec<f32>,
    /// Summary statistics over the trials.
    pub stats: SampleStats,
    /// Accuracy of the (quantised) network without any injected fault.
    pub fault_free_accuracy: f32,
    /// Total number of bit flips injected across all trials.
    pub total_faults: u64,
    /// The fault rate the campaign was run at.
    pub fault_rate: f64,
}

impl CampaignResult {
    /// Mean accuracy over the trials, or `0.0` for an empty campaign (a
    /// zero-trial result must not poison downstream aggregation with NaN).
    pub fn mean_accuracy(&self) -> f32 {
        if self.stats.count == 0 {
            0.0
        } else {
            self.stats.mean
        }
    }
}

/// One stratum's share of a statistical campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumReport {
    /// The stratum's label (from its [`StratumSpec`]).
    pub label: String,
    /// Number of bits in the stratum's fault population.
    pub population_bits: u64,
    /// The stratum's share of the total fault-space population — the weight
    /// `w_h` of the stratified estimator (weights sum to 1).
    pub weight: f64,
    /// Per-trial top-1 accuracies, in trial order.
    pub accuracies: Vec<f32>,
    /// Trials whose accuracy did not drop below the fault-free baseline.
    pub masked: usize,
    /// Trials with an accuracy drop within the critical threshold.
    pub tolerable: usize,
    /// Trials with an accuracy drop beyond the critical threshold.
    pub critical: usize,
    /// Total faults injected across the stratum's trials.
    pub total_faults: u64,
    /// Wilson interval of the stratum's critical-SDC rate.
    pub critical_ci: WilsonInterval,
    /// Wilson interval of the stratum's overall SDC rate (tolerable +
    /// critical).
    pub sdc_ci: WilsonInterval,
}

impl StratumReport {
    /// Number of trials run in this stratum.
    pub fn trials(&self) -> usize {
        self.accuracies.len()
    }

    /// Mean accuracy over the stratum's trials (`0.0` when empty).
    pub fn mean_accuracy(&self) -> f32 {
        crate::stats::mean_or_zero(&self.accuracies)
    }

    /// Point estimate of the critical-SDC rate.
    pub fn critical_rate(&self) -> f64 {
        self.critical_ci.point()
    }

    /// Point estimate of the SDC rate (tolerable + critical).
    pub fn sdc_rate(&self) -> f64 {
        self.sdc_ci.point()
    }
}

/// The outcome of a statistical campaign: per-stratum outcome counts with
/// Wilson confidence intervals, plus the stopping diagnostics.
///
/// Reading the intervals: `critical_ci` brackets the probability that one
/// trial of this stratum (faults at the configured rate, sites uniform over
/// the stratum) degrades top-1 accuracy by more than the critical threshold.
/// The campaign stops once the *pooled* interval ([`CampaignReport::pooled_critical`])
/// has half-width ≤ ε, so `converged == true` means the pooled rate is known
/// to ±ε at the configured confidence.
///
/// Note that the pooled rate is the **equal-allocation stratified mean**
/// (every stratum contributes the same number of trials), *not* the rate a
/// uniform fault model over the whole memory would show — with the
/// bit-class strata, a sign-stratum trial counts as much as a mantissa
/// trial even though the mantissa population is 16× larger. The per-stratum
/// intervals are the population-faithful quantities; for a
/// population-weighted point estimate use
/// [`CampaignReport::population_weighted_critical_rate`], and for the plain
/// uniform rate run a single [`StratumSpec::all`] stratum.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Accuracy of the (quantised) network without any injected fault.
    pub fault_free_accuracy: f32,
    /// The per-bit fault rate the campaign ran at.
    pub fault_rate: f64,
    /// Name of the fault model that was injected.
    pub model: String,
    /// The configured confidence level of every interval in the report.
    pub confidence: f64,
    /// The configured target half-width.
    pub epsilon: f64,
    /// The configured critical-SDC accuracy-drop threshold.
    pub critical_threshold: f32,
    /// Number of trial rounds launched.
    pub rounds: usize,
    /// Whether the ε target was reached within the trial budget.
    pub converged: bool,
    /// The allocation policy the campaign planned its rounds with.
    pub allocation: AllocationPolicy,
    /// One report per stratum, in the order of the configured specs.
    pub strata: Vec<StratumReport>,
}

impl CampaignReport {
    /// Total trials across all strata.
    pub fn total_trials(&self) -> usize {
        self.strata.iter().map(StratumReport::trials).sum()
    }

    /// Total faults injected across all strata.
    pub fn total_faults(&self) -> u64 {
        self.strata.iter().map(|s| s.total_faults).sum()
    }

    /// Pooled Wilson interval of the critical-SDC rate over every trial of
    /// every stratum — the quantity the stopping rule tracks.
    ///
    /// This is the equal-allocation stratified proportion (see the type-level
    /// note on weighting); the round-robin scheduler keeps every stratum's
    /// trial count within one of the others, even at the truncated final
    /// round.
    pub fn pooled_critical(&self) -> WilsonInterval {
        let critical: u64 = self.strata.iter().map(|s| s.critical as u64).sum();
        WilsonInterval::new(
            critical,
            self.total_trials() as u64,
            z_for_confidence(self.confidence),
        )
    }

    /// Pooled Wilson interval of the SDC rate (tolerable + critical).
    pub fn pooled_sdc(&self) -> WilsonInterval {
        let sdc: u64 = self
            .strata
            .iter()
            .map(|s| (s.tolerable + s.critical) as u64)
            .sum();
        WilsonInterval::new(
            sdc,
            self.total_trials() as u64,
            z_for_confidence(self.confidence),
        )
    }

    /// Point estimate of the critical-SDC rate with each stratum weighted by
    /// its share of the fault-space population — the classical stratified
    /// estimator of the rate a uniform fault model over the union of the
    /// strata would show.
    ///
    /// Returns `0.0` for an empty report. No interval accompanies this
    /// estimate (a weighted combination of binomial proportions has no
    /// Wilson-form interval); the stopping rule operates on
    /// [`CampaignReport::pooled_critical`] instead.
    pub fn population_weighted_critical_rate(&self) -> f64 {
        let total_bits: u64 = self.strata.iter().map(|s| s.population_bits).sum();
        if total_bits == 0 {
            return 0.0;
        }
        self.strata
            .iter()
            .map(|s| s.critical_rate() * s.population_bits as f64 / total_bits as f64)
            .sum()
    }

    /// Half-width of the stratified critical-SDC estimator's interval —
    /// the convergence measure the [`AllocationPolicy::Neyman`] stopping
    /// rule tracks (`z · sqrt(Σ w_h² σ̃_h² / n_h)` with each stratum's
    /// variance taken at the Wilson centre).
    ///
    /// Vacuously `0.5` while any stratum has no trials.
    pub fn stratified_critical_half_width(&self) -> f64 {
        let per_stratum: Vec<(u64, u64)> = self
            .strata
            .iter()
            .map(|s| (s.critical as u64, s.trials() as u64))
            .collect();
        let weights: Vec<f64> = self.strata.iter().map(|s| s.weight).collect();
        stratified_half_width(z_for_confidence(self.confidence), &per_stratum, &weights)
    }

    /// Looks a stratum up by label.
    pub fn stratum(&self, label: &str) -> Option<&StratumReport> {
        self.strata.iter().find(|s| s.label == label)
    }
}

/// How campaign trials evaluate the faulted network.
///
/// Both engines produce **bit-identical** results for every fault model and
/// thread count (pinned by the `checkpoint_identity` suite); they differ only
/// in cost. The resumed engine is the default; the full-forward engine
/// remains for verification and as the baseline of the
/// `campaign_throughput` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrialEngine {
    /// Snapshot the clean activation at every top-level layer boundary once
    /// per campaign ([`CheckpointCache`]), then re-execute only the suffix of
    /// the network downstream of each trial's faults:
    /// `O(depth + trials × suffix)` layer executions.
    #[default]
    CheckpointResumed,
    /// Re-run the full forward pass over the evaluation set for every trial:
    /// `O(trials × depth)` layer executions.
    FullForward,
}

/// Identity of one trial: which stratum it samples and its index within that
/// stratum's stream.
///
/// Together with the campaign seed this triple fully determines the trial's
/// fault sites and therefore its result (see [`TRIAL_STREAM_PROVENANCE`]);
/// work units of the distributed campaign protocol are contiguous ranges of
/// these identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialSpec {
    /// Index of the stratum the trial samples from.
    pub stratum: usize,
    /// The trial's index within the stratum's RNG stream.
    pub index: usize,
}

/// Plans the trial identities of one campaign round, given how many trials
/// each stratum has already been scheduled.
///
/// One round is `round_trials` fresh trials per stratum, interleaved
/// round-robin and truncated so the campaign total never exceeds
/// `max_trials` — truncation therefore keeps the per-stratum allocation
/// within one trial of equal. Returns an empty plan once the budget is
/// exhausted.
///
/// This is the **single** scheduling definition: the serial `run_until`
/// loop, the resumable variant and the distributed coordinator all plan
/// rounds through this function, which is what pins their reports
/// bit-identical to each other.
pub fn plan_round(config: &StatCampaignConfig, counts: &[usize]) -> Vec<TrialSpec> {
    let total_so_far: usize = counts.iter().sum();
    let round_size = config.round_trials * counts.len();
    let launch = round_size.min(config.max_trials.saturating_sub(total_so_far));
    let mut specs = Vec::with_capacity(launch);
    'fill: for offset in 0..config.round_trials {
        for (stratum, &done) in counts.iter().enumerate() {
            if specs.len() == launch {
                break 'fill;
            }
            specs.push(TrialSpec {
                stratum,
                index: done + offset,
            });
        }
    }
    specs
}

/// Counts one stratum's `(critical, trials)` among the scheduled points —
/// only indices below `count` enter, so replayed decisions match live ones
/// even when the pool already holds later-round trials.
fn counted_criticals(
    config: &StatCampaignConfig,
    fault_free_accuracy: f32,
    pool: &StratumPool,
    count: usize,
) -> (u64, u64) {
    let mut critical = 0u64;
    let mut trials = 0u64;
    for (_, point) in pool.iter_below(count as u64) {
        trials += 1;
        if TrialOutcome::classify(
            fault_free_accuracy,
            point.accuracy,
            config.critical_threshold,
        ) == TrialOutcome::CriticalSdc
        {
            critical += 1;
        }
    }
    (critical, trials)
}

/// The per-stratum population weights `w_h = population_h / Σ populations`.
fn population_weights(populations: &[u64]) -> Vec<f64> {
    let total: u64 = populations.iter().sum();
    populations
        .iter()
        .map(|&p| {
            if total == 0 {
                0.0
            } else {
                p as f64 / total as f64
            }
        })
        .collect()
}

/// Computes one Neyman round's per-stratum trial counts: `budget` trials
/// split proportional to `w_h · σ̃_h` (population weight × Wilson-centre σ
/// over the counted pool state), after granting every stratum the
/// configured floor.
///
/// The split is a pure function of `(config, fault_free_accuracy,
/// populations, counted pool state)`:
///
/// * fractional quotas resolve by **largest-remainder** apportionment with
///   ties broken toward the lower stratum index, so the result is exact,
///   integral, and invariant to stratum iteration order;
/// * when the budget cannot cover every floor (a truncated final round),
///   floors fill in stratum-index order;
/// * `σ̃_h` is never zero or NaN ([`stratum_sigma`]), so the shares are
///   always well defined — an all-masked stratum keeps its floor but no
///   more, a zero-trial stratum looks maximally uncertain.
///
/// The returned counts always sum to exactly `budget`.
pub fn neyman_allocations(
    config: &StatCampaignConfig,
    z: f64,
    fault_free_accuracy: f32,
    populations: &[u64],
    pools: &[StratumPool],
    counts: &[usize],
    budget: usize,
) -> Vec<usize> {
    let num_strata = counts.len();
    let mut allocations = vec![0usize; num_strata];
    if num_strata == 0 || budget == 0 {
        return allocations;
    }
    let floor = config.floor_trials.min(config.round_trials);
    let mut remaining = budget;
    for slot in allocations.iter_mut() {
        let grant = floor.min(remaining);
        *slot = grant;
        remaining -= grant;
    }
    if remaining == 0 {
        return allocations;
    }
    let weights = population_weights(populations);
    let scores: Vec<f64> = (0..num_strata)
        .map(|h| {
            let (critical, trials) =
                counted_criticals(config, fault_free_accuracy, &pools[h], counts[h]);
            weights[h] * stratum_sigma(critical, trials, z)
        })
        .collect();
    let score_sum: f64 = scores.iter().sum();
    debug_assert!(score_sum > 0.0, "σ̃ and weights are strictly positive");
    let mut assigned = 0usize;
    let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(num_strata);
    for (h, &score) in scores.iter().enumerate() {
        let quota = remaining as f64 * score / score_sum;
        // The float cap guards Σ floor(quota) against rounding past the
        // budget; mathematically Σ quota == remaining exactly.
        let base = (quota.floor() as usize).min(remaining - assigned);
        allocations[h] += base;
        assigned += base;
        remainders.push((quota - base as f64, h));
    }
    remainders.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    for &(_, h) in remainders.iter().take(remaining - assigned) {
        allocations[h] += 1;
    }
    allocations
}

/// Plans one round under the configured [`AllocationPolicy`].
///
/// Under [`AllocationPolicy::Equal`] this **is** [`plan_round`] — the legacy
/// round-robin plan, byte-for-byte. Under [`AllocationPolicy::Neyman`] the
/// round budget (`round_trials × strata`, truncated at the remaining
/// `max_trials` budget) is split by [`neyman_allocations`] and each
/// stratum's trials take the next indices of its stream.
///
/// Determinism: the plan depends only on the configuration and the *counted*
/// pool state — points with index at or above `counts[h]` are ignored
/// (`iter_below`), so a resume replay, whose pools already hold later-round
/// trials, derives exactly the plan the uninterrupted run derived at this
/// round boundary. Delivery timing can never influence the plan.
pub fn plan_round_allocated(
    config: &StatCampaignConfig,
    z: f64,
    fault_free_accuracy: f32,
    populations: &[u64],
    pools: &[StratumPool],
    counts: &[usize],
) -> Vec<TrialSpec> {
    if config.allocation == AllocationPolicy::Equal {
        return plan_round(config, counts);
    }
    let total_so_far: usize = counts.iter().sum();
    let budget =
        (config.round_trials * counts.len()).min(config.max_trials.saturating_sub(total_so_far));
    if budget == 0 {
        return Vec::new();
    }
    let allocations = neyman_allocations(
        config,
        z,
        fault_free_accuracy,
        populations,
        pools,
        counts,
        budget,
    );
    let mut specs = Vec::with_capacity(budget);
    for (stratum, &n) in allocations.iter().enumerate() {
        for offset in 0..n {
            specs.push(TrialSpec {
                stratum,
                index: counts[stratum] + offset,
            });
        }
    }
    specs
}

/// The pooled stopping decision after a completed round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundDecision {
    /// Trials counted by the decision (the scheduled trials of all completed
    /// rounds).
    pub total: usize,
    /// The convergence measure: the pooled critical-SDC Wilson half-width
    /// under [`AllocationPolicy::Equal`], the stratified estimator's
    /// half-width ([`stratified_half_width`]) under
    /// [`AllocationPolicy::Neyman`].
    pub half_width: f64,
    /// The ε target was reached with at least `min_trials` trials.
    pub converged: bool,
    /// The trial budget is spent.
    pub exhausted: bool,
}

/// Evaluates the sequential stopping rule over merged per-stratum pools.
///
/// Only trials *scheduled* so far (`counts[stratum]` per stratum) are
/// counted, so a pool holding a few early-delivered results from a later
/// round — as a mid-round distributed checkpoint may — makes exactly the
/// same decision the serial campaign made at this round boundary.
///
/// The convergence measure matches the allocation policy, because each
/// policy minimises a different variance: `Equal` tracks the legacy pooled
/// critical-SDC Wilson half-width (every trial weighted equally), `Neyman`
/// tracks the **stratified** estimator's half-width
/// `z · sqrt(Σ w_h² σ̃_h² / n_h)` — the quantity Neyman allocation is
/// optimal for (a raw pooled proportion would *widen* as the budget shifts
/// toward high-variance strata).
///
/// An **empty round state** (`counts` all zero) is explicitly defined: the
/// half-width is the vacuous `0.5` under both policies — the zero-trial
/// Wilson interval's half-width — so no sane ε can converge on no data.
pub fn stopping_decision(
    config: &StatCampaignConfig,
    z: f64,
    fault_free_accuracy: f32,
    populations: &[u64],
    pools: &[StratumPool],
    counts: &[usize],
) -> RoundDecision {
    let total: usize = counts.iter().sum();
    let half_width = match config.allocation {
        AllocationPolicy::Equal => {
            let critical: u64 = pools
                .iter()
                .zip(counts)
                .map(|(pool, &count)| counted_criticals(config, fault_free_accuracy, pool, count).0)
                .sum();
            WilsonInterval::new(critical, total as u64, z).half_width()
        }
        AllocationPolicy::Neyman => {
            let per_stratum: Vec<(u64, u64)> = pools
                .iter()
                .zip(counts)
                .map(|(pool, &count)| counted_criticals(config, fault_free_accuracy, pool, count))
                .collect();
            stratified_half_width(z, &per_stratum, &population_weights(populations))
        }
    };
    RoundDecision {
        total,
        half_width,
        converged: total >= config.min_trials && half_width <= config.epsilon,
        exhausted: total >= config.max_trials,
    }
}

/// Builds the final [`CampaignReport`] from merged per-stratum pools.
///
/// The pools must be index-contiguous (every scheduled trial completed);
/// ascending index order then reproduces the serial campaign's trial order
/// exactly, so a report assembled from distributed results is bit-identical
/// to the single-process one.
pub fn assemble_report(
    config: &StatCampaignConfig,
    model_name: &str,
    fault_free_accuracy: f32,
    sampler: &StratifiedSampler,
    pools: &[StratumPool],
    rounds: usize,
    converged: bool,
) -> CampaignReport {
    let z = z_for_confidence(config.confidence);
    let populations: Vec<u64> = (0..sampler.num_strata())
        .map(|s| sampler.population(s))
        .collect();
    let weights = population_weights(&populations);
    let strata = pools
        .iter()
        .enumerate()
        .map(|(stratum, pool)| {
            let accuracies = pool.accuracies();
            let mut masked = 0usize;
            let mut tolerable = 0usize;
            let mut critical = 0usize;
            for &a in &accuracies {
                match TrialOutcome::classify(fault_free_accuracy, a, config.critical_threshold) {
                    TrialOutcome::Masked => masked += 1,
                    TrialOutcome::TolerableSdc => tolerable += 1,
                    TrialOutcome::CriticalSdc => critical += 1,
                }
            }
            let n = accuracies.len() as u64;
            StratumReport {
                label: sampler.specs()[stratum].label.clone(),
                population_bits: sampler.population(stratum),
                weight: weights[stratum],
                accuracies,
                masked,
                tolerable,
                critical,
                total_faults: pool.total_faults(),
                critical_ci: WilsonInterval::new(critical as u64, n, z),
                sdc_ci: WilsonInterval::new((tolerable + critical) as u64, n, z),
            }
        })
        .collect();
    CampaignReport {
        fault_free_accuracy,
        fault_rate: config.fault_rate,
        model: model_name.to_owned(),
        confidence: config.confidence,
        epsilon: config.epsilon,
        critical_threshold: config.critical_threshold,
        rounds,
        converged,
        allocation: config.allocation,
        strata,
    }
}

/// Partial state of a statistical campaign: one mergeable pool of completed
/// trials per stratum, plus the number of completed rounds.
///
/// This is what a campaign checkpoint persists and what the distributed
/// coordinator accumulates. Scheduling is deterministic, so the pools alone
/// are enough to resume: replaying [`plan_round`] over them re-derives every
/// past stopping decision and continues exactly where execution stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignProgress {
    /// One pool per stratum, in configured stratum order.
    pub pools: Vec<StratumPool>,
    /// Rounds completed when the progress was captured.
    pub rounds: usize,
}

impl CampaignProgress {
    /// Empty progress for `num_strata` strata.
    pub fn empty(num_strata: usize) -> Self {
        CampaignProgress {
            pools: vec![StratumPool::new(); num_strata],
            rounds: 0,
        }
    }

    /// Total completed trials across all strata.
    pub fn total_trials(&self) -> usize {
        self.pools.iter().map(StratumPool::len).sum()
    }
}

/// What a [`Campaign::run_until_resumable`] observer tells the campaign to do
/// after a round completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignControl {
    /// Keep launching rounds.
    Continue,
    /// Stop gracefully and return the merged progress for checkpointing.
    Stop,
}

/// How a resumable campaign ended.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum RunOutcome {
    /// The campaign converged or spent its budget; the report is final.
    Finished(CampaignReport),
    /// The observer requested a graceful stop; the progress resumes the
    /// campaign later, bit-identically.
    Interrupted(CampaignProgress),
}

/// Rejects strata a datapath fault model cannot honour.
///
/// Datapath models corrupt activation slots, whose labels are not parameter
/// paths: a layer-restricted stratum cannot be honoured, and silently running
/// whole-network corruption per "layer" would report a fictitious
/// layer-vulnerability ranking.
fn check_model_strata(
    model: &dyn FaultModel,
    config: &StatCampaignConfig,
) -> Result<(), FaultError> {
    if !model.uses_parameter_sites() {
        if let Some(spec) = config.strata.iter().find(|s| s.path_prefix.is_some()) {
            return Err(FaultError::InvalidConfig(format!(
                "fault model `{}` corrupts the datapath and cannot honour the layer \
                 restriction of stratum `{}`; use bit-class strata without path prefixes",
                model.name(),
                spec.label
            )));
        }
    }
    Ok(())
}

/// Runs fault-injection campaigns against a network and a fixed evaluation
/// set.
#[derive(Debug)]
pub struct Campaign<'a> {
    network: &'a mut Network,
    inputs: &'a Tensor,
    targets: &'a [usize],
    map: MemoryMap,
    engine: TrialEngine,
}

impl<'a> Campaign<'a> {
    /// Creates a campaign over the full parameter memory of `network`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::EmptyMemoryMap`] if the network has no
    /// parameters.
    pub fn new(
        network: &'a mut Network,
        inputs: &'a Tensor,
        targets: &'a [usize],
    ) -> Result<Self, FaultError> {
        let map = MemoryMap::of_network(network);
        Self::with_map(network, inputs, targets, map)
    }

    /// Creates a campaign restricted to parameters whose path satisfies
    /// `filter` (the paper's Fig. 1 injects faults only into the input layer
    /// and the second convolutional layer).
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::EmptyMemoryMap`] if the filter matches nothing.
    pub fn with_layer_filter<F: Fn(&str) -> bool>(
        network: &'a mut Network,
        inputs: &'a Tensor,
        targets: &'a [usize],
        filter: F,
    ) -> Result<Self, FaultError> {
        let map = MemoryMap::of_network_filtered(network, filter);
        Self::with_map(network, inputs, targets, map)
    }

    fn with_map(
        network: &'a mut Network,
        inputs: &'a Tensor,
        targets: &'a [usize],
        map: MemoryMap,
    ) -> Result<Self, FaultError> {
        if map.is_empty() {
            return Err(FaultError::EmptyMemoryMap);
        }
        Ok(Campaign {
            network,
            inputs,
            targets,
            map,
            engine: TrialEngine::default(),
        })
    }

    /// The memory map the campaign injects into.
    pub fn memory_map(&self) -> &MemoryMap {
        &self.map
    }

    /// Selects the trial-evaluation engine (defaults to
    /// [`TrialEngine::CheckpointResumed`]); results are bit-identical either
    /// way.
    #[must_use]
    pub fn with_engine(mut self, engine: TrialEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The trial-evaluation engine the campaign will use.
    pub fn engine(&self) -> TrialEngine {
        self.engine
    }

    /// Establishes the campaign baseline once: under the resumed engine, one
    /// fault-free forward both snapshots the layer-boundary checkpoints and
    /// yields the baseline accuracy (and clean per-sample labels); under the
    /// full-forward engine the baseline is a plain evaluation.
    fn prepare_baseline(
        &mut self,
        batch_size: usize,
    ) -> Result<(Option<(CheckpointCache, ResumePlan)>, f32), FaultError> {
        match self.engine {
            TrialEngine::CheckpointResumed => {
                let plan = ResumePlan::of_network(self.network);
                let cache =
                    CheckpointCache::capture(self.network, self.inputs, self.targets, batch_size)?;
                let fault_free = cache.fault_free_accuracy();
                Ok((Some((cache, plan)), fault_free))
            }
            TrialEngine::FullForward => {
                let fault_free = self
                    .network
                    .evaluate(self.inputs, self.targets, batch_size)?;
                Ok((None, fault_free))
            }
        }
    }

    /// Runs the fixed-count campaign: `config.trials` times, sample faults at
    /// `config.fault_rate`, inject them, evaluate accuracy on the evaluation
    /// set, and restore the original parameters.
    ///
    /// Trials are independent, so they are spread across all available cores.
    /// Each trial draws its fault sites from a private RNG stream derived
    /// from `(config.seed, trial_index)` ([`crate::BitFlipInjector::for_trial`]), so
    /// the per-trial results — and therefore the whole campaign — are
    /// **bit-identical regardless of the number of worker threads**, including
    /// the fully serial path ([`Campaign::run_serial`]). This is pinned by the
    /// `parallel_campaign_matches_serial_bit_for_bit` test.
    ///
    /// The network is returned to its pre-campaign state afterwards (this is
    /// verified by the restore-snapshot test below).
    ///
    /// # Errors
    ///
    /// Returns configuration errors and propagates evaluation failures.
    pub fn run(&mut self, config: &CampaignConfig) -> Result<CampaignResult, FaultError> {
        self.run_with_threads(config, default_threads())
    }

    /// Runs the campaign on the calling thread only; produces exactly the
    /// same result as [`Campaign::run`].
    ///
    /// # Errors
    ///
    /// Returns configuration errors and propagates evaluation failures.
    pub fn run_serial(&mut self, config: &CampaignConfig) -> Result<CampaignResult, FaultError> {
        self.run_with_threads(config, 1)
    }

    /// Runs the campaign with an explicit worker-thread count (mainly for
    /// scaling experiments; results do not depend on `threads`).
    ///
    /// # Errors
    ///
    /// Returns configuration errors and propagates evaluation failures.
    pub fn run_with_threads(
        &mut self,
        config: &CampaignConfig,
        threads: usize,
    ) -> Result<CampaignResult, FaultError> {
        config.validate()?;
        let sampler = StratifiedSampler::uniform(&self.map)?;
        let snapshot = self.network.snapshot_full();
        let (resume, fault_free_accuracy) = self.prepare_baseline(config.batch_size)?;
        let specs: Vec<TrialSpec> = (0..config.trials)
            .map(|index| TrialSpec { stratum: 0, index })
            .collect();
        let mut workers = spawn_worker_networks(self.network, threads, specs.len());
        let records = execute_trials(
            self.network,
            &mut workers,
            &snapshot,
            self.inputs,
            self.targets,
            &sampler,
            &TransientBitFlip,
            config.fault_rate,
            config.batch_size,
            config.seed,
            resume.as_ref(),
            &specs,
        )?;
        let accuracies: Vec<f32> = records.iter().map(|r| r.accuracy).collect();
        let total_faults = records.iter().map(|r| r.faults).sum();
        let stats = SampleStats::from_sample(&accuracies)
            .expect("trials is non-zero, so the sample is non-empty");
        Ok(CampaignResult {
            accuracies,
            stats,
            fault_free_accuracy,
            total_faults,
            fault_rate: config.fault_rate,
        })
    }

    /// Runs a statistical campaign with sequential early stopping: rounds of
    /// `config.round_trials` parallel trials per stratum keep launching until
    /// the pooled critical-SDC Wilson interval has half-width ≤ ε (converged)
    /// or the trial budget is exhausted (the final round is truncated, so
    /// `config.max_trials` is never exceeded).
    ///
    /// Like [`Campaign::run`], the report is bit-identical for a fixed seed
    /// regardless of the worker-thread count, and the network is restored to
    /// its pre-campaign state.
    ///
    /// # Example
    ///
    /// ```
    /// use fitact_faults::{Campaign, StatCampaignConfig, StratumSpec, TransientBitFlip};
    /// use fitact_nn::layers::{Linear, Sequential};
    /// use fitact_nn::Network;
    /// use fitact_tensor::init;
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// # fn main() -> Result<(), fitact_faults::FaultError> {
    /// let mut rng = StdRng::seed_from_u64(0);
    /// let mut net = Network::new(
    ///     "mlp",
    ///     Sequential::new().with(Box::new(Linear::new(4, 2, &mut rng))),
    /// );
    /// let inputs = init::uniform(&[16, 4], -1.0, 1.0, &mut rng);
    /// let targets: Vec<usize> = (0..16).map(|i| i % 2).collect();
    /// let config = StatCampaignConfig {
    ///     fault_rate: 1e-3,
    ///     epsilon: 0.25, // loose target so the example stops in a few rounds
    ///     round_trials: 4,
    ///     min_trials: 8,
    ///     max_trials: 24,
    ///     strata: vec![StratumSpec::all()],
    ///     ..Default::default()
    /// };
    /// let report = Campaign::new(&mut net, &inputs, &targets)?
    ///     .run_until(&config, &TransientBitFlip)?;
    /// assert!(report.total_trials() <= 24);
    /// let pooled = report.pooled_critical();
    /// assert!(pooled.low <= pooled.high);
    /// if report.converged {
    ///     // The pooled critical-SDC rate is known to ±ε.
    ///     assert!((pooled.high - pooled.low) / 2.0 <= config.epsilon);
    /// }
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns configuration errors (including the typed
    /// [`FaultError::NonPositiveEpsilon`] / [`FaultError::EmptyStrata`] /
    /// [`FaultError::EmptyStratum`]) and propagates evaluation failures.
    pub fn run_until(
        &mut self,
        config: &StatCampaignConfig,
        model: &dyn FaultModel,
    ) -> Result<CampaignReport, FaultError> {
        self.run_until_with_threads(config, model, default_threads())
    }

    /// [`Campaign::run_until`] with an explicit worker-thread count.
    ///
    /// # Errors
    ///
    /// See [`Campaign::run_until`].
    pub fn run_until_with_threads(
        &mut self,
        config: &StatCampaignConfig,
        model: &dyn FaultModel,
        threads: usize,
    ) -> Result<CampaignReport, FaultError> {
        match self.run_until_resumable(config, model, threads, None, &mut |_| {
            CampaignControl::Continue
        })? {
            RunOutcome::Finished(report) => Ok(report),
            RunOutcome::Interrupted(_) => {
                unreachable!("the observer never requests a stop")
            }
        }
    }

    /// [`Campaign::run_until`] with graceful interruption and resume.
    ///
    /// After every round that executed fresh trials (and did not finish the
    /// campaign) the merged [`CampaignProgress`] is handed to `observer`,
    /// which either continues or requests a graceful stop — in which case the
    /// progress comes back as [`RunOutcome::Interrupted`], ready to be
    /// checkpointed.
    ///
    /// Passing previously captured pools as `resume` continues that campaign:
    /// scheduling is deterministic, so the loop replays [`plan_round`] from
    /// round zero, skips every trial already present in the pools, and
    /// re-derives each past stopping decision instead of trusting the
    /// checkpoint — the resumed campaign is **bit-identical** to one that
    /// never stopped (pinned by the `checkpoint_resume` tests). Pools holding
    /// trials the configuration never schedules (a checkpoint from a
    /// different configuration) are a typed [`FaultError::InvalidConfig`].
    ///
    /// # Errors
    ///
    /// As [`Campaign::run_until`], plus [`FaultError::InvalidConfig`] for a
    /// resume state inconsistent with `config` and
    /// [`FaultError::TrialConflict`] if an executed trial disagrees with a
    /// resumed point.
    pub fn run_until_resumable(
        &mut self,
        config: &StatCampaignConfig,
        model: &dyn FaultModel,
        threads: usize,
        resume: Option<Vec<StratumPool>>,
        observer: &mut dyn FnMut(&CampaignProgress) -> CampaignControl,
    ) -> Result<RunOutcome, FaultError> {
        config.validate()?;
        check_model_strata(model, config)?;
        let sampler = StratifiedSampler::new(&self.map, &config.strata)?;
        let z = z_for_confidence(config.confidence);
        let snapshot = self.network.snapshot_full();
        let (resume_cache, fault_free_accuracy) = self.prepare_baseline(config.batch_size)?;

        let num_strata = sampler.num_strata();
        let mut pools = match resume {
            Some(pools) => {
                if pools.len() != num_strata {
                    return Err(FaultError::InvalidConfig(format!(
                        "resume state has {} strata, configuration has {num_strata}",
                        pools.len()
                    )));
                }
                pools
            }
            None => vec![StratumPool::new(); num_strata],
        };
        let round_size = config.round_trials * num_strata;
        // Worker clones are expensive for large models; create them once and
        // reuse them across every round (each trial restores the snapshot, so
        // a worker network is interchangeable between rounds).
        let mut workers = spawn_worker_networks(self.network, threads, round_size);
        let populations: Vec<u64> = (0..num_strata).map(|s| sampler.population(s)).collect();
        let mut counts = vec![0usize; num_strata];
        let mut rounds = 0usize;
        let mut converged = false;
        loop {
            let specs = plan_round_allocated(
                config,
                z,
                fault_free_accuracy,
                &populations,
                &pools,
                &counts,
            );
            if specs.is_empty() {
                // The budget ran out exactly at a round boundary.
                break;
            }
            let missing: Vec<TrialSpec> = specs
                .iter()
                .copied()
                .filter(|s| !pools[s.stratum].contains(s.index as u64))
                .collect();
            let fresh = !missing.is_empty();
            if fresh {
                let records = execute_trials(
                    self.network,
                    &mut workers,
                    &snapshot,
                    self.inputs,
                    self.targets,
                    &sampler,
                    model,
                    config.fault_rate,
                    config.batch_size,
                    config.seed,
                    resume_cache.as_ref(),
                    &missing,
                )?;
                for (spec, point) in missing.iter().zip(records) {
                    pools[spec.stratum].insert(spec.index as u64, point)?;
                }
            }
            for spec in &specs {
                counts[spec.stratum] += 1;
            }
            rounds += 1;

            let decision = stopping_decision(
                config,
                z,
                fault_free_accuracy,
                &populations,
                &pools,
                &counts,
            );
            if decision.converged {
                converged = true;
                break;
            }
            if decision.exhausted {
                break;
            }
            if fresh {
                let progress = CampaignProgress {
                    pools: pools.clone(),
                    rounds,
                };
                if observer(&progress) == CampaignControl::Stop {
                    return Ok(RunOutcome::Interrupted(progress));
                }
            }
        }

        // Every completed trial must have been scheduled: leftovers mean the
        // resume state came from a different configuration (larger budget,
        // different round size, …) and would silently skew the report.
        for (stratum, (pool, &count)) in pools.iter().zip(&counts).enumerate() {
            if pool.len() != count {
                return Err(FaultError::InvalidConfig(format!(
                    "resume state holds {} trials for stratum {stratum} but the configuration \
                     schedules {count}; was the checkpoint written with a different configuration?",
                    pool.len()
                )));
            }
        }

        Ok(RunOutcome::Finished(assemble_report(
            config,
            model.name(),
            fault_free_accuracy,
            &sampler,
            &pools,
            rounds,
            converged,
        )))
    }
}

/// Executes individual work units — contiguous per-stratum trial ranges — of
/// a statistical campaign: the execution half of a distributed worker (and of
/// the coordinator's own local executor).
///
/// A runner owns a warm network, the campaign baseline
/// ([`CheckpointCache`] under the default engine) and pre-spawned worker
/// clones, so successive units reuse all of it. Because a trial's result
/// depends only on `(seed, stratum, index)` and the network parameters,
/// [`UnitRunner::run_unit`] returns **bit-identical** points no matter which
/// process, machine or thread count runs the unit — the invariant the whole
/// distributed protocol rests on (pinned by the `distributed_identity` test).
#[derive(Debug)]
pub struct UnitRunner {
    network: Network,
    inputs: Tensor,
    targets: Vec<usize>,
    config: StatCampaignConfig,
    sampler: StratifiedSampler,
    snapshot: NetworkSnapshot,
    resume: Option<(CheckpointCache, ResumePlan)>,
    fault_free_accuracy: f32,
    workers: Vec<Network>,
}

impl UnitRunner {
    /// Prepares a runner: resolves the strata, snapshots the parameters,
    /// captures the checkpoint baseline and spawns `threads` worker clones.
    ///
    /// # Errors
    ///
    /// Returns configuration errors ([`StatCampaignConfig::validate`]),
    /// [`FaultError::EmptyMemoryMap`] for a parameterless network, and
    /// propagates baseline-evaluation failures.
    pub fn new(
        mut network: Network,
        inputs: Tensor,
        targets: Vec<usize>,
        config: &StatCampaignConfig,
        threads: usize,
    ) -> Result<Self, FaultError> {
        config.validate()?;
        let map = MemoryMap::of_network(&network);
        if map.is_empty() {
            return Err(FaultError::EmptyMemoryMap);
        }
        let sampler = StratifiedSampler::new(&map, &config.strata)?;
        let snapshot = network.snapshot_full();
        let plan = ResumePlan::of_network(&mut network);
        let cache = CheckpointCache::capture(&mut network, &inputs, &targets, config.batch_size)?;
        let fault_free_accuracy = cache.fault_free_accuracy();
        let unit_cap = config.round_trials.max(1) * sampler.num_strata();
        let workers = spawn_worker_networks(&network, threads, unit_cap);
        Ok(UnitRunner {
            network,
            inputs,
            targets,
            config: config.clone(),
            sampler,
            snapshot,
            resume: Some((cache, plan)),
            fault_free_accuracy,
            workers,
        })
    }

    /// The fault-free baseline accuracy — identical on every worker that
    /// loaded the same artifact, and verified by the coordinator before any
    /// unit result is merged.
    pub fn fault_free_accuracy(&self) -> f32 {
        self.fault_free_accuracy
    }

    /// Number of strata the runner resolved.
    pub fn num_strata(&self) -> usize {
        self.sampler.num_strata()
    }

    /// The resolved stratified sampler (labels, populations).
    pub fn sampler(&self) -> &StratifiedSampler {
        &self.sampler
    }

    /// Runs trials `start .. start + count` of `stratum` and returns their
    /// points in index order.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidConfig`] for an out-of-range stratum or a
    /// stratum/model combination the campaign would reject, and propagates
    /// evaluation failures.
    pub fn run_unit(
        &mut self,
        model: &dyn FaultModel,
        stratum: usize,
        start: usize,
        count: usize,
    ) -> Result<Vec<TrialPoint>, FaultError> {
        check_model_strata(model, &self.config)?;
        if stratum >= self.sampler.num_strata() {
            return Err(FaultError::InvalidConfig(format!(
                "work unit names stratum {stratum}, campaign has {}",
                self.sampler.num_strata()
            )));
        }
        let specs: Vec<TrialSpec> = (start..start + count)
            .map(|index| TrialSpec { stratum, index })
            .collect();
        execute_trials(
            &mut self.network,
            &mut self.workers,
            &self.snapshot,
            &self.inputs,
            &self.targets,
            &self.sampler,
            model,
            self.config.fault_rate,
            self.config.batch_size,
            self.config.seed,
            self.resume.as_ref(),
            &specs,
        )
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Runs `specs` (in order) across `threads` workers and returns one record
/// per spec, independent of the thread count.
///
/// Clones the worker networks a campaign needs for `threads` threads over at
/// most `max_batch` trials per batch: an empty vector for the serial path.
///
/// Workers are created once per campaign and reused across every trial batch
/// — cloning a large model per round would dominate the campaign's cost.
fn spawn_worker_networks(network: &Network, threads: usize, max_batch: usize) -> Vec<Network> {
    let workers = threads.clamp(1, max_batch.max(1));
    if workers <= 1 {
        Vec::new()
    } else {
        (0..workers).map(|_| network.clone()).collect()
    }
}

/// Workers each own a private clone of the network (evaluation mutates layer
/// caches) and take a contiguous range of specs; record slots are disjoint
/// `split_at_mut` chunks, so workers never synchronise until the final join.
/// An empty `workers` slice selects the serial path on `network` itself.
///
/// `resume` carries the campaign's shared read-only [`CheckpointCache`] and
/// its site→layer [`ResumePlan`]; `None` selects the full-forward engine.
#[allow(clippy::too_many_arguments)]
fn execute_trials(
    network: &mut Network,
    workers: &mut [Network],
    snapshot: &NetworkSnapshot,
    inputs: &Tensor,
    targets: &[usize],
    sampler: &StratifiedSampler,
    model: &dyn FaultModel,
    fault_rate: f64,
    batch_size: usize,
    seed: u64,
    resume: Option<&(CheckpointCache, ResumePlan)>,
    specs: &[TrialSpec],
) -> Result<Vec<TrialPoint>, FaultError> {
    let mut outcomes: Vec<Option<Result<TrialPoint, FaultError>>> =
        specs.iter().map(|_| None).collect();
    if workers.len() <= 1 || specs.len() <= 1 {
        run_trials(
            network,
            snapshot,
            inputs,
            targets,
            sampler,
            model,
            fault_rate,
            batch_size,
            seed,
            resume,
            specs,
            &mut outcomes,
        );
        // `run_trials` restores after every trial, so the borrowed network
        // ends the batch in its pre-campaign state.
    } else {
        let per_worker = specs.len().div_ceil(workers.len());
        std::thread::scope(|scope| {
            let mut remaining_outcomes = outcomes.as_mut_slice();
            let mut remaining_specs = specs;
            let mut remaining_workers = &mut workers[..];
            while !remaining_specs.is_empty() {
                let count = per_worker.min(remaining_specs.len());
                let (chunk_specs, rest_specs) = remaining_specs.split_at(count);
                let (chunk, rest) = remaining_outcomes.split_at_mut(count);
                let (worker, rest_workers) = remaining_workers
                    .split_first_mut()
                    .expect("per-worker chunking never outruns the worker pool");
                remaining_specs = rest_specs;
                remaining_outcomes = rest;
                remaining_workers = rest_workers;
                scope.spawn(move || {
                    // One campaign worker already occupies this core; nested
                    // matmul fan-out would oversubscribe the machine (results
                    // are thread-count-invariant either way).
                    fitact_tensor::matmul::serial_scope(|| {
                        run_trials(
                            worker,
                            snapshot,
                            inputs,
                            targets,
                            sampler,
                            model,
                            fault_rate,
                            batch_size,
                            seed,
                            resume,
                            chunk_specs,
                            chunk,
                        );
                    });
                });
            }
        });
    }
    let mut records = Vec::with_capacity(specs.len());
    for outcome in outcomes {
        records.push(outcome.expect("every spec is covered by exactly one worker")?);
    }
    Ok(records)
}

/// Executes the given trials on `network`, writing one record per spec.
///
/// Each trial seeds its own stream from `(seed, stratum, index)` and consumes
/// it identically under both engines (site sampling and injection happen
/// before evaluation either way), so the result of a trial depends only on
/// its identity — never on which worker ran it, what ran before it on the
/// same network (the snapshot restore guarantees identical starting
/// parameters), or which engine evaluated it.
#[allow(clippy::too_many_arguments)]
fn run_trials(
    network: &mut Network,
    snapshot: &NetworkSnapshot,
    inputs: &Tensor,
    targets: &[usize],
    sampler: &StratifiedSampler,
    model: &dyn FaultModel,
    fault_rate: f64,
    batch_size: usize,
    seed: u64,
    resume: Option<&(CheckpointCache, ResumePlan)>,
    specs: &[TrialSpec],
    outcomes: &mut [Option<Result<TrialPoint, FaultError>>],
) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    for (spec, outcome) in specs.iter().zip(outcomes.iter_mut()) {
        let mut rng = StdRng::seed_from_u64(trial_stream_seed(seed, spec.stratum, spec.index));
        let sites = if model.uses_parameter_sites() {
            sampler.sample(spec.stratum, fault_rate, &mut rng)
        } else {
            Vec::new()
        };
        // Datapath models wrap the activation slots; keep the originals so
        // the trial can put them back (the parameter snapshot cannot).
        let activation_backup = model.perturbs_activations().then(|| {
            network
                .activation_slots()
                .into_iter()
                .map(|slot| slot.activation().clone_box())
                .collect::<Vec<_>>()
        });
        let ctx = TrialContext {
            fault_rate,
            bit_positions: sampler.bit_positions(spec.stratum),
        };
        let injection = model.inject(network, &sites, &ctx, &mut rng);
        let result = match resume {
            Some((cache, plan)) => {
                let boundary = plan.resume_boundary(model, &sites);
                cache.evaluate_resumed(network, targets, boundary)
            }
            None => network
                .evaluate(inputs, targets, batch_size)
                .map_err(FaultError::from),
        };
        let faults = injection.total();
        // Always restore, even if evaluation failed.
        if let Some(backup) = activation_backup {
            for (slot, original) in network.activation_slots().into_iter().zip(backup) {
                slot.replace_activation(original);
            }
        }
        network
            .restore_full(snapshot)
            .expect("snapshot taken from the same network always restores");
        *outcome = Some(result.map(|accuracy| TrialPoint { accuracy, faults }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injector::quantize_network;
    use crate::model::{ActivationBitFlip, MultiBitBurst, StuckAtFaultModel};
    use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
    use fitact_nn::loss::CrossEntropyLoss;
    use fitact_nn::optim::Sgd;
    use fitact_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A small trained MLP on a separable 2-D problem, plus its eval set.
    fn trained_setup() -> (Network, Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(0);
        let root = Sequential::new()
            .with(Box::new(Linear::new(2, 16, &mut rng)))
            .with(Box::new(ActivationLayer::relu("h", &[16])))
            .with(Box::new(Linear::new(16, 2, &mut rng)));
        let mut net = Network::new("mlp", root);
        let inputs = init::uniform(&[128, 2], -1.0, 1.0, &mut rng);
        let targets: Vec<usize> = (0..128)
            .map(|i| {
                let row = &inputs.as_slice()[i * 2..(i + 1) * 2];
                usize::from(row[0] > row[1])
            })
            .collect();
        let loss = CrossEntropyLoss::new();
        let mut opt = Sgd::with_momentum(0.1, 0.9, 0.0);
        for _ in 0..40 {
            net.train_batch(&inputs, &targets, &loss, &mut opt).unwrap();
        }
        quantize_network(&mut net);
        (net, inputs, targets)
    }

    #[test]
    fn config_validation() {
        assert!(CampaignConfig::default().validate().is_ok());
        assert!(CampaignConfig {
            trials: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CampaignConfig {
            batch_size: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CampaignConfig {
            fault_rate: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn stat_config_validation_uses_typed_errors() {
        assert!(StatCampaignConfig::default().validate().is_ok());
        assert!(matches!(
            StatCampaignConfig {
                epsilon: 0.0,
                ..Default::default()
            }
            .validate(),
            Err(FaultError::NonPositiveEpsilon(e)) if e == 0.0
        ));
        assert!(matches!(
            StatCampaignConfig {
                epsilon: -0.5,
                ..Default::default()
            }
            .validate(),
            Err(FaultError::NonPositiveEpsilon(_))
        ));
        assert!(matches!(
            StatCampaignConfig {
                epsilon: f64::NAN,
                ..Default::default()
            }
            .validate(),
            Err(FaultError::NonPositiveEpsilon(_))
        ));
        assert!(matches!(
            StatCampaignConfig {
                strata: vec![],
                ..Default::default()
            }
            .validate(),
            Err(FaultError::EmptyStrata)
        ));
        let no_bits = StratumSpec {
            label: "hollow".into(),
            bit_classes: vec![],
            path_prefix: None,
        };
        assert!(matches!(
            StatCampaignConfig {
                strata: vec![no_bits],
                ..Default::default()
            }
            .validate(),
            Err(FaultError::EmptyStratum(label)) if label == "hollow"
        ));
        for bad in [
            StatCampaignConfig {
                confidence: 1.0,
                ..Default::default()
            },
            StatCampaignConfig {
                critical_threshold: 2.0,
                ..Default::default()
            },
            StatCampaignConfig {
                fault_rate: -1.0,
                ..Default::default()
            },
            StatCampaignConfig {
                batch_size: 0,
                ..Default::default()
            },
            StatCampaignConfig {
                round_trials: 0,
                ..Default::default()
            },
            StatCampaignConfig {
                min_trials: 100,
                max_trials: 10,
                ..Default::default()
            },
        ] {
            assert!(matches!(bad.validate(), Err(FaultError::InvalidConfig(_))));
        }
    }

    #[test]
    fn zero_trial_result_reports_zero_mean_not_nan() {
        let empty = CampaignResult {
            accuracies: Vec::new(),
            stats: SampleStats {
                min: 0.0,
                q1: 0.0,
                median: 0.0,
                q3: 0.0,
                max: 0.0,
                mean: 0.0,
                count: 0,
            },
            fault_free_accuracy: 0.9,
            total_faults: 0,
            fault_rate: 1e-6,
        };
        assert_eq!(empty.mean_accuracy(), 0.0);
        assert!(!empty.mean_accuracy().is_nan());
    }

    #[test]
    fn campaign_restores_network_after_running() {
        let (mut net, inputs, targets) = trained_setup();
        let before = net.snapshot();
        let mut campaign = Campaign::new(&mut net, &inputs, &targets).unwrap();
        campaign
            .run(&CampaignConfig {
                fault_rate: 1e-3,
                trials: 5,
                batch_size: 64,
                seed: 1,
            })
            .unwrap();
        assert_eq!(net.snapshot(), before);
    }

    #[test]
    fn zero_fault_rate_matches_fault_free_accuracy() {
        let (mut net, inputs, targets) = trained_setup();
        let mut campaign = Campaign::new(&mut net, &inputs, &targets).unwrap();
        let result = campaign
            .run(&CampaignConfig {
                fault_rate: 0.0,
                trials: 3,
                batch_size: 64,
                seed: 2,
            })
            .unwrap();
        assert_eq!(result.total_faults, 0);
        for acc in &result.accuracies {
            assert_eq!(*acc, result.fault_free_accuracy);
        }
    }

    #[test]
    fn high_fault_rate_degrades_accuracy() {
        let (mut net, inputs, targets) = trained_setup();
        let mut campaign = Campaign::new(&mut net, &inputs, &targets).unwrap();
        let clean = campaign
            .run(&CampaignConfig {
                fault_rate: 0.0,
                trials: 1,
                batch_size: 64,
                seed: 3,
            })
            .unwrap();
        let noisy = campaign
            .run(&CampaignConfig {
                fault_rate: 5e-2,
                trials: 10,
                batch_size: 64,
                seed: 3,
            })
            .unwrap();
        assert!(noisy.total_faults > 0);
        assert!(
            noisy.mean_accuracy() < clean.fault_free_accuracy,
            "noisy {} vs clean {}",
            noisy.mean_accuracy(),
            clean.fault_free_accuracy
        );
        assert_eq!(noisy.accuracies.len(), 10);
        assert_eq!(noisy.fault_rate, 5e-2);
        assert!(noisy.stats.min <= noisy.stats.median && noisy.stats.median <= noisy.stats.max);
    }

    #[test]
    fn layer_filter_limits_the_fault_space() {
        let (mut net, inputs, targets) = trained_setup();
        let full_bits = MemoryMap::of_network(&net).total_bits();
        let campaign =
            Campaign::with_layer_filter(&mut net, &inputs, &targets, |p| p.starts_with("0/"))
                .unwrap();
        assert!(campaign.memory_map().total_bits() < full_bits);
        drop(campaign);
        assert!(matches!(
            Campaign::with_layer_filter(&mut net, &inputs, &targets, |_| false),
            Err(FaultError::EmptyMemoryMap)
        ));
    }

    #[test]
    fn campaigns_are_reproducible_for_a_seed() {
        let (mut net, inputs, targets) = trained_setup();
        let config = CampaignConfig {
            fault_rate: 1e-3,
            trials: 4,
            batch_size: 64,
            seed: 9,
        };
        let a = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run(&config)
            .unwrap();
        let b = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run(&config)
            .unwrap();
        assert_eq!(a.accuracies, b.accuracies);
        assert_eq!(a.total_faults, b.total_faults);
    }

    #[test]
    fn parallel_campaign_matches_serial_bit_for_bit() {
        let (mut net, inputs, targets) = trained_setup();
        let config = CampaignConfig {
            fault_rate: 2e-3,
            trials: 9,
            batch_size: 64,
            seed: 11,
        };
        let serial = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run_serial(&config)
            .unwrap();
        // Force thread counts beyond what the machine reports, including ones
        // that split the 9 trials unevenly.
        for threads in [2, 3, 4, 16] {
            let parallel = Campaign::new(&mut net, &inputs, &targets)
                .unwrap()
                .run_with_threads(&config, threads)
                .unwrap();
            assert_eq!(
                parallel.accuracies, serial.accuracies,
                "threads = {threads}"
            );
            assert_eq!(
                parallel.total_faults, serial.total_faults,
                "threads = {threads}"
            );
            assert_eq!(parallel.stats, serial.stats, "threads = {threads}");
            assert_eq!(
                parallel.fault_free_accuracy, serial.fault_free_accuracy,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn trial_results_depend_only_on_seed_and_index() {
        let (mut net, inputs, targets) = trained_setup();
        // A 6-trial campaign's first three trials must match a 3-trial
        // campaign exactly: trial identity is (seed, index), not history.
        let long = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run(&CampaignConfig {
                fault_rate: 2e-3,
                trials: 6,
                batch_size: 64,
                seed: 7,
            })
            .unwrap();
        let short = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run(&CampaignConfig {
                fault_rate: 2e-3,
                trials: 3,
                batch_size: 64,
                seed: 7,
            })
            .unwrap();
        assert_eq!(&long.accuracies[..3], &short.accuracies[..]);
    }

    /// The statistical config used by the `run_until` tests: aggressive rate,
    /// small rounds, tight budget so the tests stay fast in debug builds.
    fn stat_config() -> StatCampaignConfig {
        StatCampaignConfig {
            fault_rate: 2e-3,
            batch_size: 64,
            seed: 21,
            epsilon: 0.08,
            confidence: 0.95,
            critical_threshold: 0.05,
            round_trials: 4,
            min_trials: 12,
            max_trials: 96,
            strata: StratumSpec::by_bit_class(),
            ..Default::default()
        }
    }

    #[test]
    fn run_until_is_bit_identical_across_thread_counts() {
        let (mut net, inputs, targets) = trained_setup();
        let config = stat_config();
        let serial = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run_until_with_threads(&config, &TransientBitFlip, 1)
            .unwrap();
        for threads in [2, 3, 5, 16] {
            let parallel = Campaign::new(&mut net, &inputs, &targets)
                .unwrap()
                .run_until_with_threads(&config, &TransientBitFlip, threads)
                .unwrap();
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn run_until_restores_the_network_and_reports_every_stratum() {
        let (mut net, inputs, targets) = trained_setup();
        let before = net.snapshot();
        let config = stat_config();
        let report = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run_until(&config, &TransientBitFlip)
            .unwrap();
        assert_eq!(net.snapshot(), before);
        assert_eq!(report.strata.len(), 3);
        assert_eq!(report.model, "bitflip");
        assert!(report.total_trials() >= config.min_trials);
        assert!(report.total_trials() <= config.max_trials);
        assert!(report.rounds >= 1);
        for stratum in &report.strata {
            assert_eq!(
                stratum.masked + stratum.tolerable + stratum.critical,
                stratum.trials()
            );
            assert!(stratum.critical_ci.low <= stratum.critical_ci.high);
            assert!(stratum.population_bits > 0);
        }
        assert!(report.stratum("exponent").is_some());
        assert!(report.stratum("nonexistent").is_none());
        // Pooled counts line up with the strata.
        let pooled = report.pooled_critical();
        assert_eq!(pooled.trials, report.total_trials() as u64);
        assert!(report.pooled_sdc().successes >= pooled.successes);
    }

    #[test]
    fn run_until_stops_early_when_the_answer_is_obvious() {
        let (mut net, inputs, targets) = trained_setup();
        // Zero fault rate: every trial is masked, the critical-SDC interval
        // collapses as fast as Wilson allows, and the campaign must stop
        // well short of the budget.
        let config = StatCampaignConfig {
            fault_rate: 0.0,
            max_trials: 600,
            ..stat_config()
        };
        let report = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run_until(&config, &TransientBitFlip)
            .unwrap();
        assert!(report.converged);
        assert!(
            report.total_trials() < 120,
            "expected early stop, ran {} trials",
            report.total_trials()
        );
        assert_eq!(report.pooled_critical().successes, 0);
        assert!(report.pooled_critical().half_width() <= config.epsilon);
        for stratum in &report.strata {
            assert_eq!(stratum.masked, stratum.trials());
        }
    }

    #[test]
    fn datapath_models_reject_layer_restricted_strata() {
        let (mut net, inputs, targets) = trained_setup();
        let map = MemoryMap::of_network(&net);
        let config = StatCampaignConfig {
            strata: StratumSpec::by_layer(&map),
            ..stat_config()
        };
        let result = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run_until(&config, &ActivationBitFlip);
        assert!(
            matches!(result, Err(FaultError::InvalidConfig(ref msg)) if msg.contains("datapath")),
            "per-layer strata cannot be honoured by activation corruption"
        );
        // Bit-class strata (no path prefixes) remain fine.
        let config = StatCampaignConfig {
            max_trials: 12,
            min_trials: 3,
            round_trials: 1,
            ..stat_config()
        };
        assert!(Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run_until(&config, &ActivationBitFlip)
            .is_ok());
    }

    #[test]
    fn population_weighted_rate_discounts_small_strata() {
        let (mut net, inputs, targets) = trained_setup();
        let report = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run_until(&stat_config(), &TransientBitFlip)
            .unwrap();
        let weighted = report.population_weighted_critical_rate();
        assert!((0.0..=1.0).contains(&weighted));
        // The weights are the strata's population shares: the estimate must
        // lie inside the convex hull of the per-stratum rates.
        let min = report
            .strata
            .iter()
            .map(StratumReport::critical_rate)
            .fold(f64::INFINITY, f64::min);
        let max = report
            .strata
            .iter()
            .map(StratumReport::critical_rate)
            .fold(0.0, f64::max);
        assert!(weighted >= min - 1e-12 && weighted <= max + 1e-12);
    }

    #[test]
    fn run_until_gives_up_at_the_trial_budget() {
        let (mut net, inputs, targets) = trained_setup();
        // An unreachable ε with a tiny budget: the campaign must stop at the
        // budget and say so.
        let config = StatCampaignConfig {
            epsilon: 1e-6,
            min_trials: 4,
            max_trials: 12,
            ..stat_config()
        };
        let report = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run_until(&config, &TransientBitFlip)
            .unwrap();
        assert!(!report.converged);
        assert_eq!(report.total_trials(), 12);

        // A budget that is not a multiple of the round size truncates the
        // final round instead of overshooting, and round-robin scheduling
        // keeps the per-stratum allocation within one trial of equal.
        let config = StatCampaignConfig {
            epsilon: 1e-6,
            min_trials: 4,
            max_trials: 10,
            ..stat_config()
        };
        let report = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run_until(&config, &TransientBitFlip)
            .unwrap();
        assert_eq!(report.total_trials(), 10);
        let counts: Vec<usize> = report.strata.iter().map(StratumReport::trials).collect();
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "uneven stratum allocation: {counts:?}");
    }

    #[test]
    fn every_fault_model_runs_through_the_statistical_engine() {
        let (mut net, inputs, targets) = trained_setup();
        let before = net.snapshot();
        let config = StatCampaignConfig {
            max_trials: 24,
            min_trials: 6,
            round_trials: 2,
            ..stat_config()
        };
        let models: [&dyn FaultModel; 4] = [
            &TransientBitFlip,
            &MultiBitBurst { length: 4 },
            &StuckAtFaultModel,
            &ActivationBitFlip,
        ];
        for model in models {
            let report = Campaign::new(&mut net, &inputs, &targets)
                .unwrap()
                .run_until(&config, model)
                .unwrap();
            assert_eq!(report.model, model.name());
            assert!(report.total_trials() >= config.min_trials);
            assert_eq!(net.snapshot(), before, "model {}", model.name());
            for stratum in &report.strata {
                for &a in &stratum.accuracies {
                    assert!((0.0..=1.0).contains(&a), "model {}", model.name());
                }
            }
        }
    }
}
