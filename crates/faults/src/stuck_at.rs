//! Stuck-at fault model (extension beyond the paper's transient bit flips).
//!
//! The paper injects transient single-bit flips. Real memories also exhibit
//! *permanent* faults where a cell is stuck at 0 or 1 regardless of what is
//! written. This module models those: a set of bit positions is chosen once
//! (the defect map) and every affected parameter word has those bits forced to
//! the stuck value. Because the protection mechanisms under study act on
//! activation values, they are agnostic to whether the corruption was
//! transient or permanent — which makes this a natural robustness extension.

use crate::injector::{mutate_word, FaultSite};
use crate::map::MemoryMap;
use fitact_nn::Network;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The value a faulty cell is stuck at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StuckValue {
    /// The cell always reads 0.
    Zero,
    /// The cell always reads 1.
    One,
}

/// One permanent defect: a bit of one parameter word stuck at a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StuckAtFault {
    /// Where the defect is.
    pub site: FaultSite,
    /// What the cell is stuck at.
    pub value: StuckValue,
}

/// Forces the stuck bits of a defect map onto the network's parameter words.
///
/// Every affected word — the Q15.16 encoding for f32 parameters, the native
/// binary16 word, quantised byte, scale word or zero-point byte for
/// reduced-precision parameters — is rewritten with its stuck bits forced to
/// their stuck values; unlike a transient flip, applying the same defect map
/// twice is idempotent. Out-of-range elements are ignored. This is the
/// primitive shared by [`StuckAtInjector`] and [`crate::StuckAtFaultModel`].
pub fn apply_stuck_at(network: &mut Network, defects: &[StuckAtFault]) {
    if defects.is_empty() {
        return;
    }
    let mut by_param: HashMap<usize, Vec<&StuckAtFault>> = HashMap::new();
    for defect in defects {
        by_param
            .entry(defect.site.param_index)
            .or_default()
            .push(defect);
    }
    let mut index = 0usize;
    network.visit_params_mut(&mut |_, param| {
        if let Some(faults) = by_param.get(&index) {
            for fault in faults {
                let mask = 1u32 << fault.site.bit;
                mutate_word(param, fault.site.element, |bits| match fault.value {
                    StuckValue::One => bits | mask,
                    StuckValue::Zero => bits & !mask,
                });
            }
        }
        index += 1;
    });
}

/// Samples and applies permanent stuck-at faults.
#[derive(Debug, Clone)]
pub struct StuckAtInjector {
    rng: StdRng,
}

impl StuckAtInjector {
    /// Creates an injector with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        StuckAtInjector {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples a defect map: each bit of the mapped memory is defective with
    /// probability `defect_rate`, stuck at 0 or 1 with equal probability.
    ///
    /// Sampling uses the same binomial count / uniform location scheme as the
    /// transient injector, so defect maps stay cheap to draw even for large
    /// models.
    pub fn sample_defects(&mut self, map: &MemoryMap, defect_rate: f64) -> Vec<StuckAtFault> {
        if map.is_empty() || defect_rate <= 0.0 {
            return Vec::new();
        }
        let expected = (map.total_bits() as f64 * defect_rate).ceil() as u64;
        let mut seen = std::collections::HashSet::new();
        let mut defects = Vec::new();
        for _ in 0..expected {
            let address = self.rng.gen_range(0..map.total_bits());
            if !seen.insert(address) {
                continue;
            }
            if let Some((param_index, element, bit)) = map.locate(address) {
                let value = if self.rng.gen_bool(0.5) {
                    StuckValue::One
                } else {
                    StuckValue::Zero
                };
                defects.push(StuckAtFault {
                    site: FaultSite {
                        param_index,
                        element,
                        bit,
                    },
                    value,
                });
            }
        }
        defects
    }

    /// Applies a defect map to the network (see [`apply_stuck_at`]).
    pub fn apply(&self, network: &mut Network, defects: &[StuckAtFault]) {
        apply_stuck_at(network, defects);
    }

    /// Samples a defect map at `defect_rate` and applies it, returning the
    /// defects for reporting.
    pub fn inject_random(
        &mut self,
        network: &mut Network,
        map: &MemoryMap,
        defect_rate: f64,
    ) -> Vec<StuckAtFault> {
        let defects = self.sample_defects(map, defect_rate);
        self.apply(network, &defects);
        defects
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fitact_nn::layers::{Linear, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_network() -> Network {
        let mut rng = StdRng::seed_from_u64(1);
        Network::new(
            "mlp",
            Sequential::new()
                .with(Box::new(Linear::new(4, 8, &mut rng)))
                .with(Box::new(Linear::new(8, 2, &mut rng))),
        )
    }

    #[test]
    fn zero_rate_produces_no_defects() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        let mut injector = StuckAtInjector::new(0);
        assert!(injector.sample_defects(&map, 0.0).is_empty());
    }

    #[test]
    fn defect_count_roughly_tracks_rate() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        let mut injector = StuckAtInjector::new(1);
        let defects = injector.sample_defects(&map, 0.01);
        let expected = (map.total_bits() as f64 * 0.01).ceil() as usize;
        assert!(defects.len() <= expected);
        assert!(!defects.is_empty());
        // All sites are in bounds.
        let info = net.param_info();
        for d in &defects {
            assert!(d.site.param_index < info.len());
            assert!(d.site.element < info[d.site.param_index].numel);
            assert!(d.site.bit < 32);
        }
    }

    #[test]
    fn stuck_at_one_forces_the_bit() {
        let mut net = small_network();
        net.params_mut()[0].data_mut().fill(0.0);
        let injector = StuckAtInjector::new(2);
        let fault = StuckAtFault {
            site: FaultSite {
                param_index: 0,
                element: 0,
                bit: 16,
            },
            value: StuckValue::One,
        };
        injector.apply(&mut net, &[fault]);
        // Bit 16 has weight 1.0 in Q15.16.
        assert_eq!(net.params()[0].data().as_slice()[0], 1.0);
        // Applying the same defect again changes nothing (idempotent).
        injector.apply(&mut net, &[fault]);
        assert_eq!(net.params()[0].data().as_slice()[0], 1.0);
    }

    #[test]
    fn stuck_at_zero_clears_the_bit() {
        let mut net = small_network();
        net.params_mut()[0].data_mut().fill(1.5);
        let injector = StuckAtInjector::new(3);
        let fault = StuckAtFault {
            site: FaultSite {
                param_index: 0,
                element: 0,
                bit: 16,
            },
            value: StuckValue::Zero,
        };
        injector.apply(&mut net, &[fault]);
        assert_eq!(net.params()[0].data().as_slice()[0], 0.5);
        // A value whose bit is already clear is untouched.
        let fault2 = StuckAtFault {
            site: FaultSite {
                param_index: 0,
                element: 1,
                bit: 31,
            },
            value: StuckValue::Zero,
        };
        let before = net.params()[0].data().as_slice()[1];
        injector.apply(&mut net, &[fault2]);
        assert_eq!(net.params()[0].data().as_slice()[1], before);
    }

    #[test]
    fn stuck_at_forces_native_f16_and_int8_words_idempotently() {
        let mut net = small_network();
        net.quantize_to(fitact_tensor::Precision::F16);
        let injector = StuckAtInjector::new(7);
        let fault = StuckAtFault {
            site: FaultSite {
                param_index: 0,
                element: 0,
                bit: 14, // the top exponent bit of the binary16 word
            },
            value: StuckValue::One,
        };
        injector.apply(&mut net, &[fault]);
        let word = match net.params()[0].native() {
            Some(fitact_tensor::NativeParam::F16(p)) => p.words()[0],
            other => panic!("expected f16 storage, got {other:?}"),
        };
        assert_eq!(word & (1 << 14), 1 << 14);
        injector.apply(&mut net, &[fault]);
        let again = match net.params()[0].native() {
            Some(fitact_tensor::NativeParam::F16(p)) => p.words()[0],
            other => panic!("expected f16 storage, got {other:?}"),
        };
        assert_eq!(word, again, "stuck-at is idempotent on native words");

        let mut net = small_network();
        net.quantize_to(fitact_tensor::Precision::Int8);
        let numel = net.params()[0].native().unwrap().numel();
        // Stick the channel-0 scale's sign bit: a negative scale inverts the
        // whole channel — exactly the metadata corruption the model covers.
        let fault = StuckAtFault {
            site: FaultSite {
                param_index: 0,
                element: numel,
                bit: 31,
            },
            value: StuckValue::One,
        };
        injector.apply(&mut net, &[fault]);
        match net.params()[0].native() {
            Some(fitact_tensor::NativeParam::Int8(p)) => {
                assert!(p.scales()[0].is_sign_negative());
            }
            other => panic!("expected int8 storage, got {other:?}"),
        }
    }

    #[test]
    fn inject_random_applies_and_reports() {
        let mut net = small_network();
        let map = MemoryMap::of_network(&net);
        let before = net.snapshot();
        let mut injector = StuckAtInjector::new(4);
        let defects = injector.inject_random(&mut net, &map, 0.02);
        assert!(!defects.is_empty());
        assert_ne!(net.snapshot(), before);
    }

    #[test]
    fn out_of_range_sites_are_ignored() {
        let mut net = small_network();
        let before = net.snapshot();
        let injector = StuckAtInjector::new(5);
        injector.apply(
            &mut net,
            &[StuckAtFault {
                site: FaultSite {
                    param_index: 0,
                    element: 99_999,
                    bit: 0,
                },
                value: StuckValue::One,
            }],
        );
        assert_eq!(net.snapshot(), before);
    }
}
