//! Sampling and applying bit flips.

use crate::map::MemoryMap;
use crate::stats::sample_binomial;
use fitact_nn::{Network, Parameter};
use fitact_tensor::{Fixed32, NativeParam};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

/// One bit flip: which parameter, which element, which bit of its stored word.
///
/// For f32 parameters the word is the Q15.16 encoding of the value and
/// `element` indexes the tensor row-major. For native f16 parameters the word
/// is the IEEE binary16 word itself. For native int8 parameters `element`
/// addresses the *virtual axis* laid out by [`crate::MemoryMap`]: the `numel`
/// quantised values first, then the per-channel f32 scales, then the
/// per-channel zero-points — so scale/zero-point corruption is expressible
/// with the same site type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSite {
    /// Index of the parameter in the network's traversal order.
    pub param_index: usize,
    /// Element index within the parameter's stored words (virtual axis for
    /// int8 parameters — see the type docs).
    pub element: usize,
    /// Bit index within the stored word (0 = least significant).
    pub bit: u32,
}

/// Width in bits of the stored word at `element`, honouring the parameter's
/// native encoding (and the int8 virtual axis). `None` if out of range.
pub(crate) fn word_width(param: &Parameter, element: usize) -> Option<u32> {
    match param.native() {
        None => (element < param.numel()).then_some(32),
        Some(NativeParam::F16(p)) => (element < p.numel()).then_some(16),
        Some(NativeParam::Int8(p)) => {
            let (numel, channels) = (p.numel(), p.channels());
            if element < numel {
                Some(8) // a quantised value byte
            } else if element < numel + channels {
                Some(32) // an IEEE f32 scale word
            } else if element < numel + 2 * channels {
                Some(8) // a zero-point byte
            } else {
                None
            }
        }
    }
}

/// Applies `mutate` to the raw bits of the stored word at `element`,
/// dispatching on the parameter's native encoding. The closure receives the
/// current word zero-extended to 32 bits and returns the new word, which is
/// truncated back to the storage width. Out-of-range elements are ignored.
pub(crate) fn mutate_word(param: &mut Parameter, element: usize, mutate: impl FnOnce(u32) -> u32) {
    let Some(native) = param.native_mut() else {
        if let Some(value) = param.data_mut().as_mut_slice().get_mut(element) {
            let bits = Fixed32::from_f32(*value).bits();
            *value = Fixed32::from_bits(mutate(bits)).to_f32();
        }
        return;
    };
    match native {
        NativeParam::F16(p) => {
            if element < p.numel() {
                let word = &mut p.words_mut()[element];
                *word = mutate(u32::from(*word)) as u16;
            }
        }
        NativeParam::Int8(p) => {
            let (numel, channels) = (p.numel(), p.channels());
            if element < numel {
                let q = &mut p.q_mut()[element];
                *q = mutate(*q as u8 as u32) as u8 as i8;
            } else if element < numel + channels {
                let scale = &mut p.scales_mut()[element - numel];
                *scale = f32::from_bits(mutate(scale.to_bits()));
            } else if element < numel + 2 * channels {
                let zp = &mut p.zero_points_mut()[element - numel - channels];
                *zp = mutate(*zp as u8 as u32) as u8 as i8;
            }
        }
    }
}

/// XOR-flips the given bits of the network's stored parameter words.
///
/// An f32 parameter scalar is encoded to Q15.16, has the selected bit
/// flipped, and is decoded back — exactly what a memory bit flip does to a
/// fixed-point parameter word. Native parameters are corrupted in their own
/// storage: an f16 site flips a bit of the binary16 word, and an int8 site
/// flips a bit of the quantised byte, the f32 scale word or the zero-point
/// byte its virtual-axis element addresses. Out-of-range elements are
/// ignored. This is the primitive shared by [`BitFlipInjector`],
/// [`crate::TransientBitFlip`] and [`crate::MultiBitBurst`].
pub fn apply_bit_flips(network: &mut Network, sites: &[FaultSite]) {
    if sites.is_empty() {
        return;
    }
    // Group sites per parameter index for a single traversal.
    let mut by_param: HashMap<usize, Vec<(usize, u32)>> = HashMap::new();
    for site in sites {
        by_param
            .entry(site.param_index)
            .or_default()
            .push((site.element, site.bit));
    }
    let mut index = 0usize;
    network.visit_params_mut(&mut |_, param| {
        if let Some(flips) = by_param.get(&index) {
            for &(element, bit) in flips {
                mutate_word(param, element, |bits| bits ^ (1 << bit));
            }
        }
        index += 1;
    });
}

/// Expands each seed site into a burst of `length` adjacent bit flips clamped
/// at its stored word's boundary, de-duplicates overlapping bursts, applies
/// the flips and returns how many distinct bits were flipped.
///
/// The clamp honours the native word width: a burst seeded in an f16 word
/// stops at bit 15, one seeded in an int8 byte at bit 7 — a multi-cell upset
/// cannot reach past the cells that store the word. This is the primitive
/// behind [`crate::MultiBitBurst`].
pub fn apply_bit_flip_bursts(network: &mut Network, sites: &[FaultSite], length: u32) -> u64 {
    if sites.is_empty() {
        return 0;
    }
    let mut by_param: HashMap<usize, Vec<(usize, u32)>> = HashMap::new();
    for site in sites {
        by_param
            .entry(site.param_index)
            .or_default()
            .push((site.element, site.bit));
    }
    let mut flipped = 0u64;
    let mut index = 0usize;
    network.visit_params_mut(&mut |_, param| {
        if let Some(seeds) = by_param.get(&index) {
            let mut seen: HashSet<(usize, u32)> = HashSet::new();
            for &(element, seed_bit) in seeds {
                let Some(width) = word_width(param, element) else {
                    continue;
                };
                for bit in seed_bit..(seed_bit + length).min(width) {
                    if seen.insert((element, bit)) {
                        mutate_word(param, element, |bits| bits ^ (1 << bit));
                        flipped += 1;
                    }
                }
            }
        }
        index += 1;
    });
    flipped
}

/// Samples fault sites at a per-bit fault rate and applies them to a network.
///
/// The number of faults per trial follows the binomial distribution
/// `Binomial(total_bits, rate)` implied by independent per-bit flips; it is
/// sampled exactly for small expected counts and through the normal
/// approximation for large ones. Fault locations are uniform over the mapped
/// bits, in line with the paper ("the fault space would be distributed
/// uniformly over random locations in the target units") — internally this is
/// the degenerate single-stratum case of [`crate::StratifiedSampler`], which is also
/// what stratified campaigns use per stratum.
#[derive(Debug, Clone)]
pub struct BitFlipInjector {
    rng: StdRng,
}

impl BitFlipInjector {
    /// Creates an injector with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        BitFlipInjector {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates an injector whose stream is derived from a campaign seed and a
    /// trial index.
    ///
    /// The derivation is a SplitMix64 finalisation of the pair, so streams of
    /// neighbouring trials are statistically independent and a trial's faults
    /// depend only on `(seed, trial)` — the property that lets campaigns run
    /// trials on any number of threads, in any order, and stay bit-identical
    /// to a serial run.
    pub fn for_trial(seed: u64, trial: usize) -> Self {
        BitFlipInjector::new(crate::campaign::trial_stream_seed(seed, 0, trial))
    }

    /// Samples the number of bit flips for one trial.
    pub fn sample_flip_count(&mut self, total_bits: u64, rate: f64) -> u64 {
        sample_binomial(&mut self.rng, total_bits, rate)
    }

    /// Samples the fault sites for one trial at the given per-bit fault rate,
    /// uniformly over the mapped bits.
    ///
    /// Duplicate bit addresses are de-duplicated (flipping the same bit twice
    /// is a no-op), which matches the with-replacement approximation used by
    /// fault-injection tools at these rates. For sampling restricted to bit
    /// classes or layers, build a [`crate::StratifiedSampler`]; this method samples
    /// the same distribution as that sampler's single all-bits stratum, but
    /// directly against the borrowed map so per-trial callers pay no
    /// allocation for stratum resolution.
    pub fn sample_sites(&mut self, map: &MemoryMap, rate: f64) -> Vec<FaultSite> {
        if map.is_empty() {
            return Vec::new();
        }
        crate::stats::sample_addresses(&mut self.rng, map.total_bits(), rate)
            .into_iter()
            .filter_map(|address| {
                map.locate(address)
                    .map(|(param_index, element, bit)| FaultSite {
                        param_index,
                        element,
                        bit,
                    })
            })
            .collect()
    }

    /// Applies the given fault sites to the network's parameters (see
    /// [`apply_bit_flips`]).
    pub fn inject(&self, network: &mut Network, sites: &[FaultSite]) {
        apply_bit_flips(network, sites);
    }

    /// Samples and applies one trial's faults in a single call, returning the
    /// sites that were injected.
    pub fn inject_random(
        &mut self,
        network: &mut Network,
        map: &MemoryMap,
        rate: f64,
    ) -> Vec<FaultSite> {
        let sites = self.sample_sites(map, rate);
        self.inject(network, &sites);
        sites
    }
}

/// Rounds every stored parameter of the network to its Q15.16 representation.
///
/// Call this once after training so that the fault-free baseline accuracy is
/// measured with the same fixed-point arithmetic the fault trials perturb.
pub fn quantize_network(network: &mut Network) {
    network.visit_params_mut(&mut |_, param| {
        fitact_tensor::fixed::quantize_slice_in_place(param.data_mut().as_mut_slice());
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use fitact_nn::layers::{Linear, Sequential};
    use fitact_nn::Mode;
    use fitact_tensor::Tensor;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_network() -> Network {
        let mut rng = StdRng::seed_from_u64(1);
        Network::new(
            "mlp",
            Sequential::new()
                .with(Box::new(Linear::new(4, 8, &mut rng)))
                .with(Box::new(Linear::new(8, 2, &mut rng))),
        )
    }

    #[test]
    fn zero_rate_produces_no_faults() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        let mut injector = BitFlipInjector::new(0);
        assert!(injector.sample_sites(&map, 0.0).is_empty());
        assert_eq!(injector.sample_flip_count(1000, 0.0), 0);
    }

    #[test]
    fn expected_flip_count_tracks_rate() {
        let mut injector = BitFlipInjector::new(2);
        let n = 1_000_000u64;
        let rate = 1e-4;
        let trials = 200;
        let total: u64 = (0..trials)
            .map(|_| injector.sample_flip_count(n, rate))
            .sum();
        let mean = total as f64 / trials as f64;
        let expected = n as f64 * rate; // 100
        assert!(
            (mean - expected).abs() < 15.0,
            "mean {mean}, expected {expected}"
        );
    }

    #[test]
    fn large_mean_uses_normal_approximation_sanely() {
        let mut injector = BitFlipInjector::new(3);
        let n = 10_000_000u64;
        let rate = 1e-3; // mean 10_000
        let count = injector.sample_flip_count(n, rate);
        assert!((5_000..15_000).contains(&count), "count {count}");
        // Degenerate edges.
        assert_eq!(injector.sample_flip_count(0, 0.5), 0);
        assert_eq!(injector.sample_flip_count(10, 1.0), 10);
    }

    #[test]
    fn inject_changes_exactly_the_targeted_value() {
        let mut net = small_network();
        let before = net.snapshot();
        let injector = BitFlipInjector::new(4);
        // Flip the sign bit of element 3 of the first parameter.
        let site = FaultSite {
            param_index: 0,
            element: 3,
            bit: 31,
        };
        injector.inject(&mut net, &[site]);
        let after = net.snapshot();
        let mut changed = 0;
        for (b, a) in before.iter().zip(&after) {
            for (x, y) in b.as_slice().iter().zip(a.as_slice()) {
                if x != y {
                    changed += 1;
                }
            }
        }
        assert_eq!(changed, 1);
        // The sign-bit flip of a small weight produces a huge-magnitude value.
        assert!(after[0].as_slice()[3].abs() > 30_000.0);
    }

    #[test]
    fn inject_same_bit_twice_restores_value() {
        let mut net = small_network();
        quantize_network(&mut net);
        let before = net.snapshot();
        let injector = BitFlipInjector::new(5);
        let site = FaultSite {
            param_index: 1,
            element: 0,
            bit: 17,
        };
        injector.inject(&mut net, &[site]);
        injector.inject(&mut net, &[site]);
        let after = net.snapshot();
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b, a);
        }
    }

    #[test]
    fn out_of_range_element_is_ignored() {
        let mut net = small_network();
        let before = net.snapshot();
        let injector = BitFlipInjector::new(6);
        injector.inject(
            &mut net,
            &[FaultSite {
                param_index: 0,
                element: 10_000,
                bit: 0,
            }],
        );
        assert_eq!(net.snapshot(), before);
    }

    #[test]
    fn inject_random_respects_layer_filter() {
        let mut net = small_network();
        let map = MemoryMap::of_network_filtered(&net, |p| p.starts_with("0/"));
        let before = net.snapshot();
        let mut injector = BitFlipInjector::new(7);
        // Very high rate so many faults land.
        injector.inject_random(&mut net, &map, 1e-2);
        let after = net.snapshot();
        // Parameters of the second linear layer (indices 2, 3) are untouched.
        assert_eq!(before[2], after[2]);
        assert_eq!(before[3], after[3]);
        // At rate 1e-2 over 320 bits of the first layer, at least one flip is
        // overwhelmingly likely.
        assert!(before[0] != after[0] || before[1] != after[1]);
    }

    #[test]
    fn quantize_network_rounds_to_fixed_point_grid() {
        let mut net = small_network();
        net.params_mut()[0].data_mut().as_mut_slice()[0] = 0.1234567;
        quantize_network(&mut net);
        let v = net.params()[0].data().as_slice()[0];
        assert_eq!(v, Fixed32::quantize(v));
        assert!((v - 0.1234567).abs() < 1.0 / 65536.0);
    }

    #[test]
    fn faulty_forward_still_runs() {
        let mut net = small_network();
        let map = MemoryMap::of_network(&net);
        let mut injector = BitFlipInjector::new(8);
        injector.inject_random(&mut net, &map, 1e-2);
        let y = net.forward(&Tensor::zeros(&[2, 4]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 2]);
    }

    fn f16_network() -> Network {
        let mut net = small_network();
        net.quantize_to(fitact_tensor::Precision::F16);
        net
    }

    fn int8_network() -> Network {
        let mut net = small_network();
        net.quantize_to(fitact_tensor::Precision::Int8);
        net
    }

    #[test]
    fn f16_flip_targets_the_native_word_and_double_flip_restores() {
        let mut net = f16_network();
        let before: Vec<u16> = match net.params()[0].native() {
            Some(fitact_tensor::NativeParam::F16(p)) => p.words().to_vec(),
            other => panic!("expected f16 storage, got {other:?}"),
        };
        let site = FaultSite {
            param_index: 0,
            element: 3,
            bit: 15, // the binary16 sign bit
        };
        apply_bit_flips(&mut net, &[site]);
        let after: Vec<u16> = match net.params()[0].native() {
            Some(fitact_tensor::NativeParam::F16(p)) => p.words().to_vec(),
            other => panic!("expected f16 storage, got {other:?}"),
        };
        assert_eq!(after[3], before[3] ^ 0x8000);
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            if i != 3 {
                assert_eq!(b, a, "word {i} untouched");
            }
        }
        apply_bit_flips(&mut net, &[site]);
        let restored: Vec<u16> = match net.params()[0].native() {
            Some(fitact_tensor::NativeParam::F16(p)) => p.words().to_vec(),
            other => panic!("expected f16 storage, got {other:?}"),
        };
        assert_eq!(restored, before, "XOR twice is the identity on raw words");
    }

    #[test]
    fn int8_virtual_axis_reaches_values_scales_and_zero_points() {
        let mut net = int8_network();
        let (q0, scales0, zps0, numel, channels) = match net.params()[0].native() {
            Some(fitact_tensor::NativeParam::Int8(p)) => (
                p.q().to_vec(),
                p.scales().to_vec(),
                p.zero_points().to_vec(),
                p.numel(),
                p.channels(),
            ),
            other => panic!("expected int8 storage, got {other:?}"),
        };
        let sites = [
            // A value byte: bit 7 is its sign bit.
            FaultSite {
                param_index: 0,
                element: 1,
                bit: 7,
            },
            // The channel-0 scale word: flip an exponent bit of the f32.
            FaultSite {
                param_index: 0,
                element: numel,
                bit: 23,
            },
            // The last zero-point byte.
            FaultSite {
                param_index: 0,
                element: numel + 2 * channels - 1,
                bit: 0,
            },
        ];
        apply_bit_flips(&mut net, &sites);
        match net.params()[0].native() {
            Some(fitact_tensor::NativeParam::Int8(p)) => {
                assert_eq!(p.q()[1], (q0[1] as u8 ^ 0x80) as i8);
                assert_eq!(p.scales()[0].to_bits(), scales0[0].to_bits() ^ (1 << 23));
                assert_eq!(
                    p.zero_points()[channels - 1],
                    (zps0[channels - 1] as u8 ^ 1) as i8
                );
                // Everything not addressed is untouched.
                assert_eq!(p.q()[0], q0[0]);
                assert!(p.scales()[1..]
                    .iter()
                    .zip(&scales0[1..])
                    .all(|(a, b)| a.to_bits() == b.to_bits()));
            }
            other => panic!("expected int8 storage, got {other:?}"),
        }
        // Flipping the same sites again restores every word.
        apply_bit_flips(&mut net, &sites);
        match net.params()[0].native() {
            Some(fitact_tensor::NativeParam::Int8(p)) => {
                assert_eq!(p.q(), &q0[..]);
                assert!(p
                    .scales()
                    .iter()
                    .zip(&scales0)
                    .all(|(a, b)| a.to_bits() == b.to_bits()));
                assert_eq!(p.zero_points(), &zps0[..]);
            }
            other => panic!("expected int8 storage, got {other:?}"),
        }
    }

    #[test]
    fn bursts_clamp_at_the_native_word_boundary() {
        // A burst of 8 seeded at bit 14 of an f16 word covers bits 14..16,
        // not 14..22: the upset cannot reach past the 16 cells of the word.
        let mut net = f16_network();
        let sites = [FaultSite {
            param_index: 0,
            element: 0,
            bit: 14,
        }];
        let flipped = apply_bit_flip_bursts(&mut net, &sites, 8);
        assert_eq!(flipped, 2);
        // Int8 value bytes clamp at 8 bits.
        let mut net = int8_network();
        let flipped = apply_bit_flip_bursts(
            &mut net,
            &[FaultSite {
                param_index: 0,
                element: 0,
                bit: 6,
            }],
            8,
        );
        assert_eq!(flipped, 2);
        // An f32 scale word keeps the full 32-bit clamp.
        let numel = net.params()[0].native().unwrap().numel();
        let flipped = apply_bit_flip_bursts(
            &mut net,
            &[FaultSite {
                param_index: 0,
                element: numel,
                bit: 28,
            }],
            8,
        );
        assert_eq!(flipped, 4);
    }

    #[test]
    fn full_snapshot_restores_native_corruption_bit_exactly() {
        let mut net = f16_network();
        let snapshot = net.snapshot_full();
        let mut injector = BitFlipInjector::new(9);
        let map = MemoryMap::of_network(&net);
        let sites = injector.sample_sites(&map, 5e-2);
        assert!(!sites.is_empty());
        injector.inject(&mut net, &sites);
        net.restore_full(&snapshot).unwrap();
        let words = |n: &Network| -> Vec<u16> {
            n.params()
                .iter()
                .filter_map(|p| match p.native() {
                    Some(fitact_tensor::NativeParam::F16(f)) => Some(f.words().to_vec()),
                    _ => None,
                })
                .flatten()
                .collect()
        };
        let restored = words(&net);
        let mut reference = small_network();
        reference.quantize_to(fitact_tensor::Precision::F16);
        assert_eq!(restored, words(&reference));
    }

    proptest! {
        /// Every sampled site is within the bounds of the memory map.
        #[test]
        fn sampled_sites_are_in_bounds(seed in 0u64..1000, rate in 1e-6f64..1e-2) {
            let net = small_network();
            let map = MemoryMap::of_network(&net);
            let mut injector = BitFlipInjector::new(seed);
            let info = net.param_info();
            for site in injector.sample_sites(&map, rate) {
                prop_assert!(site.param_index < info.len());
                prop_assert!(site.element < info[site.param_index].numel);
                prop_assert!(site.bit < 32);
            }
        }

        /// Injecting and re-injecting the same low-order bit flip is an
        /// involution on a quantised network. (High-order integer/sign bits
        /// are excluded: the corrupted intermediate value can exceed the 24-bit
        /// mantissa of the `f32` working representation, so the round trip is
        /// only exact up to that rounding — the deterministic tests above cover
        /// one such case explicitly.)
        #[test]
        fn double_injection_of_low_bits_is_identity(
            param_index in 0usize..4,
            element in 0usize..2,
            bit in 0u32..20,
        ) {
            let mut net = small_network();
            quantize_network(&mut net);
            let before = net.snapshot();
            let injector = BitFlipInjector::new(0);
            let site = FaultSite { param_index, element, bit };
            injector.inject(&mut net, &[site]);
            injector.inject(&mut net, &[site]);
            prop_assert_eq!(net.snapshot(), before);
        }
    }
}
