//! Fault injection and statistical resilience evaluation for DNN parameter
//! memory.
//!
//! The paper's fault model: model parameters (weights, biases, batch-norm
//! statistics and activation-function bounds) are stored as 32-bit Q15.16
//! fixed-point words; random memory faults flip individual bits of those words
//! uniformly over the whole parameter space, at a configurable per-bit fault
//! rate between 1e-7 and 3e-5.
//!
//! Reduced-precision networks are faulted in their *native* encodings
//! ([`WordEncoding`]): an f16 parameter exposes 16-bit binary16 words (sign /
//! 5-bit exponent / 10-bit mantissa classes), and an int8 parameter exposes
//! its quantised value bytes plus — on the same virtual element axis — its
//! per-channel f32 scale words and zero-point bytes, so corruption of the
//! quantisation metadata itself is part of the fault space. Bit-class strata
//! resolve per encoding, bursts clamp at the native word boundary, and the
//! campaign determinism contract (bit-identical across thread counts,
//! checkpoint resume and distributed merge) holds in every precision.
//!
//! The crate provides:
//!
//! * [`MemoryMap`] — the addressable parameter memory of a network (optionally
//!   restricted to particular layers, as in the paper's Fig. 1 experiment),
//! * [`FaultModel`] — the failure-mode taxonomy: transient parameter bit
//!   flips ([`TransientBitFlip`]), multi-cell bursts ([`MultiBitBurst`]),
//!   permanent stuck-at defects ([`StuckAtFaultModel`]) and datapath
//!   activation-value flips ([`ActivationBitFlip`]),
//! * [`StratifiedSampler`] / [`StratumSpec`] / [`BitClass`] — fault-site
//!   sampling stratified by layer and by sign / exponent / mantissa bit
//!   class,
//! * [`CanaryInjector`] — a persistent datapath-injector handle for shadow
//!   ("canary") replicas in the serving path, reporting live fault counts so
//!   detection coverage can be measured against violation telemetry,
//! * [`Campaign`] — the trial engine: [`Campaign::run`] for fixed-count
//!   campaigns (paper Figs. 5 and 6) and [`Campaign::run_until`] for
//!   stratified campaigns with masked / tolerable-SDC / critical-SDC outcome
//!   classification ([`TrialOutcome`]), per-stratum Wilson confidence
//!   intervals ([`WilsonInterval`]) and sequential early stopping,
//! * [`CheckpointCache`] / [`ResumePlan`] / [`TrialEngine`] — the
//!   checkpoint-resumed evaluation engine: clean layer-boundary activations
//!   are snapshotted once per campaign and each trial re-executes only the
//!   network suffix downstream of its faults, bit-identically to a full
//!   forward,
//! * [`BitFlipInjector`] / [`StuckAtInjector`] — the low-level sample +
//!   apply primitives,
//! * [`quantize_network`] — rounds every stored parameter to its Q15.16
//!   representation, so that the fault-free baseline and the faulty runs use
//!   the same arithmetic.
//!
//! # Example
//!
//! ```
//! use fitact_faults::{BitFlipInjector, MemoryMap};
//! use fitact_nn::layers::{Linear, Sequential};
//! use fitact_nn::Network;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), fitact_faults::FaultError> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let net = Network::new("mlp", Sequential::new().with(Box::new(Linear::new(4, 2, &mut rng))));
//! let map = MemoryMap::of_network(&net);
//! assert_eq!(map.total_bits(), (4 * 2 + 2) * 32);
//! let mut injector = BitFlipInjector::new(7);
//! let sites = injector.sample_sites(&map, 1e-2);
//! assert!(sites.len() < map.total_bits() as usize);
//! # Ok(())
//! # }
//! ```
//!
//! And the statistical campaign end-to-end — inject, classify, stop when
//! the pooled critical-SDC interval is tight enough:
//!
//! ```
//! use fitact_faults::{Campaign, StatCampaignConfig, StratumSpec, TransientBitFlip};
//! use fitact_nn::layers::{Linear, Sequential};
//! use fitact_nn::Network;
//! use fitact_tensor::init;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), fitact_faults::FaultError> {
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut net = Network::new(
//!     "mlp",
//!     Sequential::new().with(Box::new(Linear::new(4, 2, &mut rng))),
//! );
//! let inputs = init::uniform(&[16, 4], -1.0, 1.0, &mut rng);
//! let targets: Vec<usize> = (0..16).map(|i| i % 2).collect();
//! let config = StatCampaignConfig {
//!     fault_rate: 1e-3,
//!     epsilon: 0.25,
//!     round_trials: 4,
//!     min_trials: 8,
//!     max_trials: 24,
//!     strata: vec![StratumSpec::all()],
//!     ..Default::default()
//! };
//! let report = Campaign::new(&mut net, &inputs, &targets)?
//!     .run_until(&config, &TransientBitFlip)?;
//! println!(
//!     "critical-SDC rate {:.3} after {} trials (converged: {})",
//!     report.pooled_critical().point(),
//!     report.total_trials(),
//!     report.converged,
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod campaign;
mod checkpoint;
mod injector;
mod json;
mod map;
mod model;
mod stats;
mod strata;
mod stuck_at;

pub use campaign::{
    assemble_report, neyman_allocations, plan_round, plan_round_allocated, stopping_decision,
    AllocationPolicy, Campaign, CampaignConfig, CampaignControl, CampaignProgress, CampaignReport,
    CampaignResult, RoundDecision, RunOutcome, StatCampaignConfig, StratumReport, TrialEngine,
    TrialSpec, UnitRunner, TRIAL_STREAM_PROVENANCE,
};
pub use checkpoint::{CheckpointCache, ResumePlan};
pub use injector::{apply_bit_flips, quantize_network, BitFlipInjector, FaultSite};
pub use map::{MemoryMap, ParamSpan, WordEncoding};
pub use model::{
    ActivationBitFlip, CanaryInjector, FaultModel, Injection, MultiBitBurst, StuckAtFaultModel,
    TransientBitFlip, TrialContext,
};
pub use stats::{
    sample_binomial, stratified_half_width, stratum_sigma, z_for_confidence, StratumPool,
    TrialOutcome, TrialPoint, WilsonInterval,
};
pub use strata::{BitClass, StratifiedSampler, StratumSpec};
pub use stuck_at::{apply_stuck_at, StuckAtFault, StuckAtInjector, StuckValue};

use std::error::Error;
use std::fmt;

/// Errors produced by fault-injection operations.
#[derive(Debug)]
pub enum FaultError {
    /// The network evaluation inside a campaign failed.
    Nn(fitact_nn::NnError),
    /// A configuration value was invalid (zero trials, negative rate, …).
    InvalidConfig(String),
    /// The memory map is empty (no parameters matched the layer filter).
    EmptyMemoryMap,
    /// The early-stopping target ε was zero, negative or not finite.
    NonPositiveEpsilon(f64),
    /// A statistical campaign was configured with no stratum specs at all.
    EmptyStrata,
    /// A stratum spec selects no bits (no bit classes, or a layer prefix that
    /// matches no mapped parameter); carries the stratum's label.
    EmptyStratum(String),
    /// Two merged campaign fragments disagree about the result of the same
    /// trial. Trials are deterministic functions of `(seed, stratum, index)`,
    /// so disagreeing fragments cannot come from the same campaign — a
    /// worker ran a different model, seed or configuration.
    TrialConflict {
        /// The trial's index within its stratum's RNG stream.
        index: u64,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Nn(e) => write!(f, "network evaluation failed during fault campaign: {e}"),
            FaultError::InvalidConfig(msg) => {
                write!(f, "invalid fault-injection configuration: {msg}")
            }
            FaultError::EmptyMemoryMap => {
                write!(
                    f,
                    "memory map contains no parameters (layer filter matched nothing)"
                )
            }
            FaultError::NonPositiveEpsilon(epsilon) => {
                write!(
                    f,
                    "early-stopping target epsilon must be a positive finite half-width, got {epsilon}"
                )
            }
            FaultError::EmptyStrata => {
                write!(f, "statistical campaign configured with no stratum specs")
            }
            FaultError::EmptyStratum(label) => {
                write!(
                    f,
                    "stratum `{label}` selects no bits (empty bit classes or unmatched layer prefix)"
                )
            }
            FaultError::TrialConflict { index } => {
                write!(
                    f,
                    "conflicting results for trial {index}: merged campaign fragments disagree \
                     about a deterministic trial (different model, seed or configuration?)"
                )
            }
        }
    }
}

impl Error for FaultError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FaultError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fitact_nn::NnError> for FaultError {
    fn from(e: fitact_nn::NnError) -> Self {
        FaultError::Nn(e)
    }
}

/// The fault rates evaluated in the paper (Figs. 5 and 6).
pub const PAPER_FAULT_RATES: [f64; 5] = [1e-7, 1e-6, 3e-6, 1e-5, 3e-5];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = FaultError::from(fitact_nn::NnError::InvalidConfig("x".into()));
        assert!(e.to_string().contains("fault campaign"));
        assert!(Error::source(&e).is_some());
        assert!(!FaultError::InvalidConfig("bad".into())
            .to_string()
            .is_empty());
        assert!(!FaultError::EmptyMemoryMap.to_string().is_empty());
        assert!(Error::source(&FaultError::EmptyMemoryMap).is_none());
        assert!(FaultError::NonPositiveEpsilon(-0.5)
            .to_string()
            .contains("-0.5"));
        assert!(FaultError::EmptyStratum("exp".into())
            .to_string()
            .contains("exp"));
        assert!(!FaultError::EmptyStrata.to_string().is_empty());
        assert!(Error::source(&FaultError::EmptyStrata).is_none());
        assert!(FaultError::TrialConflict { index: 42 }
            .to_string()
            .contains("42"));
        assert!(Error::source(&FaultError::TrialConflict { index: 0 }).is_none());
    }

    #[test]
    fn paper_fault_rates_are_increasing() {
        for pair in PAPER_FAULT_RATES.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }
}
