//! Stratified fault-site sampling by layer and bit-position class.
//!
//! Uniform sampling over the whole parameter memory (the paper's fault model)
//! wastes most trials on bits that barely matter: FT-ClipAct's resilience
//! analysis shows vulnerability is concentrated in the high-order ("exponent")
//! bits and varies strongly across layers. A *stratified* campaign samples
//! each trial's faults from one stratum — a (layer subset, bit-class subset)
//! slice of the fault space — so the per-stratum SDC rates can be estimated
//! with far fewer trials than a uniform campaign would need to resolve them.

use crate::injector::FaultSite;
use crate::map::MemoryMap;
use crate::stats::sample_addresses;
use crate::FaultError;
use rand::rngs::StdRng;

/// The resilience class of a bit position within a stored parameter word.
///
/// Parameters are stored as Q15.16 fixed point, so the classes map onto the
/// word as: **sign** is bit 31, **exponent** covers the integer bits 16–30
/// (the high-magnitude bits that play the role of a float's exponent field —
/// flipping one changes the value by ±1 … ±16384), and **mantissa** covers
/// the fraction bits 0–15 (a flip changes the value by at most ±0.5). The
/// float-format names are kept because they are the vocabulary of the
/// fault-injection literature this taxonomy reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitClass {
    /// The sign bit (bit 31): a flip negates and wraps the value far across
    /// the representable range.
    Sign,
    /// The integer bits (bits 16–30): high-magnitude corruption.
    Exponent,
    /// The fraction bits (bits 0–15): low-magnitude corruption.
    Mantissa,
}

impl BitClass {
    /// All classes, partitioning the 32-bit word.
    pub const ALL: [BitClass; 3] = [BitClass::Sign, BitClass::Exponent, BitClass::Mantissa];

    /// The bit positions belonging to this class (ascending).
    pub fn bits(self) -> std::ops::Range<u32> {
        match self {
            BitClass::Mantissa => 0..16,
            BitClass::Exponent => 16..31,
            BitClass::Sign => 31..32,
        }
    }

    /// The class a bit position belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 32`.
    pub fn of(bit: u32) -> Self {
        assert!(bit < 32, "bit index {bit} out of range for a 32-bit word");
        match bit {
            0..=15 => BitClass::Mantissa,
            16..=30 => BitClass::Exponent,
            _ => BitClass::Sign,
        }
    }

    /// Short lowercase label (`"sign"`, `"exponent"`, `"mantissa"`).
    pub fn label(self) -> &'static str {
        match self {
            BitClass::Sign => "sign",
            BitClass::Exponent => "exponent",
            BitClass::Mantissa => "mantissa",
        }
    }
}

/// One stratum of the fault space: a subset of layers crossed with a subset
/// of bit-position classes.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumSpec {
    /// Label used in reports (e.g. `"exponent"`, `"layer 0/"`).
    pub label: String,
    /// Bit classes included in the stratum. Must be non-empty.
    pub bit_classes: Vec<BitClass>,
    /// Restricts the stratum to parameters whose path starts with this
    /// prefix; `None` includes every mapped layer.
    pub path_prefix: Option<String>,
}

impl StratumSpec {
    /// The whole fault space as a single stratum (uniform sampling).
    pub fn all() -> Self {
        StratumSpec {
            label: "all".into(),
            bit_classes: BitClass::ALL.to_vec(),
            path_prefix: None,
        }
    }

    /// One stratum per bit class over all layers — the FT-ClipAct-style
    /// sign / exponent / mantissa decomposition.
    pub fn by_bit_class() -> Vec<Self> {
        BitClass::ALL
            .iter()
            .map(|&class| StratumSpec {
                label: class.label().into(),
                bit_classes: vec![class],
                path_prefix: None,
            })
            .collect()
    }

    /// One stratum (all bit classes) per top-level layer of the map, in
    /// traversal order — the layer-depth decomposition.
    pub fn by_layer(map: &MemoryMap) -> Vec<Self> {
        let mut specs: Vec<StratumSpec> = Vec::new();
        for span in map.spans() {
            let prefix = match span.path.split_once('/') {
                Some((head, _)) => format!("{head}/"),
                None => span.path.clone(),
            };
            if specs
                .iter()
                .any(|s| s.path_prefix.as_deref() == Some(&prefix))
            {
                continue;
            }
            specs.push(StratumSpec {
                label: format!("layer {prefix}"),
                bit_classes: BitClass::ALL.to_vec(),
                path_prefix: Some(prefix),
            });
        }
        specs
    }

    /// The sorted, de-duplicated bit positions this stratum draws from.
    pub fn bit_positions(&self) -> Vec<u32> {
        let mut bits: Vec<u32> = self.bit_classes.iter().flat_map(|c| c.bits()).collect();
        bits.sort_unstable();
        bits.dedup();
        bits
    }
}

/// One stratum's resolved slice of a concrete [`MemoryMap`].
#[derive(Debug, Clone)]
struct ResolvedStratum {
    /// Eligible bit positions within each word, ascending.
    bits: Vec<u32>,
    /// Indices into `map.spans()` of the parameter spans in the stratum,
    /// paired with the stratum-local bit offset at which each span starts.
    spans: Vec<(usize, u64)>,
    /// Total number of bits in the stratum.
    population: u64,
}

/// Samples fault sites stratified over a [`MemoryMap`].
///
/// Within a stratum, sites are uniform over the stratum's bit population;
/// the per-trial fault *count* follows `Binomial(population, rate)`, exactly
/// as the uniform sampler's count follows `Binomial(total_bits, rate)` — a
/// stratified campaign at rate `r` therefore perturbs each stratum exactly as
/// a uniform campaign at rate `r` would, just one stratum at a time.
#[derive(Debug, Clone)]
pub struct StratifiedSampler {
    map: MemoryMap,
    specs: Vec<StratumSpec>,
    resolved: Vec<ResolvedStratum>,
}

impl StratifiedSampler {
    /// Resolves `specs` against `map`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::EmptyStrata`] for an empty spec list and
    /// [`FaultError::EmptyStratum`] for a spec with no bit classes or one
    /// whose layer prefix matches no mapped parameter.
    pub fn new(map: &MemoryMap, specs: &[StratumSpec]) -> Result<Self, FaultError> {
        if specs.is_empty() {
            return Err(FaultError::EmptyStrata);
        }
        let mut resolved = Vec::with_capacity(specs.len());
        for spec in specs {
            let bits = spec.bit_positions();
            if bits.is_empty() {
                return Err(FaultError::EmptyStratum(spec.label.clone()));
            }
            let mut spans = Vec::new();
            let mut population = 0u64;
            for (span_index, span) in map.spans().iter().enumerate() {
                let included = match &spec.path_prefix {
                    Some(prefix) => span.path.starts_with(prefix.as_str()),
                    None => true,
                };
                if !included {
                    continue;
                }
                spans.push((span_index, population));
                population += span.numel as u64 * bits.len() as u64;
            }
            if population == 0 {
                return Err(FaultError::EmptyStratum(spec.label.clone()));
            }
            resolved.push(ResolvedStratum {
                bits,
                spans,
                population,
            });
        }
        Ok(StratifiedSampler {
            map: map.clone(),
            specs: specs.to_vec(),
            resolved,
        })
    }

    /// A single-stratum sampler over the whole map — the uniform fault model.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::EmptyStratum`] if the map is empty.
    pub fn uniform(map: &MemoryMap) -> Result<Self, FaultError> {
        StratifiedSampler::new(map, &[StratumSpec::all()])
    }

    /// Number of strata.
    pub fn num_strata(&self) -> usize {
        self.resolved.len()
    }

    /// The stratum specs the sampler was built from.
    pub fn specs(&self) -> &[StratumSpec] {
        &self.specs
    }

    /// Number of bits in stratum `stratum`.
    pub fn population(&self, stratum: usize) -> u64 {
        self.resolved[stratum].population
    }

    /// The eligible bit positions of stratum `stratum` (ascending).
    pub fn bit_positions(&self, stratum: usize) -> &[u32] {
        &self.resolved[stratum].bits
    }

    /// Samples one trial's fault sites from stratum `stratum` at per-bit rate
    /// `rate`: the count is `Binomial(population, rate)`, the locations
    /// uniform over the stratum, duplicates removed (flipping the same bit
    /// twice is a no-op).
    ///
    /// # Panics
    ///
    /// Panics if `stratum` is out of range.
    pub fn sample(&self, stratum: usize, rate: f64, rng: &mut StdRng) -> Vec<FaultSite> {
        let resolved = &self.resolved[stratum];
        sample_addresses(rng, resolved.population, rate)
            .into_iter()
            .map(|address| self.locate(resolved, address))
            .collect()
    }

    /// Resolves a stratum-local bit address into a fault site.
    fn locate(&self, resolved: &ResolvedStratum, address: u64) -> FaultSite {
        debug_assert!(address < resolved.population);
        // Spans are stored with ascending local offsets; binary search for
        // the containing span, mirroring `MemoryMap::locate`.
        let idx = match resolved
            .spans
            .binary_search_by(|&(_, offset)| offset.cmp(&address))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let (span_index, offset) = resolved.spans[idx];
        let span = &self.map.spans()[span_index];
        let local = address - offset;
        let bits_per_word = resolved.bits.len() as u64;
        let element = (local / bits_per_word) as usize;
        let bit = resolved.bits[(local % bits_per_word) as usize];
        debug_assert!(element < span.numel);
        FaultSite {
            param_index: span.param_index,
            element,
            bit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
    use fitact_nn::Network;
    use rand::SeedableRng;

    fn small_network() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        Network::new(
            "mlp",
            Sequential::new()
                .with(Box::new(Linear::new(3, 2, &mut rng)))
                .with(Box::new(ActivationLayer::relu("h", &[2])))
                .with(Box::new(Linear::new(2, 2, &mut rng))),
        )
    }

    #[test]
    fn bit_classes_partition_the_word() {
        let mut covered = [0u8; 32];
        for class in BitClass::ALL {
            for bit in class.bits() {
                covered[bit as usize] += 1;
                assert_eq!(BitClass::of(bit), class, "bit {bit}");
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "classes must partition");
    }

    #[test]
    fn uniform_sampler_covers_the_whole_map() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        let sampler = StratifiedSampler::uniform(&map).unwrap();
        assert_eq!(sampler.num_strata(), 1);
        assert_eq!(sampler.population(0), map.total_bits());
        assert_eq!(sampler.bit_positions(0).len(), 32);
    }

    #[test]
    fn bit_class_strata_split_the_population() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        let specs = StratumSpec::by_bit_class();
        let sampler = StratifiedSampler::new(&map, &specs).unwrap();
        assert_eq!(sampler.num_strata(), 3);
        let words = map.total_words();
        assert_eq!(sampler.population(0), words); // sign: 1 bit/word
        assert_eq!(sampler.population(1), words * 15); // exponent
        assert_eq!(sampler.population(2), words * 16); // mantissa
        let total: u64 = (0..3).map(|s| sampler.population(s)).sum();
        assert_eq!(total, map.total_bits());
    }

    #[test]
    fn layer_strata_cover_each_top_level_layer_once() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        let specs = StratumSpec::by_layer(&map);
        assert_eq!(specs.len(), 2, "two linear layers carry parameters");
        assert_eq!(specs[0].path_prefix.as_deref(), Some("0/"));
        assert_eq!(specs[1].path_prefix.as_deref(), Some("2/"));
        let sampler = StratifiedSampler::new(&map, &specs).unwrap();
        let total: u64 = (0..2).map(|s| sampler.population(s)).sum();
        assert_eq!(total, map.total_bits());
    }

    #[test]
    fn sampled_sites_respect_their_stratum() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        let specs = StratumSpec::by_bit_class();
        let sampler = StratifiedSampler::new(&map, &specs).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for (stratum, class) in BitClass::ALL.iter().enumerate() {
            // An aggressive rate so every stratum produces sites.
            let sites = sampler.sample(stratum, 0.5, &mut rng);
            assert!(!sites.is_empty(), "stratum {stratum}");
            for site in sites {
                assert_eq!(BitClass::of(site.bit), *class);
            }
        }
    }

    #[test]
    fn sampled_sites_respect_a_layer_prefix() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        let spec = StratumSpec {
            label: "first layer".into(),
            bit_classes: BitClass::ALL.to_vec(),
            path_prefix: Some("0/".into()),
        };
        let sampler = StratifiedSampler::new(&map, &[spec]).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for site in sampler.sample(0, 0.5, &mut rng) {
            assert!(site.param_index <= 1, "site {site:?} outside layer 0");
        }
    }

    #[test]
    fn empty_specs_and_unmatched_prefixes_are_typed_errors() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        assert!(matches!(
            StratifiedSampler::new(&map, &[]),
            Err(FaultError::EmptyStrata)
        ));
        let no_bits = StratumSpec {
            label: "no bits".into(),
            bit_classes: vec![],
            path_prefix: None,
        };
        assert!(matches!(
            StratifiedSampler::new(&map, &[no_bits]),
            Err(FaultError::EmptyStratum(_))
        ));
        let bad_prefix = StratumSpec {
            label: "ghost layer".into(),
            bit_classes: BitClass::ALL.to_vec(),
            path_prefix: Some("99/".into()),
        };
        assert!(matches!(
            StratifiedSampler::new(&map, &[bad_prefix]),
            Err(FaultError::EmptyStratum(_))
        ));
    }

    #[test]
    fn zero_rate_samples_nothing() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        let sampler = StratifiedSampler::uniform(&map).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sampler.sample(0, 0.0, &mut rng).is_empty());
    }
}
