//! Stratified fault-site sampling by layer and bit-position class.
//!
//! Uniform sampling over the whole parameter memory (the paper's fault model)
//! wastes most trials on bits that barely matter: FT-ClipAct's resilience
//! analysis shows vulnerability is concentrated in the high-order ("exponent")
//! bits and varies strongly across layers. A *stratified* campaign samples
//! each trial's faults from one stratum — a (layer subset, bit-class subset)
//! slice of the fault space — so the per-stratum SDC rates can be estimated
//! with far fewer trials than a uniform campaign would need to resolve them.

use crate::injector::FaultSite;
use crate::map::{MemoryMap, WordEncoding};
use crate::stats::sample_addresses;
use crate::FaultError;
use rand::rngs::StdRng;

/// The resilience class of a bit position within a stored parameter word.
///
/// The class geometry follows the span's native [`WordEncoding`]
/// ([`BitClass::bits_in`]):
///
/// * **Q15.16** (f32-stored parameters on the campaign grid): sign is bit
///   31, "exponent" the integer bits 16–30, "mantissa" the fraction bits
///   0–15,
/// * **f16**: the real IEEE fields — sign 15, exponent 10–14, mantissa 0–9,
/// * **int8** (quantised values and zero-points): sign 7, high-magnitude
///   bits 4–6 as "exponent", low bits 0–3 as "mantissa",
/// * **f32 scales** (int8 per-channel quantisation): IEEE fields — sign 31,
///   exponent 23–30, mantissa 0–22.
///
/// The float-format names are kept even for the fixed-point encodings
/// because they are the vocabulary of the fault-injection literature this
/// taxonomy reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitClass {
    /// The sign bit: a flip negates (and for Q15.16, wraps) the value far
    /// across the representable range.
    Sign,
    /// The high-magnitude bits (a float's exponent field, fixed point's
    /// integer bits).
    Exponent,
    /// The low-magnitude bits (a float's mantissa field, fixed point's
    /// fraction bits).
    Mantissa,
}

impl BitClass {
    /// All classes, partitioning every encoding's word.
    pub const ALL: [BitClass; 3] = [BitClass::Sign, BitClass::Exponent, BitClass::Mantissa];

    /// The bit positions belonging to this class in a Q15.16 word
    /// (ascending). Shorthand for `bits_in(WordEncoding::Fixed32)`.
    pub fn bits(self) -> std::ops::Range<u32> {
        self.bits_in(WordEncoding::Fixed32)
    }

    /// The bit positions belonging to this class in a word of the given
    /// encoding (ascending).
    pub fn bits_in(self, encoding: WordEncoding) -> std::ops::Range<u32> {
        match (encoding, self) {
            (WordEncoding::Fixed32, BitClass::Mantissa) => 0..16,
            (WordEncoding::Fixed32, BitClass::Exponent) => 16..31,
            (WordEncoding::Fixed32, BitClass::Sign) => 31..32,
            (WordEncoding::F16, BitClass::Mantissa) => 0..10,
            (WordEncoding::F16, BitClass::Exponent) => 10..15,
            (WordEncoding::F16, BitClass::Sign) => 15..16,
            (WordEncoding::Int8, BitClass::Mantissa) => 0..4,
            (WordEncoding::Int8, BitClass::Exponent) => 4..7,
            (WordEncoding::Int8, BitClass::Sign) => 7..8,
            (WordEncoding::Scale32, BitClass::Mantissa) => 0..23,
            (WordEncoding::Scale32, BitClass::Exponent) => 23..31,
            (WordEncoding::Scale32, BitClass::Sign) => 31..32,
        }
    }

    /// The class a bit position belongs to in a Q15.16 word. Shorthand for
    /// `of_in(bit, WordEncoding::Fixed32)`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 32`.
    pub fn of(bit: u32) -> Self {
        BitClass::of_in(bit, WordEncoding::Fixed32)
    }

    /// The class a bit position belongs to in a word of the given encoding.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is outside the encoding's word.
    pub fn of_in(bit: u32, encoding: WordEncoding) -> Self {
        assert!(
            u64::from(bit) < encoding.bits(),
            "bit index {bit} out of range for a {}-bit {} word",
            encoding.bits(),
            encoding.label()
        );
        for class in BitClass::ALL {
            if class.bits_in(encoding).contains(&bit) {
                return class;
            }
        }
        unreachable!("classes partition the word");
    }

    /// Short lowercase label (`"sign"`, `"exponent"`, `"mantissa"`).
    pub fn label(self) -> &'static str {
        match self {
            BitClass::Sign => "sign",
            BitClass::Exponent => "exponent",
            BitClass::Mantissa => "mantissa",
        }
    }
}

/// One stratum of the fault space: a subset of layers crossed with a subset
/// of bit-position classes.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumSpec {
    /// Label used in reports (e.g. `"exponent"`, `"layer 0/"`).
    pub label: String,
    /// Bit classes included in the stratum. Must be non-empty.
    pub bit_classes: Vec<BitClass>,
    /// Restricts the stratum to parameters whose path starts with this
    /// prefix; `None` includes every mapped layer.
    pub path_prefix: Option<String>,
}

impl StratumSpec {
    /// The whole fault space as a single stratum (uniform sampling).
    pub fn all() -> Self {
        StratumSpec {
            label: "all".into(),
            bit_classes: BitClass::ALL.to_vec(),
            path_prefix: None,
        }
    }

    /// One stratum per bit class over all layers — the FT-ClipAct-style
    /// sign / exponent / mantissa decomposition.
    pub fn by_bit_class() -> Vec<Self> {
        BitClass::ALL
            .iter()
            .map(|&class| StratumSpec {
                label: class.label().into(),
                bit_classes: vec![class],
                path_prefix: None,
            })
            .collect()
    }

    /// One stratum (all bit classes) per top-level layer of the map, in
    /// traversal order — the layer-depth decomposition.
    pub fn by_layer(map: &MemoryMap) -> Vec<Self> {
        let mut specs: Vec<StratumSpec> = Vec::new();
        for span in map.spans() {
            let prefix = match span.path.split_once('/') {
                Some((head, _)) => format!("{head}/"),
                None => span.path.clone(),
            };
            if specs
                .iter()
                .any(|s| s.path_prefix.as_deref() == Some(&prefix))
            {
                continue;
            }
            specs.push(StratumSpec {
                label: format!("layer {prefix}"),
                bit_classes: BitClass::ALL.to_vec(),
                path_prefix: Some(prefix),
            });
        }
        specs
    }

    /// The sorted, de-duplicated Q15.16 bit positions this stratum draws
    /// from. Shorthand for `bit_positions_in(WordEncoding::Fixed32)`.
    pub fn bit_positions(&self) -> Vec<u32> {
        self.bit_positions_in(WordEncoding::Fixed32)
    }

    /// The sorted, de-duplicated bit positions this stratum draws from in a
    /// word of the given encoding.
    pub fn bit_positions_in(&self, encoding: WordEncoding) -> Vec<u32> {
        let mut bits: Vec<u32> = self
            .bit_classes
            .iter()
            .flat_map(|c| c.bits_in(encoding))
            .collect();
        bits.sort_unstable();
        bits.dedup();
        bits
    }
}

/// Dense index of a [`WordEncoding`] into per-encoding lookup tables.
fn encoding_index(encoding: WordEncoding) -> usize {
    match encoding {
        WordEncoding::Fixed32 => 0,
        WordEncoding::F16 => 1,
        WordEncoding::Int8 => 2,
        WordEncoding::Scale32 => 3,
    }
}

/// One stratum's resolved slice of a concrete [`MemoryMap`].
#[derive(Debug, Clone)]
struct ResolvedStratum {
    /// Eligible Q15.16 bit positions, ascending (what datapath models —
    /// which corrupt f32 activation values on the campaign grid — draw
    /// from; see [`StratifiedSampler::bit_positions`]).
    bits: Vec<u32>,
    /// Eligible bit positions per [`WordEncoding`] (indexed by
    /// [`encoding_index`]): a stratum's classes resolve to different
    /// positions in f16, int8 and f32-scale words than in Q15.16 ones.
    bits_by_encoding: [Vec<u32>; 4],
    /// Indices into `map.spans()` of the parameter spans in the stratum,
    /// paired with the stratum-local bit offset at which each span starts.
    spans: Vec<(usize, u64)>,
    /// Total number of bits in the stratum.
    population: u64,
}

/// Samples fault sites stratified over a [`MemoryMap`].
///
/// Within a stratum, sites are uniform over the stratum's bit population;
/// the per-trial fault *count* follows `Binomial(population, rate)`, exactly
/// as the uniform sampler's count follows `Binomial(total_bits, rate)` — a
/// stratified campaign at rate `r` therefore perturbs each stratum exactly as
/// a uniform campaign at rate `r` would, just one stratum at a time.
#[derive(Debug, Clone)]
pub struct StratifiedSampler {
    map: MemoryMap,
    specs: Vec<StratumSpec>,
    resolved: Vec<ResolvedStratum>,
}

impl StratifiedSampler {
    /// Resolves `specs` against `map`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::EmptyStrata`] for an empty spec list and
    /// [`FaultError::EmptyStratum`] for a spec with no bit classes or one
    /// whose layer prefix matches no mapped parameter.
    pub fn new(map: &MemoryMap, specs: &[StratumSpec]) -> Result<Self, FaultError> {
        if specs.is_empty() {
            return Err(FaultError::EmptyStrata);
        }
        let mut resolved = Vec::with_capacity(specs.len());
        for spec in specs {
            let bits = spec.bit_positions();
            if bits.is_empty() {
                return Err(FaultError::EmptyStratum(spec.label.clone()));
            }
            let bits_by_encoding = [
                WordEncoding::Fixed32,
                WordEncoding::F16,
                WordEncoding::Int8,
                WordEncoding::Scale32,
            ]
            .map(|e| spec.bit_positions_in(e));
            let mut spans = Vec::new();
            let mut population = 0u64;
            for (span_index, span) in map.spans().iter().enumerate() {
                let included = match &spec.path_prefix {
                    Some(prefix) => span.path.starts_with(prefix.as_str()),
                    None => true,
                };
                if !included {
                    continue;
                }
                let per_word = bits_by_encoding[encoding_index(span.encoding)].len() as u64;
                spans.push((span_index, population));
                population += span.numel as u64 * per_word;
            }
            if population == 0 {
                return Err(FaultError::EmptyStratum(spec.label.clone()));
            }
            resolved.push(ResolvedStratum {
                bits,
                bits_by_encoding,
                spans,
                population,
            });
        }
        Ok(StratifiedSampler {
            map: map.clone(),
            specs: specs.to_vec(),
            resolved,
        })
    }

    /// A single-stratum sampler over the whole map — the uniform fault model.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::EmptyStratum`] if the map is empty.
    pub fn uniform(map: &MemoryMap) -> Result<Self, FaultError> {
        StratifiedSampler::new(map, &[StratumSpec::all()])
    }

    /// Number of strata.
    pub fn num_strata(&self) -> usize {
        self.resolved.len()
    }

    /// The stratum specs the sampler was built from.
    pub fn specs(&self) -> &[StratumSpec] {
        &self.specs
    }

    /// Number of bits in stratum `stratum`.
    pub fn population(&self, stratum: usize) -> u64 {
        self.resolved[stratum].population
    }

    /// The eligible Q15.16 bit positions of stratum `stratum` (ascending) —
    /// what datapath models, which corrupt f32 activation values on the
    /// campaign grid, draw from. Parameter-memory sites resolve against the
    /// owning span's native encoding instead.
    pub fn bit_positions(&self, stratum: usize) -> &[u32] {
        &self.resolved[stratum].bits
    }

    /// Samples one trial's fault sites from stratum `stratum` at per-bit rate
    /// `rate`: the count is `Binomial(population, rate)`, the locations
    /// uniform over the stratum, duplicates removed (flipping the same bit
    /// twice is a no-op).
    ///
    /// # Panics
    ///
    /// Panics if `stratum` is out of range.
    pub fn sample(&self, stratum: usize, rate: f64, rng: &mut StdRng) -> Vec<FaultSite> {
        let resolved = &self.resolved[stratum];
        sample_addresses(rng, resolved.population, rate)
            .into_iter()
            .map(|address| self.locate(resolved, address))
            .collect()
    }

    /// Resolves a stratum-local bit address into a fault site.
    fn locate(&self, resolved: &ResolvedStratum, address: u64) -> FaultSite {
        debug_assert!(address < resolved.population);
        // Spans are stored with ascending local offsets; binary search for
        // the containing span, mirroring `MemoryMap::locate`.
        let idx = match resolved
            .spans
            .binary_search_by(|&(_, offset)| offset.cmp(&address))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let (span_index, offset) = resolved.spans[idx];
        let span = &self.map.spans()[span_index];
        let bits = &resolved.bits_by_encoding[encoding_index(span.encoding)];
        let local = address - offset;
        let bits_per_word = bits.len() as u64;
        let element = (local / bits_per_word) as usize;
        let bit = bits[(local % bits_per_word) as usize];
        debug_assert!(element < span.numel);
        FaultSite {
            param_index: span.param_index,
            element: span.element_base + element,
            bit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
    use fitact_nn::Network;
    use rand::SeedableRng;

    fn small_network() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        Network::new(
            "mlp",
            Sequential::new()
                .with(Box::new(Linear::new(3, 2, &mut rng)))
                .with(Box::new(ActivationLayer::relu("h", &[2])))
                .with(Box::new(Linear::new(2, 2, &mut rng))),
        )
    }

    #[test]
    fn bit_classes_partition_the_word() {
        let mut covered = [0u8; 32];
        for class in BitClass::ALL {
            for bit in class.bits() {
                covered[bit as usize] += 1;
                assert_eq!(BitClass::of(bit), class, "bit {bit}");
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "classes must partition");
    }

    #[test]
    fn bit_classes_partition_every_encoding() {
        for encoding in [
            WordEncoding::Fixed32,
            WordEncoding::F16,
            WordEncoding::Int8,
            WordEncoding::Scale32,
        ] {
            let mut covered = vec![0u8; encoding.bits() as usize];
            for class in BitClass::ALL {
                for bit in class.bits_in(encoding) {
                    covered[bit as usize] += 1;
                    assert_eq!(
                        BitClass::of_in(bit, encoding),
                        class,
                        "{} bit {bit}",
                        encoding.label()
                    );
                }
            }
            assert!(
                covered.iter().all(|&c| c == 1),
                "classes must partition the {} word",
                encoding.label()
            );
        }
    }

    #[test]
    fn f16_strata_use_the_native_bit_geometry() {
        let mut net = small_network();
        net.quantize_to(fitact_tensor::Precision::F16);
        let map = MemoryMap::of_network(&net);
        let sampler = StratifiedSampler::new(&map, &StratumSpec::by_bit_class()).unwrap();
        // Weights: 10 f16 words (params 0 and 2); biases: 4 Q15.16 words.
        assert_eq!(sampler.population(0), 10 + 4); // sign: 1 bit/word everywhere
        assert_eq!(sampler.population(1), 10 * 5 + 4 * 15); // exponent
        assert_eq!(sampler.population(2), 10 * 10 + 4 * 16); // mantissa
        let total: u64 = (0..3).map(|s| sampler.population(s)).sum();
        assert_eq!(total, map.total_bits());
        // Sampled sites carry bit indices valid for — and classified by —
        // their span's native encoding.
        let mut rng = StdRng::seed_from_u64(3);
        for (stratum, class) in BitClass::ALL.iter().enumerate() {
            let sites = sampler.sample(stratum, 0.5, &mut rng);
            assert!(!sites.is_empty(), "stratum {stratum}");
            for site in sites {
                let encoding = if site.param_index % 2 == 0 {
                    WordEncoding::F16 // weights are params 0 and 2
                } else {
                    WordEncoding::Fixed32 // biases stay f32
                };
                assert_eq!(BitClass::of_in(site.bit, encoding), *class);
            }
        }
    }

    #[test]
    fn int8_strata_address_scales_and_zero_points() {
        let mut net = small_network();
        net.quantize_to(fitact_tensor::Precision::Int8);
        let map = MemoryMap::of_network(&net);
        let sampler = StratifiedSampler::uniform(&map).unwrap();
        assert_eq!(sampler.population(0), map.total_bits());
        let info = net.param_info();
        let mut scale_or_zp_sites = 0;
        let mut rng = StdRng::seed_from_u64(5);
        for site in sampler.sample(0, 0.5, &mut rng) {
            let p = &info[site.param_index];
            if p.precision == fitact_tensor::Precision::Int8 {
                // Virtual axis: values, then C scales, then C zero-points.
                assert!(site.element < p.numel + 2 * p.channels);
                if site.element >= p.numel {
                    scale_or_zp_sites += 1;
                    let is_scale = site.element < p.numel + p.channels;
                    assert!(site.bit < if is_scale { 32 } else { 8 });
                } else {
                    assert!(site.bit < 8);
                }
            } else {
                assert!(site.element < p.numel && site.bit < 32);
            }
        }
        assert!(
            scale_or_zp_sites > 0,
            "at a 0.5 rate some sites must land on scales/zero-points"
        );
    }

    #[test]
    fn uniform_sampler_covers_the_whole_map() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        let sampler = StratifiedSampler::uniform(&map).unwrap();
        assert_eq!(sampler.num_strata(), 1);
        assert_eq!(sampler.population(0), map.total_bits());
        assert_eq!(sampler.bit_positions(0).len(), 32);
    }

    #[test]
    fn bit_class_strata_split_the_population() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        let specs = StratumSpec::by_bit_class();
        let sampler = StratifiedSampler::new(&map, &specs).unwrap();
        assert_eq!(sampler.num_strata(), 3);
        let words = map.total_words();
        assert_eq!(sampler.population(0), words); // sign: 1 bit/word
        assert_eq!(sampler.population(1), words * 15); // exponent
        assert_eq!(sampler.population(2), words * 16); // mantissa
        let total: u64 = (0..3).map(|s| sampler.population(s)).sum();
        assert_eq!(total, map.total_bits());
    }

    #[test]
    fn layer_strata_cover_each_top_level_layer_once() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        let specs = StratumSpec::by_layer(&map);
        assert_eq!(specs.len(), 2, "two linear layers carry parameters");
        assert_eq!(specs[0].path_prefix.as_deref(), Some("0/"));
        assert_eq!(specs[1].path_prefix.as_deref(), Some("2/"));
        let sampler = StratifiedSampler::new(&map, &specs).unwrap();
        let total: u64 = (0..2).map(|s| sampler.population(s)).sum();
        assert_eq!(total, map.total_bits());
    }

    #[test]
    fn sampled_sites_respect_their_stratum() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        let specs = StratumSpec::by_bit_class();
        let sampler = StratifiedSampler::new(&map, &specs).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for (stratum, class) in BitClass::ALL.iter().enumerate() {
            // An aggressive rate so every stratum produces sites.
            let sites = sampler.sample(stratum, 0.5, &mut rng);
            assert!(!sites.is_empty(), "stratum {stratum}");
            for site in sites {
                assert_eq!(BitClass::of(site.bit), *class);
            }
        }
    }

    #[test]
    fn sampled_sites_respect_a_layer_prefix() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        let spec = StratumSpec {
            label: "first layer".into(),
            bit_classes: BitClass::ALL.to_vec(),
            path_prefix: Some("0/".into()),
        };
        let sampler = StratifiedSampler::new(&map, &[spec]).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for site in sampler.sample(0, 0.5, &mut rng) {
            assert!(site.param_index <= 1, "site {site:?} outside layer 0");
        }
    }

    #[test]
    fn empty_specs_and_unmatched_prefixes_are_typed_errors() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        assert!(matches!(
            StratifiedSampler::new(&map, &[]),
            Err(FaultError::EmptyStrata)
        ));
        let no_bits = StratumSpec {
            label: "no bits".into(),
            bit_classes: vec![],
            path_prefix: None,
        };
        assert!(matches!(
            StratifiedSampler::new(&map, &[no_bits]),
            Err(FaultError::EmptyStratum(_))
        ));
        let bad_prefix = StratumSpec {
            label: "ghost layer".into(),
            bit_classes: BitClass::ALL.to_vec(),
            path_prefix: Some("99/".into()),
        };
        assert!(matches!(
            StratifiedSampler::new(&map, &[bad_prefix]),
            Err(FaultError::EmptyStratum(_))
        ));
    }

    #[test]
    fn zero_rate_samples_nothing() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        let sampler = StratifiedSampler::uniform(&map).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sampler.sample(0, 0.0, &mut rng).is_empty());
    }
}
