//! Campaign statistics: binomial fault-count sampling, Wilson score
//! intervals and the per-trial outcome taxonomy.
//!
//! Fault-injection campaigns are Bernoulli experiments: each trial either
//! exhibits an outcome (say, critical SDC) or it does not, so the campaign's
//! job is to estimate a proportion. The Wilson score interval is the standard
//! small-sample interval for that estimate — unlike the naive normal ("Wald")
//! interval it never escapes `[0, 1]` and stays calibrated when the observed
//! proportion is 0 or 1, which is exactly the regime low fault rates put us
//! in (most trials are masked). Sequential early stopping
//! ([`crate::Campaign::run_until`]) keeps adding trials until the interval's
//! half-width drops below a target ε.

use crate::FaultError;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;

/// A Wilson score confidence interval for a binomial proportion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WilsonInterval {
    /// Number of successes observed.
    pub successes: u64,
    /// Number of trials observed.
    pub trials: u64,
    /// Lower bound of the interval.
    pub low: f64,
    /// Upper bound of the interval.
    pub high: f64,
}

impl WilsonInterval {
    /// Computes the Wilson score interval for `successes` out of `trials`
    /// with critical value `z` (e.g. 1.96 for 95% confidence).
    ///
    /// With zero trials nothing is known, so the interval is the full `[0, 1]`.
    ///
    /// # Example
    ///
    /// ```
    /// use fitact_faults::WilsonInterval;
    ///
    /// // 0 critical outcomes in 40 trials at 95% confidence: the naive Wald
    /// // interval would collapse to [0, 0]; Wilson stays calibrated at the
    /// // boundary — exactly the regime low fault rates produce.
    /// let ci = WilsonInterval::new(0, 40, 1.96);
    /// assert_eq!(ci.point(), 0.0);
    /// assert!(ci.low == 0.0 && ci.high > 0.0 && ci.high < 0.15);
    ///
    /// // No data: the interval is the whole [0, 1].
    /// let unknown = WilsonInterval::new(0, 0, 1.96);
    /// assert_eq!((unknown.low, unknown.high), (0.0, 1.0));
    /// ```
    pub fn new(successes: u64, trials: u64, z: f64) -> Self {
        debug_assert!(successes <= trials, "more successes than trials");
        if trials == 0 {
            return WilsonInterval {
                successes,
                trials,
                low: 0.0,
                high: 1.0,
            };
        }
        let n = trials as f64;
        let p = successes as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let margin = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        WilsonInterval {
            successes,
            trials,
            low: (center - margin).max(0.0),
            high: (center + margin).min(1.0),
        }
    }

    /// The point estimate `successes / trials` (0 for an empty sample).
    pub fn point(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Half the width of the interval — the campaign's convergence measure.
    pub fn half_width(&self) -> f64 {
        0.5 * (self.high - self.low)
    }
}

/// What one fault-injection trial measured.
///
/// A point is identified by its trial index within its stratum's RNG stream
/// (the key of a [`StratumPool`]), and because trials are deterministic
/// functions of `(seed, stratum, index)`, two points for the same index from
/// the same campaign are always bit-identical — the property that makes
/// duplicate completions in distributed execution safe to resolve by index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialPoint {
    /// The trial's top-1 accuracy (fraction in `[0, 1]`).
    pub accuracy: f32,
    /// Number of bit flips the trial injected.
    pub faults: u64,
}

impl TrialPoint {
    /// Bit-pattern equality: accuracies compare as raw IEEE-754 bits, so
    /// `-0.0 != 0.0` and equal NaN payloads compare equal — exactly the
    /// "same deterministic trial" relation.
    pub fn same_bits(&self, other: &TrialPoint) -> bool {
        self.accuracy.to_bits() == other.accuracy.to_bits() && self.faults == other.faults
    }
}

/// A mergeable pool of completed trials for one stratum, keyed by trial
/// index.
///
/// This is the unit of aggregation for distributed and resumable campaigns:
/// workers return disjoint index ranges, and the coordinator merges them with
/// [`StratumPool::merge`]. Because the pool is a map keyed by trial identity,
/// merging is **order-independent** and **associative**, merging an empty
/// pool is the **identity**, and re-merging a duplicated unit is idempotent
/// (all pinned by the `pool_merge_props` property suite). A merge that would
/// change an existing point is a [`FaultError::TrialConflict`] — two
/// fragments disagreeing about the same deterministic trial cannot come from
/// the same campaign.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StratumPool {
    points: BTreeMap<u64, TrialPoint>,
}

impl StratumPool {
    /// An empty pool.
    pub fn new() -> Self {
        StratumPool::default()
    }

    /// Number of completed trials in the pool.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if no trial has completed yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Whether trial `index` has a recorded point.
    pub fn contains(&self, index: u64) -> bool {
        self.points.contains_key(&index)
    }

    /// Whether every trial in `start .. start + count` has a recorded point.
    pub fn contains_range(&self, start: u64, count: u64) -> bool {
        self.points.range(start..start + count).count() as u64 == count
    }

    /// The recorded point of trial `index`, if any.
    pub fn get(&self, index: u64) -> Option<TrialPoint> {
        self.points.get(&index).copied()
    }

    /// Records the result of trial `index`.
    ///
    /// Returns `Ok(true)` for a new point and `Ok(false)` for a bit-identical
    /// duplicate (idempotent re-delivery).
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::TrialConflict`] if a different point is already
    /// recorded for `index`.
    pub fn insert(&mut self, index: u64, point: TrialPoint) -> Result<bool, FaultError> {
        match self.points.get(&index) {
            None => {
                self.points.insert(index, point);
                Ok(true)
            }
            Some(existing) if existing.same_bits(&point) => Ok(false),
            Some(_) => Err(FaultError::TrialConflict { index }),
        }
    }

    /// Merges every point of `other` into `self`; returns how many points
    /// were new.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::TrialConflict`] on the first disagreeing point;
    /// points merged before the conflict remain merged.
    pub fn merge(&mut self, other: &StratumPool) -> Result<usize, FaultError> {
        let mut added = 0;
        for (&index, &point) in &other.points {
            if self.insert(index, point)? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Iterates the pool's points in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, TrialPoint)> + '_ {
        self.points.iter().map(|(&i, &p)| (i, p))
    }

    /// Iterates the points with index below `limit`, ascending.
    pub fn iter_below(&self, limit: u64) -> impl Iterator<Item = (u64, TrialPoint)> + '_ {
        self.points.range(..limit).map(|(&i, &p)| (i, p))
    }

    /// The accuracies in ascending index order — for a pool whose indexes are
    /// contiguous from 0 this is exactly the serial campaign's trial order.
    pub fn accuracies(&self) -> Vec<f32> {
        self.points.values().map(|p| p.accuracy).collect()
    }

    /// Total faults injected across the pool's trials.
    pub fn total_faults(&self) -> u64 {
        self.points.values().map(|p| p.faults).sum()
    }
}

/// Estimated standard deviation of one stratum's critical-SDC Bernoulli
/// variable, computed from the **Wilson centre** rather than the raw
/// proportion: `p̃ = (x + z²/2) / (n + z²)`, `σ̃ = sqrt(p̃ (1 − p̃))`.
///
/// The Wilson centre is the same shrinkage the interval itself uses, and it
/// is what makes the estimate safe in the degenerate regimes an adaptive
/// allocator must survive:
///
/// * **zero trials** — nothing is known, so the estimate is the maximal
///   Bernoulli σ of `0.5` (an unexplored stratum looks maximally uncertain,
///   never invisible);
/// * **all-masked (`x = 0`) and all-critical (`x = n`) strata** — the raw
///   plug-in `sqrt(p̂(1−p̂))` collapses to exactly `0`, which would starve
///   the stratum forever on the strength of a handful of trials; the Wilson
///   centre keeps `0 < p̃ < 1` strictly, so σ̃ is always positive and finite
///   (never NaN, never a division by zero).
pub fn stratum_sigma(successes: u64, trials: u64, z: f64) -> f64 {
    debug_assert!(successes <= trials, "more successes than trials");
    if trials == 0 {
        return 0.5;
    }
    let z2 = z * z;
    let p_tilde = (successes as f64 + z2 / 2.0) / (trials as f64 + z2);
    (p_tilde * (1.0 - p_tilde)).sqrt()
}

/// Half-width of the normal-approximation interval of the **stratified**
/// critical-SDC estimator `p̂_st = Σ_h w_h p̂_h`:
/// `z · sqrt(Σ_h w_h² σ̃_h² / n_h)` with the per-stratum variance taken at
/// the Wilson centre ([`stratum_sigma`]).
///
/// `strata` carries one `(successes, trials)` pair per stratum and `weights`
/// the matching population shares (summing to 1). Any stratum with zero
/// counted trials makes the estimator undefined, so the half-width is the
/// vacuous `0.5` — exactly the value a zero-trial [`WilsonInterval`]
/// reports, and wide enough that no sane ε can stop on it.
pub fn stratified_half_width(z: f64, strata: &[(u64, u64)], weights: &[f64]) -> f64 {
    debug_assert_eq!(strata.len(), weights.len());
    let mut variance = 0.0f64;
    for (&(successes, trials), &weight) in strata.iter().zip(weights) {
        if trials == 0 {
            return 0.5;
        }
        let sigma = stratum_sigma(successes, trials, z);
        variance += weight * weight * sigma * sigma / trials as f64;
    }
    (z * variance.sqrt()).min(0.5)
}

/// Converts a two-sided confidence level (e.g. `0.95`) into the standard
/// normal critical value `z` (e.g. `1.96`).
///
/// Uses Acklam's rational approximation of the inverse normal CDF (absolute
/// error below 1.15e-9 — far below anything a Monte-Carlo campaign can
/// resolve).
///
/// # Panics
///
/// Panics if `confidence` is not strictly inside `(0, 1)`; use
/// [`crate::StatCampaignConfig::validate`] for a fallible check.
pub fn z_for_confidence(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence {confidence} outside (0, 1)"
    );
    // Two-sided: the tail on each side has mass (1 - c) / 2.
    inverse_normal_cdf(0.5 + confidence / 2.0)
}

/// Acklam's inverse normal CDF approximation.
fn inverse_normal_cdf(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    debug_assert!(p > 0.0 && p < 1.0);
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

/// The resilience taxonomy of one fault-injection trial.
///
/// Campaign outcomes follow the standard fault-injection classification: a
/// trial whose top-1 accuracy does not drop below the fault-free baseline is
/// **masked** (the corruption never reached the output, or the network
/// absorbed it); a drop of at most the configured threshold is a **tolerable
/// silent data corruption**; anything worse is a **critical SDC** — the
/// failures FitAct's bounded activations are designed to remove.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrialOutcome {
    /// No accuracy drop relative to the fault-free baseline.
    Masked,
    /// An accuracy drop within the configured tolerance.
    TolerableSdc,
    /// An accuracy drop beyond the configured tolerance.
    CriticalSdc,
}

impl TrialOutcome {
    /// Classifies one trial from its accuracy against the fault-free baseline
    /// and the critical-drop threshold (a top-1 fraction, e.g. `0.05`).
    pub fn classify(
        fault_free_accuracy: f32,
        trial_accuracy: f32,
        critical_threshold: f32,
    ) -> Self {
        let drop = fault_free_accuracy - trial_accuracy;
        if drop <= 0.0 {
            TrialOutcome::Masked
        } else if drop <= critical_threshold {
            TrialOutcome::TolerableSdc
        } else {
            TrialOutcome::CriticalSdc
        }
    }

    /// `true` for either SDC class.
    pub fn is_sdc(self) -> bool {
        matches!(self, TrialOutcome::TolerableSdc | TrialOutcome::CriticalSdc)
    }
}

/// Samples one trial's fault-bit addresses over a population of `n` bits at
/// per-bit rate `p`: a `Binomial(n, p)` count of uniform draws,
/// de-duplicated (flipping the same bit twice is a no-op, matching the
/// with-replacement approximation fault-injection tools use at these rates).
///
/// Every sampling path — the uniform injector, the stratified sampler and
/// the datapath corrupter — draws through this one definition, which is what
/// makes "a stratified campaign at rate `r` perturbs each stratum exactly as
/// a uniform campaign at rate `r` would" literally true.
pub fn sample_addresses(rng: &mut StdRng, population: u64, rate: f64) -> Vec<u64> {
    if population == 0 || rate <= 0.0 {
        return Vec::new();
    }
    let count = sample_binomial(rng, population, rate);
    let mut seen = std::collections::HashSet::with_capacity(count as usize);
    let mut addresses = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let address = rng.gen_range(0..population);
        if seen.insert(address) {
            addresses.push(address);
        }
    }
    addresses
}

/// Arithmetic mean of a sample, or `0.0` for an empty one — the guard that
/// keeps zero-trial campaign aggregates NaN-free.
pub fn mean_or_zero(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f32>() / values.len() as f32
}

/// Samples `Binomial(n, p)` — the number of faults one trial injects when
/// every one of `n` bits flips independently with probability `p`.
///
/// The count is sampled through Poisson inversion for small means (exact in
/// the small-`p` regime the paper's fault rates live in) and through the
/// normal approximation with continuity correction for large means; both
/// branches clamp to `[0, n]`.
pub fn sample_binomial(rng: &mut StdRng, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    if mean < 30.0 {
        // Poisson inversion with λ = np; the Poisson approximation error is
        // O(p) per draw, negligible at the fault rates of interest (≤ 3e-5).
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut acc = 1.0f64;
        loop {
            acc *= rng.gen::<f64>();
            if acc <= l || k >= n {
                break;
            }
            k += 1;
        }
        k.min(n)
    } else {
        let std = (n as f64 * p * (1.0 - p)).sqrt();
        let z = sample_standard_normal(rng);
        let value = (mean + std * z).round();
        value.clamp(0.0, n as f64) as u64
    }
}

/// Box–Muller standard normal draw.
pub(crate) fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn z_values_match_the_textbook() {
        assert!((z_for_confidence(0.95) - 1.959_964).abs() < 1e-4);
        assert!((z_for_confidence(0.99) - 2.575_829).abs() < 1e-4);
        assert!((z_for_confidence(0.90) - 1.644_854).abs() < 1e-4);
        assert!((z_for_confidence(0.50) - 0.674_490).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1)")]
    fn z_rejects_degenerate_confidence() {
        let _ = z_for_confidence(1.0);
    }

    #[test]
    fn wilson_interval_basic_properties() {
        let z = z_for_confidence(0.95);
        let ci = WilsonInterval::new(8, 100, z);
        assert!(ci.low > 0.0 && ci.high < 1.0);
        assert!(ci.low < ci.point() && ci.point() < ci.high);
        assert!((ci.point() - 0.08).abs() < 1e-12);
        // Textbook check: 8/100 at 95% gives roughly [0.041, 0.150].
        assert!((ci.low - 0.041).abs() < 0.005, "low {}", ci.low);
        assert!((ci.high - 0.150).abs() < 0.005, "high {}", ci.high);
    }

    #[test]
    fn wilson_interval_stays_inside_unit_range_at_the_edges() {
        let z = z_for_confidence(0.95);
        let none = WilsonInterval::new(0, 50, z);
        assert_eq!(none.low, 0.0);
        assert!(none.high > 0.0 && none.high < 0.15);
        let all = WilsonInterval::new(50, 50, z);
        assert!(all.high <= 1.0 && all.high > 1.0 - 1e-9);
        assert!(all.low > 0.85 && all.low < 1.0);
    }

    #[test]
    fn wilson_half_width_shrinks_with_more_trials() {
        let z = z_for_confidence(0.95);
        let mut previous = f64::INFINITY;
        for n in [10u64, 40, 160, 640, 2560] {
            let hw = WilsonInterval::new(n / 10, n, z).half_width();
            assert!(hw < previous, "n = {n}");
            previous = hw;
        }
    }

    #[test]
    fn wilson_interval_with_zero_trials_is_vacuous() {
        let ci = WilsonInterval::new(0, 0, 1.96);
        assert_eq!((ci.low, ci.high), (0.0, 1.0));
        assert_eq!(ci.point(), 0.0);
        assert_eq!(ci.half_width(), 0.5);
    }

    #[test]
    fn sigma_estimate_survives_degenerate_strata() {
        let z = z_for_confidence(0.95);
        // Zero trials: maximal uncertainty, not NaN and not zero.
        assert_eq!(stratum_sigma(0, 0, z), 0.5);
        // All-masked and all-critical strata: the raw plug-in variance is
        // exactly 0 here; the Wilson centre keeps the estimate positive so
        // the allocator can never starve a stratum on boundary data.
        for (successes, trials) in [(0u64, 1u64), (0, 40), (1, 1), (40, 40)] {
            let sigma = stratum_sigma(successes, trials, z);
            assert!(
                sigma.is_finite() && sigma > 0.0,
                "σ({successes}/{trials}) = {sigma}"
            );
            assert!(sigma <= 0.5, "Bernoulli σ is capped at 0.5, got {sigma}");
        }
        // The estimate tightens toward the plug-in value as n grows.
        let near_boundary = stratum_sigma(0, 10_000, z);
        assert!(near_boundary < 0.02, "0/10000 must look near-deterministic");
        // And peaks at p = 1/2.
        let balanced = stratum_sigma(50, 100, z);
        assert!((balanced - 0.5).abs() < 0.01, "σ(50/100) = {balanced}");
    }

    #[test]
    fn stratified_half_width_degenerate_and_limit_cases() {
        let z = z_for_confidence(0.95);
        // Any zero-trial stratum makes the estimator vacuous — exactly the
        // zero-trial Wilson half-width.
        assert_eq!(
            stratified_half_width(z, &[(0, 40), (0, 0)], &[0.5, 0.5]),
            0.5
        );
        assert_eq!(stratified_half_width(z, &[], &[]), 0.0);
        // More trials tighten the interval monotonically.
        let wide = stratified_half_width(z, &[(2, 20), (0, 20)], &[0.7, 0.3]);
        let tight = stratified_half_width(z, &[(20, 200), (0, 200)], &[0.7, 0.3]);
        assert!(tight < wide, "tight {tight} vs wide {wide}");
        // A zero-weight stratum contributes nothing.
        let without = stratified_half_width(z, &[(2, 20)], &[1.0]);
        let with = stratified_half_width(z, &[(2, 20), (19, 20)], &[1.0, 0.0]);
        assert!((without - with).abs() < 1e-15);
        // Never escapes the vacuous bound.
        assert!(stratified_half_width(z, &[(1, 1)], &[1.0]) <= 0.5);
    }

    #[test]
    fn outcome_classification_thresholds() {
        use TrialOutcome::*;
        assert_eq!(TrialOutcome::classify(0.9, 0.9, 0.05), Masked);
        assert_eq!(TrialOutcome::classify(0.9, 0.95, 0.05), Masked);
        assert_eq!(TrialOutcome::classify(0.9, 0.87, 0.05), TolerableSdc);
        assert_eq!(TrialOutcome::classify(0.9, 0.6, 0.05), CriticalSdc);
        assert!(!Masked.is_sdc());
        assert!(TolerableSdc.is_sdc());
        assert!(CriticalSdc.is_sdc());
    }

    #[test]
    fn mean_or_zero_handles_empty_samples() {
        assert_eq!(mean_or_zero(&[]), 0.0);
        assert_eq!(mean_or_zero(&[0.5]), 0.5);
        assert!((mean_or_zero(&[0.25, 0.75]) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn pool_insert_is_idempotent_and_conflicts_are_typed() {
        let mut pool = StratumPool::new();
        let p = TrialPoint {
            accuracy: 0.75,
            faults: 3,
        };
        assert!(pool.insert(4, p).unwrap());
        assert!(!pool.insert(4, p).unwrap(), "duplicate is a no-op");
        assert_eq!(pool.len(), 1);
        let conflicting = TrialPoint {
            accuracy: 0.5,
            faults: 3,
        };
        assert!(matches!(
            pool.insert(4, conflicting),
            Err(FaultError::TrialConflict { index: 4 })
        ));
        assert_eq!(pool.get(4), Some(p), "conflict leaves the pool untouched");
    }

    #[test]
    fn pool_point_identity_is_bitwise() {
        let zero = TrialPoint {
            accuracy: 0.0,
            faults: 0,
        };
        let neg_zero = TrialPoint {
            accuracy: -0.0,
            faults: 0,
        };
        assert!(
            !zero.same_bits(&neg_zero),
            "-0.0 is a different trial result"
        );
        let nan = TrialPoint {
            accuracy: f32::NAN,
            faults: 0,
        };
        assert!(nan.same_bits(&nan), "identical NaN payloads compare equal");
    }

    #[test]
    fn pool_range_queries_and_ordering() {
        let mut pool = StratumPool::new();
        for index in [2u64, 0, 1, 5] {
            pool.insert(
                index,
                TrialPoint {
                    accuracy: index as f32 / 10.0,
                    faults: index,
                },
            )
            .unwrap();
        }
        assert!(pool.contains_range(0, 3));
        assert!(!pool.contains_range(0, 4), "index 3 is missing");
        assert_eq!(pool.accuracies(), vec![0.0, 0.1, 0.2, 0.5]);
        assert_eq!(pool.total_faults(), 8);
        let below: Vec<u64> = pool.iter_below(2).map(|(i, _)| i).collect();
        assert_eq!(below, vec![0, 1]);
    }

    #[test]
    fn binomial_edges_and_mean() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(sample_binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(sample_binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 10, 1.0), 10);
        let n = 1_000_000u64;
        let rate = 1e-4;
        let total: u64 = (0..200).map(|_| sample_binomial(&mut rng, n, rate)).sum();
        let mean = total as f64 / 200.0;
        assert!((mean - 100.0).abs() < 15.0, "mean {mean}");
    }
}
