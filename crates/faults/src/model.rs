//! The fault-model taxonomy: one trait, four hardware failure modes.
//!
//! Every campaign trial follows the same script — sample sites from the
//! active stratum, *inject*, evaluate, restore — but what "inject" means
//! depends on the physical failure being modelled. [`FaultModel`] abstracts
//! that step so one statistical engine ([`crate::Campaign::run_until`])
//! drives all of:
//!
//! * [`TransientBitFlip`] — the paper's model: each sampled parameter bit is
//!   XOR-flipped once (a particle strike on a memory cell),
//! * [`MultiBitBurst`] — a strike that upsets a run of adjacent cells in one
//!   word (MCU — multi-cell upset),
//! * [`StuckAtFaultModel`] — permanent stuck-at-0/1 defects at the sampled
//!   sites (manufacturing or ageing faults),
//! * [`ActivationBitFlip`] — transient flips in the *datapath*: activation
//!   values are corrupted as they flow through the network rather than at
//!   rest in parameter memory.

use crate::injector::{apply_bit_flip_bursts, apply_bit_flips, FaultSite};
use crate::stats::sample_addresses;
use crate::stuck_at::{apply_stuck_at, StuckAtFault, StuckValue};
use fitact_nn::{Activation, Network, NnError, Parameter};
use fitact_tensor::{Fixed32, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-trial context handed to [`FaultModel::inject`].
#[derive(Debug, Clone, Copy)]
pub struct TrialContext<'a> {
    /// The campaign's per-bit fault rate.
    pub fault_rate: f64,
    /// Bit positions eligible in the active stratum (ascending).
    pub bit_positions: &'a [u32],
}

/// What one injection did, and how to count faults that happen later.
#[derive(Debug, Default)]
pub struct Injection {
    /// Bits faulted at injection time (parameter-memory models).
    pub immediate_faults: u64,
    /// Live counter incremented while the corrupted network is evaluated
    /// (datapath models); `None` for models that only touch memory.
    pub deferred_faults: Option<Arc<AtomicU64>>,
}

impl Injection {
    /// A plain parameter-memory injection of `faults` bits.
    pub fn immediate(faults: u64) -> Self {
        Injection {
            immediate_faults: faults,
            deferred_faults: None,
        }
    }

    /// Total faults injected so far (immediate plus any deferred count).
    pub fn total(&self) -> u64 {
        self.immediate_faults
            + self
                .deferred_faults
                .as_ref()
                .map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A hardware failure mode a campaign can inject.
///
/// Implementations must be deterministic functions of `(sites, rng)`: all
/// randomness has to come from the trial's private `rng` stream, which is
/// what keeps campaigns bit-identical across worker-thread counts.
///
/// # Locality contract
///
/// The checkpoint-resumed engine ([`crate::TrialEngine::CheckpointResumed`])
/// resumes each trial at the earliest layer its faults can affect, so an
/// injection must only corrupt (a) the parameters addressed by `sites`
/// (expansion within a site's stored word — e.g. a burst — stays in the same
/// parameter and is fine; so does int8 scale/zero-point corruption, which the
/// virtual-axis element keeps inside the sampled parameter) and (b), when
/// [`FaultModel::perturbs_activations`]
/// is `true`, activation-slot outputs. A model that mutated parameters
/// *outside* its sampled sites would make resumed evaluation diverge from a
/// full forward; all models in this crate satisfy the contract, which the
/// `checkpoint_identity` suite pins.
pub trait FaultModel: fmt::Debug + Send + Sync {
    /// Short name used in reports (`"bitflip"`, `"burst4"`, …).
    fn name(&self) -> &str;

    /// Whether the engine should sample parameter-memory sites for this
    /// model. Datapath models return `false` and ignore the `sites` slice.
    fn uses_parameter_sites(&self) -> bool {
        true
    }

    /// Whether the model installs activation wrappers during a trial. When
    /// `true`, the engine snapshots each activation slot before injection and
    /// reinstalls the originals afterwards.
    fn perturbs_activations(&self) -> bool {
        false
    }

    /// Applies one trial's faults to `network`.
    fn inject(
        &self,
        network: &mut Network,
        sites: &[FaultSite],
        ctx: &TrialContext<'_>,
        rng: &mut StdRng,
    ) -> Injection;
}

/// The paper's transient single-bit-flip model: every sampled parameter bit
/// is XOR-flipped in its Q15.16 word.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransientBitFlip;

impl FaultModel for TransientBitFlip {
    fn name(&self) -> &str {
        "bitflip"
    }

    fn inject(
        &self,
        network: &mut Network,
        sites: &[FaultSite],
        _ctx: &TrialContext<'_>,
        _rng: &mut StdRng,
    ) -> Injection {
        apply_bit_flips(network, sites);
        Injection::immediate(sites.len() as u64)
    }
}

/// A multi-cell upset: each sampled site seeds a burst of `length` adjacent
/// bit flips within the same word (clamped at the word boundary — 32 bits for
/// Q15.16 and f32-scale words, 16 for native f16 words, 8 for int8 bytes).
///
/// Bursts follow physical cell adjacency, not bit-class boundaries: in a
/// stratified campaign a burst *seeded* in the mantissa stratum may extend
/// into the adjacent exponent bits. Per-stratum results for this model
/// therefore measure "bursts originating in the stratum", which is the
/// physically meaningful attribution — clamping bursts to the stratum would
/// mismodel the upset.
#[derive(Debug, Clone, Copy)]
pub struct MultiBitBurst {
    /// Number of adjacent bits flipped per burst (1–32).
    pub length: u32,
}

impl MultiBitBurst {
    /// Creates a burst model of the given length.
    ///
    /// # Panics
    ///
    /// Panics if `length` is 0 or exceeds 32; use
    /// [`crate::StatCampaignConfig::validate`]-style checks upstream for a
    /// fallible path.
    pub fn new(length: u32) -> Self {
        assert!(
            (1..=32).contains(&length),
            "burst length {length} outside 1..=32"
        );
        MultiBitBurst { length }
    }
}

impl FaultModel for MultiBitBurst {
    fn name(&self) -> &str {
        "burst"
    }

    fn inject(
        &self,
        network: &mut Network,
        sites: &[FaultSite],
        _ctx: &TrialContext<'_>,
        _rng: &mut StdRng,
    ) -> Injection {
        Injection::immediate(apply_bit_flip_bursts(network, sites, self.length))
    }
}

/// Permanent stuck-at defects: every sampled site is forced to 0 or 1 (each
/// with probability ½, drawn from the trial stream). A bit that already holds
/// the stuck value is unaffected — which is exactly how stuck-at defects
/// differ from flips, and why roughly half of them are masked outright.
#[derive(Debug, Clone, Copy, Default)]
pub struct StuckAtFaultModel;

impl FaultModel for StuckAtFaultModel {
    fn name(&self) -> &str {
        "stuck_at"
    }

    fn inject(
        &self,
        network: &mut Network,
        sites: &[FaultSite],
        _ctx: &TrialContext<'_>,
        rng: &mut StdRng,
    ) -> Injection {
        let defects: Vec<StuckAtFault> = sites
            .iter()
            .map(|&site| StuckAtFault {
                site,
                value: if rng.gen_bool(0.5) {
                    StuckValue::One
                } else {
                    StuckValue::Zero
                },
            })
            .collect();
        apply_stuck_at(network, &defects);
        Injection::immediate(defects.len() as u64)
    }
}

/// Transient bit flips in activation values (the datapath, not the memory).
///
/// For the duration of one trial every activation slot is wrapped by a
/// corrupter that, after the inner activation runs, flips each bit of the
/// output tensor's Q15.16 encoding independently at the campaign's fault
/// rate — restricted to the active stratum's bit classes. The engine
/// reinstalls the original activations when the trial ends.
#[derive(Debug, Clone, Copy, Default)]
pub struct ActivationBitFlip;

impl FaultModel for ActivationBitFlip {
    fn name(&self) -> &str {
        "activation_bitflip"
    }

    fn uses_parameter_sites(&self) -> bool {
        false
    }

    fn perturbs_activations(&self) -> bool {
        true
    }

    fn inject(
        &self,
        network: &mut Network,
        _sites: &[FaultSite],
        ctx: &TrialContext<'_>,
        rng: &mut StdRng,
    ) -> Injection {
        let flips = Arc::new(AtomicU64::new(0));
        for slot in network.activation_slots() {
            // Each slot gets a private, deterministic stream drawn from the
            // trial RNG, so corruption is independent of evaluation order
            // *across* slots while staying a pure function of the trial.
            let slot_seed: u64 = rng.gen();
            let inner = slot.replace_activation(Box::new(NoopActivation));
            slot.replace_activation(Box::new(CorruptingActivation {
                inner,
                rate: ctx.fault_rate,
                bits: ctx.bit_positions.to_vec(),
                rng: StdRng::seed_from_u64(slot_seed),
                flips: Arc::clone(&flips),
            }));
        }
        Injection {
            immediate_faults: 0,
            deferred_faults: Some(flips),
        }
    }
}

/// A persistent datapath-fault injector for shadow ("canary") execution.
///
/// The campaign engine installs [`ActivationBitFlip`] wrappers for exactly
/// one trial and then restores the original activations. A canary replica in
/// the serving path needs the opposite lifecycle: wrap a network *once* and
/// let the corrupters keep flipping bits across every batch of mirrored
/// traffic, while a live counter reports how many faults were injected so
/// detection coverage (violations fired / faults injected) can be measured.
///
/// `install` wraps every activation slot of `network` using the same
/// taxonomy, sampler and Q15.16 bit semantics as the campaign's datapath
/// model; the handle stays valid for the network's lifetime (clones of the
/// network share the same counter).
#[derive(Debug)]
pub struct CanaryInjector {
    flips: Arc<AtomicU64>,
}

impl CanaryInjector {
    /// Wraps every activation slot of `network` with a persistent corrupter
    /// flipping each output bit in `bits` independently at per-bit `rate`.
    /// Deterministic for a given `seed` and sequence of forward shapes.
    pub fn install(network: &mut Network, rate: f64, bits: &[u32], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let ctx = TrialContext {
            fault_rate: rate,
            bit_positions: bits,
        };
        let injection = ActivationBitFlip.inject(network, &[], &ctx, &mut rng);
        CanaryInjector {
            flips: injection
                .deferred_faults
                .expect("datapath injection always defers its fault counter"),
        }
    }

    /// Total bits flipped by the wrapped network's forwards so far.
    pub fn faults_injected(&self) -> u64 {
        self.flips.load(Ordering::Relaxed)
    }
}

/// Placeholder used while swapping a slot's activation out and back in.
#[derive(Debug, Clone)]
struct NoopActivation;

impl Activation for NoopActivation {
    fn name(&self) -> &str {
        "noop"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        Ok(input.clone())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        Ok(grad_output.clone())
    }

    fn eval_scalar(&self, x: f32, _neuron: usize) -> f32 {
        x
    }

    fn clone_box(&self) -> Box<dyn Activation> {
        Box::new(self.clone())
    }
}

/// Wrapper that corrupts the inner activation's output bits at a per-bit rate.
#[derive(Debug)]
struct CorruptingActivation {
    inner: Box<dyn Activation>,
    rate: f64,
    bits: Vec<u32>,
    rng: StdRng,
    flips: Arc<AtomicU64>,
}

impl Activation for CorruptingActivation {
    fn name(&self) -> &str {
        "corrupting"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let mut out = self.inner.forward(input)?;
        let values = out.as_mut_slice();
        let population = values.len() as u64 * self.bits.len() as u64;
        // The shared de-duplicated sampler keeps the fault counter's meaning
        // ("distinct flipped bits") and the corruption distribution identical
        // to the parameter-memory models.
        let addresses = sample_addresses(&mut self.rng, population, self.rate);
        for &address in &addresses {
            let element = (address / self.bits.len() as u64) as usize;
            let bit = self.bits[(address % self.bits.len() as u64) as usize];
            values[element] = Fixed32::from_f32(values[element])
                .with_bit_flipped(bit)
                .to_f32();
        }
        self.flips
            .fetch_add(addresses.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        self.inner.backward(grad_output)
    }

    fn eval_scalar(&self, x: f32, neuron: usize) -> f32 {
        self.inner.eval_scalar(x, neuron)
    }

    // Parameter traversal must see exactly the wrapped activation's
    // parameters so snapshots and memory maps stay index-stable mid-trial.
    fn params(&self) -> Vec<&Parameter> {
        self.inner.params()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        self.inner.params_mut()
    }

    // Detection telemetry must see the wrapped activation's bounds: the
    // corrupter flips bits in this slot's *output*, and it is the *next*
    // bounded slot's violation count that detects them. Without delegation a
    // wrapped network would report zero violations everywhere.
    fn count_violations(&self, input: &Tensor) -> u64 {
        self.inner.count_violations(input)
    }

    fn clone_box(&self) -> Box<dyn Activation> {
        Box::new(CorruptingActivation {
            inner: self.inner.clone_box(),
            rate: self.rate,
            bits: self.bits.clone(),
            rng: self.rng.clone(),
            flips: Arc::clone(&self.flips),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::MemoryMap;
    use crate::strata::{BitClass, StratifiedSampler, StratumSpec};
    use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
    use fitact_nn::Mode;
    use rand::SeedableRng;

    fn small_network() -> Network {
        let mut rng = StdRng::seed_from_u64(1);
        Network::new(
            "mlp",
            Sequential::new()
                .with(Box::new(Linear::new(4, 8, &mut rng)))
                .with(Box::new(ActivationLayer::relu("h", &[8])))
                .with(Box::new(Linear::new(8, 2, &mut rng))),
        )
    }

    fn ctx<'a>(rate: f64, bits: &'a [u32]) -> TrialContext<'a> {
        TrialContext {
            fault_rate: rate,
            bit_positions: bits,
        }
    }

    #[test]
    fn transient_flip_changes_and_restores() {
        let mut net = small_network();
        crate::injector::quantize_network(&mut net);
        let before = net.snapshot();
        let site = FaultSite {
            param_index: 0,
            element: 2,
            bit: 10,
        };
        let bits: Vec<u32> = (0..32).collect();
        let model = TransientBitFlip;
        let mut rng = StdRng::seed_from_u64(0);
        let injection = model.inject(&mut net, &[site], &ctx(1e-3, &bits), &mut rng);
        assert_eq!(injection.total(), 1);
        assert_ne!(net.snapshot(), before);
        model.inject(&mut net, &[site], &ctx(1e-3, &bits), &mut rng);
        assert_eq!(net.snapshot(), before, "second flip restores");
    }

    #[test]
    fn burst_flips_adjacent_bits_without_crossing_the_word() {
        let mut net = small_network();
        net.params_mut()[0].data_mut().fill(0.0);
        let model = MultiBitBurst::new(4);
        let bits: Vec<u32> = (0..32).collect();
        let mut rng = StdRng::seed_from_u64(0);
        // A burst starting at bit 30 only covers bits 30 and 31.
        let site = FaultSite {
            param_index: 0,
            element: 0,
            bit: 30,
        };
        let injection = model.inject(&mut net, &[site], &ctx(1e-3, &bits), &mut rng);
        assert_eq!(injection.total(), 2);
        let word = Fixed32::from_f32(net.params()[0].data().as_slice()[0]).bits();
        assert_eq!(word, 0b11 << 30);
    }

    #[test]
    fn burst_deduplicates_overlapping_sites() {
        let mut net = small_network();
        net.params_mut()[0].data_mut().fill(0.0);
        let model = MultiBitBurst::new(4);
        let bits: Vec<u32> = (0..32).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let overlapping = [
            FaultSite {
                param_index: 0,
                element: 0,
                bit: 4,
            },
            FaultSite {
                param_index: 0,
                element: 0,
                bit: 6,
            },
        ];
        let injection = model.inject(&mut net, &overlapping, &ctx(1e-3, &bits), &mut rng);
        // Bits 4..8 ∪ 6..10 = 4..10: six distinct flips, not eight.
        assert_eq!(injection.total(), 6);
    }

    #[test]
    #[should_panic(expected = "outside 1..=32")]
    fn zero_length_burst_panics() {
        let _ = MultiBitBurst::new(0);
    }

    #[test]
    fn stuck_at_is_idempotent_within_a_polarity() {
        let mut net = small_network();
        net.params_mut()[0].data_mut().fill(0.0);
        let model = StuckAtFaultModel;
        let bits: Vec<u32> = (0..32).collect();
        let site = FaultSite {
            param_index: 0,
            element: 0,
            bit: 16,
        };
        // Same seed twice ⇒ same polarity twice ⇒ same final value.
        let mut rng = StdRng::seed_from_u64(3);
        model.inject(&mut net, &[site], &ctx(1e-3, &bits), &mut rng);
        let once = net.params()[0].data().as_slice()[0];
        let mut rng = StdRng::seed_from_u64(3);
        model.inject(&mut net, &[site], &ctx(1e-3, &bits), &mut rng);
        assert_eq!(net.params()[0].data().as_slice()[0], once);
        assert!(once == 0.0 || once == 1.0, "bit 16 has weight 1.0");
    }

    #[test]
    fn activation_model_corrupts_the_datapath_only() {
        let mut net = small_network();
        let params_before = net.snapshot();
        let model = ActivationBitFlip;
        let exponent_bits: Vec<u32> = BitClass::Exponent.bits().collect();
        let mut rng = StdRng::seed_from_u64(5);
        // A huge rate so flips certainly land during the forward pass.
        let injection = model.inject(&mut net, &[], &ctx(0.05, &exponent_bits), &mut rng);
        assert_eq!(injection.total(), 0, "nothing flipped before evaluation");
        let clean = {
            let mut reference = small_network();
            reference
                .forward(&Tensor::ones(&[4, 4]), Mode::Eval)
                .unwrap()
        };
        let corrupted = net.forward(&Tensor::ones(&[4, 4]), Mode::Eval).unwrap();
        assert!(injection.total() > 0, "evaluation recorded deferred flips");
        assert_ne!(clean.as_slice(), corrupted.as_slice());
        // Parameters were never touched.
        assert_eq!(net.snapshot(), params_before);
    }

    #[test]
    fn canary_injector_counts_faults_across_batches() {
        let mut net = small_network();
        let injector = CanaryInjector::install(&mut net, 0.05, &(0..32).collect::<Vec<_>>(), 42);
        assert_eq!(injector.faults_injected(), 0, "no forward, no faults yet");
        net.forward(&Tensor::ones(&[4, 4]), Mode::Eval).unwrap();
        let after_one = injector.faults_injected();
        assert!(after_one > 0, "persistent wrapper flips on the first batch");
        net.forward(&Tensor::ones(&[4, 4]), Mode::Eval).unwrap();
        assert!(
            injector.faults_injected() > after_one,
            "and keeps flipping on later batches"
        );
    }

    #[test]
    fn corrupting_wrapper_delegates_violation_counting() {
        // A bounded stand-in: counts every value above 1.0.
        #[derive(Debug, Clone)]
        struct Bounded;
        impl Activation for Bounded {
            fn name(&self) -> &str {
                "bounded"
            }
            fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
                Ok(input.map(|x| x.clamp(0.0, 1.0)))
            }
            fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
                Ok(grad_output.clone())
            }
            fn eval_scalar(&self, x: f32, _neuron: usize) -> f32 {
                x.clamp(0.0, 1.0)
            }
            fn count_violations(&self, input: &Tensor) -> u64 {
                input.as_slice().iter().filter(|&&x| x > 1.0).count() as u64
            }
            fn clone_box(&self) -> Box<dyn Activation> {
                Box::new(self.clone())
            }
        }
        let wrapper = CorruptingActivation {
            inner: Box::new(Bounded),
            rate: 0.0,
            bits: vec![0],
            rng: StdRng::seed_from_u64(0),
            flips: Arc::new(AtomicU64::new(0)),
        };
        let x = Tensor::from_vec(vec![0.5, 2.0, 3.0], &[1, 3]).unwrap();
        assert_eq!(wrapper.count_violations(&x), 2);
    }

    #[test]
    fn engine_flags_match_the_models() {
        assert!(TransientBitFlip.uses_parameter_sites());
        assert!(!TransientBitFlip.perturbs_activations());
        assert!(MultiBitBurst::new(2).uses_parameter_sites());
        assert!(StuckAtFaultModel.uses_parameter_sites());
        assert!(!ActivationBitFlip.uses_parameter_sites());
        assert!(ActivationBitFlip.perturbs_activations());
        assert_eq!(TransientBitFlip.name(), "bitflip");
        assert_eq!(ActivationBitFlip.name(), "activation_bitflip");
        assert_eq!(MultiBitBurst::new(2).name(), "burst");
        assert_eq!(StuckAtFaultModel.name(), "stuck_at");
    }

    #[test]
    fn models_compose_with_the_stratified_sampler() {
        let mut net = small_network();
        crate::injector::quantize_network(&mut net);
        let map = MemoryMap::of_network(&net);
        let sampler = StratifiedSampler::new(&map, &StratumSpec::by_bit_class()).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let before = net.snapshot();
        // Mantissa stratum (index 2): flips only touch fraction bits, so even
        // if every fraction bit of a word flips, the value moves by less than
        // 1.0 (Σ 2^-i for i in 1..=16).
        let sites = sampler.sample(2, 0.2, &mut rng);
        assert!(!sites.is_empty());
        TransientBitFlip.inject(
            &mut net,
            &sites,
            &ctx(0.2, sampler.bit_positions(2)),
            &mut rng,
        );
        for (b, a) in before.iter().zip(net.snapshot().iter()) {
            for (x, y) in b.as_slice().iter().zip(a.as_slice()) {
                assert!((x - y).abs() < 1.0, "mantissa flips moved {x} to {y}");
            }
        }
    }
}
