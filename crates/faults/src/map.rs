//! The addressable parameter memory of a network.

use fitact_nn::Network;
use fitact_tensor::Precision;

/// The native storage encoding of a fault-space span's words.
///
/// Fault addressing follows the *stored* representation: a span of f16
/// parameters exposes 16 bits per word, an int8 span 8 bits per value (its
/// f32 quantisation scales form their own 32-bit span), and f32-stored
/// parameters keep the Q15.16 campaign grid the paper's fault model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WordEncoding {
    /// Q15.16 fixed point in a 32-bit word (f32-stored parameters on the
    /// campaign arithmetic grid).
    Fixed32,
    /// IEEE 754 binary16 in a 16-bit word (native f16 parameters).
    F16,
    /// A two's-complement quantised value or zero-point in an 8-bit word.
    Int8,
    /// An IEEE 754 binary32 word (int8 per-channel quantisation scales).
    Scale32,
}

impl WordEncoding {
    /// Number of bits per stored word of this encoding.
    pub fn bits(self) -> u64 {
        match self {
            WordEncoding::Fixed32 | WordEncoding::Scale32 => 32,
            WordEncoding::F16 => 16,
            WordEncoding::Int8 => 8,
        }
    }

    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            WordEncoding::Fixed32 => "q15.16",
            WordEncoding::F16 => "f16",
            WordEncoding::Int8 => "int8",
            WordEncoding::Scale32 => "f32",
        }
    }
}

/// One contiguous run of same-encoding words in the fault space.
///
/// An f32 or f16 parameter contributes exactly one span. A per-channel int8
/// parameter contributes **three**: its quantised values, its f32 scales and
/// its i8 zero-points — all sharing the parameter's `param_index`, with
/// `element_base` mapping span-local elements onto the parameter's virtual
/// element axis (`[0, numel)` values, `[numel, numel + C)` scales,
/// `[numel + C, numel + 2C)` zero-points).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSpan {
    /// Slash-separated parameter path (e.g. `"3/weight"`); the scale and
    /// zero-point spans of an int8 parameter append `#scales` /
    /// `#zero_points`.
    pub path: String,
    /// Index of the parameter in the network's deterministic traversal order.
    pub param_index: usize,
    /// Number of stored words in this span.
    pub numel: usize,
    /// First bit address of this span in the flat fault space.
    pub bit_offset: u64,
    /// Native storage encoding of the span's words.
    pub encoding: WordEncoding,
    /// Offset this span's local element indices by on the parameter's
    /// virtual element axis (non-zero only for int8 scale/zero-point spans).
    pub element_base: usize,
}

/// The flat bit-addressable memory that stores a network's parameters.
///
/// The paper's fault space is "the weights and biases of different layers, as
/// well as parameters of activation functions"; every parameter the network
/// exposes (including batch-norm buffers and FitReLU bounds) is included.
/// Fig. 1 restricts faults to particular layers — use
/// [`MemoryMap::of_network_filtered`] with a path predicate for that.
#[derive(Debug, Clone, Default)]
pub struct MemoryMap {
    spans: Vec<ParamSpan>,
    total_bits: u64,
}

impl MemoryMap {
    /// Builds the memory map of every parameter in the network.
    pub fn of_network(network: &Network) -> Self {
        Self::of_network_filtered(network, |_| true)
    }

    /// Builds a memory map restricted to parameters whose path satisfies
    /// `filter`.
    ///
    /// The paper's Fig. 1 case study injects faults only into the input layer
    /// and the second convolutional layer of VGG16; that corresponds to a
    /// filter accepting paths starting with those layers' prefixes.
    pub fn of_network_filtered<F: Fn(&str) -> bool>(network: &Network, filter: F) -> Self {
        let mut spans = Vec::new();
        let mut total_bits = 0u64;
        let mut push = |path: String,
                        param_index: usize,
                        numel: usize,
                        encoding: WordEncoding,
                        element_base: usize| {
            spans.push(ParamSpan {
                path,
                param_index,
                numel,
                bit_offset: total_bits,
                encoding,
                element_base,
            });
            total_bits += numel as u64 * encoding.bits();
        };
        for (param_index, info) in network.param_info().into_iter().enumerate() {
            if !filter(&info.path) || info.numel == 0 {
                continue;
            }
            match info.precision {
                Precision::F32 => {
                    push(info.path, param_index, info.numel, WordEncoding::Fixed32, 0);
                }
                Precision::F16 => {
                    push(info.path, param_index, info.numel, WordEncoding::F16, 0);
                }
                Precision::Int8 => {
                    let channels = info.channels;
                    push(
                        info.path.clone(),
                        param_index,
                        info.numel,
                        WordEncoding::Int8,
                        0,
                    );
                    push(
                        format!("{}#scales", info.path),
                        param_index,
                        channels,
                        WordEncoding::Scale32,
                        info.numel,
                    );
                    push(
                        format!("{}#zero_points", info.path),
                        param_index,
                        channels,
                        WordEncoding::Int8,
                        info.numel + channels,
                    );
                }
            }
        }
        MemoryMap { spans, total_bits }
    }

    /// Total number of bits in the fault space.
    pub fn total_bits(&self) -> u64 {
        self.total_bits
    }

    /// Total number of stored words (scalar parameters, plus quantisation
    /// scales and zero-points for int8 spans) in the fault space.
    pub fn total_words(&self) -> u64 {
        self.spans.iter().map(|s| s.numel as u64).sum()
    }

    /// The parameter spans making up the map, in traversal order.
    pub fn spans(&self) -> &[ParamSpan] {
        &self.spans
    }

    /// Returns `true` if no parameters are mapped.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Resolves a flat bit address into `(param_index, element, bit)`.
    ///
    /// `element` is on the owning parameter's virtual axis (int8 scales and
    /// zero-points address past the value elements — see [`ParamSpan`]);
    /// `bit` is within the span's native word width.
    ///
    /// Returns `None` if the address is outside the map.
    pub fn locate(&self, bit_address: u64) -> Option<(usize, usize, u32)> {
        if bit_address >= self.total_bits {
            return None;
        }
        // Spans are sorted by bit_offset; binary search for the containing span.
        let idx = match self
            .spans
            .binary_search_by(|s| s.bit_offset.cmp(&bit_address))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let span = &self.spans[idx];
        let local = bit_address - span.bit_offset;
        let bits = span.encoding.bits();
        let element = (local / bits) as usize;
        let bit = (local % bits) as u32;
        debug_assert!(element < span.numel);
        Some((span.param_index, span.element_base + element, bit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_network() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        Network::new(
            "mlp",
            Sequential::new()
                .with(Box::new(Linear::new(3, 2, &mut rng)))
                .with(Box::new(ActivationLayer::relu("h", &[2])))
                .with(Box::new(Linear::new(2, 2, &mut rng))),
        )
    }

    #[test]
    fn map_counts_every_parameter_bit() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        // (3*2 + 2) + (2*2 + 2) = 14 words.
        assert_eq!(map.total_words(), 14);
        assert_eq!(map.total_bits(), 14 * 32);
        assert_eq!(map.spans().len(), 4);
        assert!(!map.is_empty());
    }

    #[test]
    fn filtered_map_keeps_matching_layers_only() {
        let net = small_network();
        let map = MemoryMap::of_network_filtered(&net, |path| path.starts_with("0/"));
        assert_eq!(map.total_words(), 8); // first linear only
        assert_eq!(map.spans().len(), 2);
        let empty = MemoryMap::of_network_filtered(&net, |_| false);
        assert!(empty.is_empty());
        assert_eq!(empty.total_bits(), 0);
    }

    #[test]
    fn locate_resolves_boundaries() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        // First bit of the first parameter.
        assert_eq!(map.locate(0), Some((0, 0, 0)));
        // Last bit of the first word.
        assert_eq!(map.locate(31), Some((0, 0, 31)));
        // First bit of the second word.
        assert_eq!(map.locate(32), Some((0, 1, 0)));
        // First bit of the second parameter (bias of the first linear):
        // weight has 6 elements → offset 6*32 = 192.
        assert_eq!(map.locate(192), Some((1, 0, 0)));
        // Out of range.
        assert_eq!(map.locate(map.total_bits()), None);
    }

    #[test]
    fn locate_covers_every_span() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        for span in map.spans() {
            let (p, e, b) = map.locate(span.bit_offset).unwrap();
            assert_eq!(p, span.param_index);
            assert_eq!((e, b), (0, 0));
            let last = span.bit_offset + span.numel as u64 * 32 - 1;
            let (p, e, b) = map.locate(last).unwrap();
            assert_eq!(p, span.param_index);
            assert_eq!(e, span.numel - 1);
            assert_eq!(b, 31);
        }
    }

    #[test]
    fn span_paths_match_network_paths() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        let paths: Vec<&str> = map.spans().iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["0/weight", "0/bias", "2/weight", "2/bias"]);
    }

    #[test]
    fn f16_spans_expose_sixteen_bits_per_word() {
        let mut net = small_network();
        net.quantize_to(fitact_tensor::Precision::F16);
        let map = MemoryMap::of_network(&net);
        // Matrix weights (6 + 4 words) are f16, biases (2 + 2) stay f32.
        assert_eq!(map.total_words(), 14);
        assert_eq!(map.total_bits(), (6 + 4) * 16 + (2 + 2) * 32);
        let w = &map.spans()[0];
        assert_eq!(w.encoding, WordEncoding::F16);
        // The last bit of the f16 weight span is bit 15 of its last element.
        let last = w.bit_offset + w.numel as u64 * 16 - 1;
        assert_eq!(map.locate(last), Some((0, w.numel - 1, 15)));
        assert_eq!(map.spans()[1].encoding, WordEncoding::Fixed32);
    }

    #[test]
    fn int8_parameters_expose_value_scale_and_zero_point_spans() {
        let mut net = small_network();
        net.quantize_to(fitact_tensor::Precision::Int8);
        let map = MemoryMap::of_network(&net);
        // First weight [2, 3]: 6 int8 values, 2 f32 scales, 2 i8 zero-points.
        let spans: Vec<_> = map.spans().iter().filter(|s| s.param_index == 0).collect();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].path, "0/weight");
        assert_eq!(
            (spans[0].numel, spans[0].encoding, spans[0].element_base),
            (6, WordEncoding::Int8, 0)
        );
        assert_eq!(spans[1].path, "0/weight#scales");
        assert_eq!(
            (spans[1].numel, spans[1].encoding, spans[1].element_base),
            (2, WordEncoding::Scale32, 6)
        );
        assert_eq!(spans[2].path, "0/weight#zero_points");
        assert_eq!(
            (spans[2].numel, spans[2].encoding, spans[2].element_base),
            (2, WordEncoding::Int8, 8)
        );
        // Locate lands on the virtual element axis: the first scale bit is
        // element 6 (numel) of parameter 0.
        assert_eq!(map.locate(spans[1].bit_offset), Some((0, 6, 0)));
        // And the first zero-point is element 8 (numel + channels), bit 0..8.
        assert_eq!(map.locate(spans[2].bit_offset), Some((0, 8, 0)));
        assert_eq!(
            map.total_bits(),
            (6 * 8 + 2 * 32 + 2 * 8) as u64 // weight 0: q + scales + zps
                + 2 * 32 // bias 0 stays f32
                + (4 * 8 + 2 * 32 + 2 * 8) as u64 // weight 2
                + 2 * 32 // bias 2
        );
    }

    #[test]
    fn word_encoding_widths_and_labels() {
        assert_eq!(WordEncoding::Fixed32.bits(), 32);
        assert_eq!(WordEncoding::Scale32.bits(), 32);
        assert_eq!(WordEncoding::F16.bits(), 16);
        assert_eq!(WordEncoding::Int8.bits(), 8);
        for e in [
            WordEncoding::Fixed32,
            WordEncoding::F16,
            WordEncoding::Int8,
            WordEncoding::Scale32,
        ] {
            assert!(!e.label().is_empty());
        }
    }
}
