//! The addressable parameter memory of a network.

use fitact_nn::Network;

/// One parameter tensor's slice of the fault space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSpan {
    /// Slash-separated parameter path (e.g. `"3/weight"`).
    pub path: String,
    /// Index of the parameter in the network's deterministic traversal order.
    pub param_index: usize,
    /// Number of scalar elements in the parameter.
    pub numel: usize,
    /// First bit address of this parameter in the flat fault space.
    pub bit_offset: u64,
}

/// The flat bit-addressable memory that stores a network's parameters.
///
/// The paper's fault space is "the weights and biases of different layers, as
/// well as parameters of activation functions"; every parameter the network
/// exposes (including batch-norm buffers and FitReLU bounds) is included.
/// Fig. 1 restricts faults to particular layers — use
/// [`MemoryMap::of_network_filtered`] with a path predicate for that.
#[derive(Debug, Clone, Default)]
pub struct MemoryMap {
    spans: Vec<ParamSpan>,
    total_bits: u64,
}

/// Bits per stored parameter word (Q15.16 fixed point).
pub const BITS_PER_WORD: u64 = 32;

impl MemoryMap {
    /// Builds the memory map of every parameter in the network.
    pub fn of_network(network: &Network) -> Self {
        Self::of_network_filtered(network, |_| true)
    }

    /// Builds a memory map restricted to parameters whose path satisfies
    /// `filter`.
    ///
    /// The paper's Fig. 1 case study injects faults only into the input layer
    /// and the second convolutional layer of VGG16; that corresponds to a
    /// filter accepting paths starting with those layers' prefixes.
    pub fn of_network_filtered<F: Fn(&str) -> bool>(network: &Network, filter: F) -> Self {
        let mut spans = Vec::new();
        let mut total_bits = 0u64;
        for (param_index, info) in network.param_info().into_iter().enumerate() {
            if !filter(&info.path) || info.numel == 0 {
                continue;
            }
            spans.push(ParamSpan {
                path: info.path,
                param_index,
                numel: info.numel,
                bit_offset: total_bits,
            });
            total_bits += info.numel as u64 * BITS_PER_WORD;
        }
        MemoryMap { spans, total_bits }
    }

    /// Total number of bits in the fault space.
    pub fn total_bits(&self) -> u64 {
        self.total_bits
    }

    /// Total number of 32-bit words (scalar parameters) in the fault space.
    pub fn total_words(&self) -> u64 {
        self.total_bits / BITS_PER_WORD
    }

    /// The parameter spans making up the map, in traversal order.
    pub fn spans(&self) -> &[ParamSpan] {
        &self.spans
    }

    /// Returns `true` if no parameters are mapped.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Resolves a flat bit address into `(param_index, element, bit)`.
    ///
    /// Returns `None` if the address is outside the map.
    pub fn locate(&self, bit_address: u64) -> Option<(usize, usize, u32)> {
        if bit_address >= self.total_bits {
            return None;
        }
        // Spans are sorted by bit_offset; binary search for the containing span.
        let idx = match self
            .spans
            .binary_search_by(|s| s.bit_offset.cmp(&bit_address))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let span = &self.spans[idx];
        let local = bit_address - span.bit_offset;
        let element = (local / BITS_PER_WORD) as usize;
        let bit = (local % BITS_PER_WORD) as u32;
        debug_assert!(element < span.numel);
        Some((span.param_index, element, bit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_network() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        Network::new(
            "mlp",
            Sequential::new()
                .with(Box::new(Linear::new(3, 2, &mut rng)))
                .with(Box::new(ActivationLayer::relu("h", &[2])))
                .with(Box::new(Linear::new(2, 2, &mut rng))),
        )
    }

    #[test]
    fn map_counts_every_parameter_bit() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        // (3*2 + 2) + (2*2 + 2) = 14 words.
        assert_eq!(map.total_words(), 14);
        assert_eq!(map.total_bits(), 14 * 32);
        assert_eq!(map.spans().len(), 4);
        assert!(!map.is_empty());
    }

    #[test]
    fn filtered_map_keeps_matching_layers_only() {
        let net = small_network();
        let map = MemoryMap::of_network_filtered(&net, |path| path.starts_with("0/"));
        assert_eq!(map.total_words(), 8); // first linear only
        assert_eq!(map.spans().len(), 2);
        let empty = MemoryMap::of_network_filtered(&net, |_| false);
        assert!(empty.is_empty());
        assert_eq!(empty.total_bits(), 0);
    }

    #[test]
    fn locate_resolves_boundaries() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        // First bit of the first parameter.
        assert_eq!(map.locate(0), Some((0, 0, 0)));
        // Last bit of the first word.
        assert_eq!(map.locate(31), Some((0, 0, 31)));
        // First bit of the second word.
        assert_eq!(map.locate(32), Some((0, 1, 0)));
        // First bit of the second parameter (bias of the first linear):
        // weight has 6 elements → offset 6*32 = 192.
        assert_eq!(map.locate(192), Some((1, 0, 0)));
        // Out of range.
        assert_eq!(map.locate(map.total_bits()), None);
    }

    #[test]
    fn locate_covers_every_span() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        for span in map.spans() {
            let (p, e, b) = map.locate(span.bit_offset).unwrap();
            assert_eq!(p, span.param_index);
            assert_eq!((e, b), (0, 0));
            let last = span.bit_offset + span.numel as u64 * 32 - 1;
            let (p, e, b) = map.locate(last).unwrap();
            assert_eq!(p, span.param_index);
            assert_eq!(e, span.numel - 1);
            assert_eq!(b, 31);
        }
    }

    #[test]
    fn span_paths_match_network_paths() {
        let net = small_network();
        let map = MemoryMap::of_network(&net);
        let paths: Vec<&str> = map.spans().iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["0/weight", "0/bias", "2/weight", "2/bias"]);
    }
}
