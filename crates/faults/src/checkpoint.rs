//! Checkpoint-resumed trial evaluation: cache clean layer activations once,
//! re-execute only the faulted suffix of the network per trial.
//!
//! A fault injected into layer `k` cannot change any activation produced
//! before layer `k`, so a campaign trial does not need to re-run layers
//! `0..k` — their outputs are exactly the fault-free activations. The
//! [`CheckpointCache`] snapshots every top-level layer-boundary activation of
//! the evaluation set once per campaign (one fault-free forward, batched the
//! same way [`Network::evaluate`] batches); each trial then resolves its
//! sampled fault sites to the earliest affected layer (a [`ResumePlan`]) and
//! resumes there via [`Network::forward_from`].
//!
//! The resumed evaluation is **bit-identical** to a full forward of the
//! faulted network: the skipped prefix is deterministic in [`Mode::Eval`] and
//! its parameters are unfaulted by construction, and the suffix, the
//! per-batch accuracy computation and the weighted accuracy accumulation are
//! the very same code paths. This is pinned by the `checkpoint_identity`
//! regression suite for all four fault models across 1/2/4 worker threads.
//!
//! Cost model: a full-forward campaign is `O(trials × depth)` layer
//! executions; a resumed campaign is `O(depth + trials × suffix)`, where the
//! suffix length is set by where the trial's faults land. The cache itself
//! trades memory for that time — it holds one activation tensor per layer
//! boundary per evaluation batch, captured once (the cold path) and shared
//! read-only by every campaign worker thread afterwards.

use crate::injector::FaultSite;
use crate::model::FaultModel;
use crate::FaultError;
use fitact_nn::metrics::RunningMean;
use fitact_nn::network::copy_batch_into;
use fitact_nn::{Mode, Network, NnError};
use fitact_tensor::Tensor;

/// One evaluation batch's share of the checkpoint cache.
#[derive(Debug)]
struct BatchCheckpoint {
    /// Row range `[start, end)` of the batch within the evaluation set.
    start: usize,
    end: usize,
    /// `boundaries[k]` is the clean activation flowing into top-level layer
    /// `k` for this batch — the tensor [`Network::forward_from`] resumes on.
    boundaries: Vec<Tensor>,
    /// Fault-free top-1 accuracy of the batch (derived from the cached clean
    /// predictions; reused verbatim by trials whose faults affect no layer).
    clean_accuracy: f32,
}

/// Read-only snapshot of the fault-free forward pass over an evaluation set:
/// every top-level layer-boundary activation, per batch, plus the clean
/// per-sample top-1 predictions and the pooled fault-free accuracy.
///
/// Captured once per campaign by [`CheckpointCache::capture`] and shared by
/// reference across all campaign worker threads (the cache is never written
/// after capture, so no synchronisation is needed).
#[derive(Debug)]
pub struct CheckpointCache {
    depth: usize,
    batches: Vec<BatchCheckpoint>,
    clean_predictions: Vec<usize>,
    fault_free_accuracy: f32,
}

impl CheckpointCache {
    /// Runs the fault-free forward over `inputs`/`targets` (batched exactly
    /// like [`Network::evaluate`]) and snapshots every top-level
    /// layer-boundary activation, the per-sample top-1 predictions and the
    /// per-batch clean accuracies.
    ///
    /// The network must already hold the parameter values the campaign's
    /// trials will restore to (its pre-campaign snapshot state); capturing
    /// from a different parameter state breaks the resume invariant of
    /// [`Sequential::forward_from`](fitact_nn::Sequential::forward_from).
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidConfig`] for a zero batch size or a
    /// target count that does not match `inputs`, and propagates forward-pass
    /// errors.
    pub fn capture(
        network: &mut Network,
        inputs: &Tensor,
        targets: &[usize],
        batch_size: usize,
    ) -> Result<Self, FaultError> {
        if batch_size == 0 {
            return Err(FaultError::InvalidConfig(
                "batch_size must be non-zero".into(),
            ));
        }
        if inputs.ndim() == 0 || inputs.dims()[0] != targets.len() {
            return Err(FaultError::InvalidConfig(format!(
                "inputs have {} samples but {} targets were given",
                inputs.dims().first().copied().unwrap_or(0),
                targets.len()
            )));
        }
        let depth = network.depth();
        let n = targets.len();
        let mut batches = Vec::with_capacity(n.div_ceil(batch_size));
        let mut clean_predictions = Vec::with_capacity(n);
        let mut acc = RunningMean::new();
        let mut staging = Tensor::default();
        let mut start = 0usize;
        while start < n {
            let end = (start + batch_size).min(n);
            copy_batch_into(inputs, start, end, &mut staging)?;
            let mut boundaries: Vec<Tensor> = Vec::with_capacity(depth);
            let logits = network.forward_inspect(&staging, Mode::Eval, &mut |k, t| {
                // The output boundary is summarised by predictions/accuracy
                // below; only the resumable input boundaries are stored.
                if k < depth {
                    boundaries.push(t.clone());
                }
            })?;
            let predictions = logits.argmax_rows().map_err(NnError::from)?;
            let correct = predictions
                .iter()
                .zip(&targets[start..end])
                .filter(|(p, t)| p == t)
                .count();
            // Same expression `fitact_nn::metrics::accuracy` evaluates, so the
            // cached value is bit-identical to a fresh evaluation's.
            let clean_accuracy = correct as f32 / (end - start) as f32;
            clean_predictions.extend(predictions);
            acc.push_weighted(clean_accuracy, end - start);
            batches.push(BatchCheckpoint {
                start,
                end,
                boundaries,
                clean_accuracy,
            });
            start = end;
        }
        Ok(CheckpointCache {
            depth,
            batches,
            clean_predictions,
            fault_free_accuracy: acc.mean(),
        })
    }

    /// Number of top-level layers the checkpoints were captured over.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of evaluation batches in the cache.
    pub fn num_batches(&self) -> usize {
        self.batches.len()
    }

    /// Fault-free top-1 accuracy over the whole evaluation set — identical to
    /// what [`Network::evaluate`] would report, but obtained from the single
    /// capture pass (the hoisted campaign baseline).
    pub fn fault_free_accuracy(&self) -> f32 {
        self.fault_free_accuracy
    }

    /// Clean top-1 predicted label of every evaluation sample, in dataset
    /// order.
    pub fn clean_predictions(&self) -> &[usize] {
        &self.clean_predictions
    }

    /// Total number of activation scalars held by the cache (diagnostics —
    /// the memory the campaign trades for its depth-proportional speedup).
    pub fn cached_elements(&self) -> usize {
        self.batches
            .iter()
            .map(|b| b.boundaries.iter().map(Tensor::numel).sum::<usize>())
            .sum()
    }

    /// Evaluates the (already faulted) `network` over the evaluation set,
    /// resuming every batch at layer boundary `resume` from the cached clean
    /// activations. `resume == depth` means no layer is affected: the cached
    /// clean per-batch accuracies are reused without touching the network.
    ///
    /// `targets` must be the same slice the cache was captured against.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn evaluate_resumed(
        &self,
        network: &mut Network,
        targets: &[usize],
        resume: usize,
    ) -> Result<f32, FaultError> {
        let mut acc = RunningMean::new();
        for batch in &self.batches {
            let batch_acc = if resume >= self.depth {
                batch.clean_accuracy
            } else {
                let logits = network.forward_from(resume, &batch.boundaries[resume], Mode::Eval)?;
                fitact_nn::metrics::accuracy(&logits, &targets[batch.start..batch.end])?
            };
            acc.push_weighted(batch_acc, batch.end - batch.start);
        }
        Ok(acc.mean())
    }
}

/// Maps a trial's fault sites to the earliest top-level layer they can
/// affect — the boundary [`CheckpointCache::evaluate_resumed`] resumes at.
#[derive(Debug, Clone)]
pub struct ResumePlan {
    /// Top-level layer index of every parameter, indexed by `param_index`
    /// (the first path segment of the parameter's traversal path).
    param_layer: Vec<usize>,
    /// Earliest top-level layer containing an activation slot, or `depth` if
    /// there is none — the floor for datapath (activation-corrupting) models.
    activation_floor: usize,
    depth: usize,
}

impl ResumePlan {
    /// Builds the site→layer resolution table for `network`.
    pub fn of_network(network: &mut Network) -> Self {
        let depth = network.depth();
        let param_layer = network
            .param_info()
            .iter()
            .map(|info| {
                // Paths are rooted at the top-level `Sequential`, so the first
                // segment is the child index ("3/weight", "5/conv/bias", …).
                // Anything unparsable resolves to layer 0: resuming earlier
                // than necessary is always correct, just slower.
                info.path
                    .split('/')
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0)
            })
            .collect();
        let activation_floor = network.root_mut().first_activation_layer().unwrap_or(depth);
        ResumePlan {
            param_layer,
            activation_floor,
            depth,
        }
    }

    /// Number of top-level layers the plan was built over.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The earliest layer boundary a trial of `model` with the given sampled
    /// `sites` can affect.
    ///
    /// Parameter-memory sites resolve through their parameter's layer;
    /// datapath models additionally floor the result at the first layer
    /// holding an activation slot. A trial that affects nothing (no sites, no
    /// datapath corruption) resolves to `depth`, i.e. "reuse the clean
    /// result".
    ///
    /// This relies on the [`FaultModel`] locality contract: an injection only
    /// corrupts the parameters of the layers containing its sites (burst
    /// expansion stays within a site's word, so within its layer) plus, for
    /// datapath models, activation outputs.
    pub fn resume_boundary(&self, model: &dyn FaultModel, sites: &[FaultSite]) -> usize {
        let mut resume = if model.perturbs_activations() {
            self.activation_floor
        } else {
            self.depth
        };
        for site in sites {
            let layer = self.param_layer.get(site.param_index).copied().unwrap_or(0);
            resume = resume.min(layer);
        }
        resume
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ActivationBitFlip, TransientBitFlip};
    use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_network() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        Network::new(
            "mlp",
            Sequential::new()
                .with(Box::new(Linear::new(3, 8, &mut rng)))
                .with(Box::new(ActivationLayer::relu("h", &[8])))
                .with(Box::new(Linear::new(8, 2, &mut rng))),
        )
    }

    fn eval_set(n: usize) -> (Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(1);
        let inputs = fitact_tensor::init::uniform(&[n, 3], -1.0, 1.0, &mut rng);
        let targets = (0..n)
            .map(|i| usize::from(inputs.as_slice()[i * 3] > 0.0))
            .collect();
        (inputs, targets)
    }

    #[test]
    fn capture_matches_evaluate_bit_for_bit() {
        let mut net = small_network();
        let (inputs, targets) = eval_set(50);
        // 50 samples at batch 16: three full batches plus a partial one.
        let reference = net.evaluate(&inputs, &targets, 16).unwrap();
        let cache = CheckpointCache::capture(&mut net, &inputs, &targets, 16).unwrap();
        assert_eq!(cache.fault_free_accuracy(), reference);
        assert_eq!(cache.num_batches(), 4);
        assert_eq!(cache.depth(), 3);
        assert_eq!(cache.clean_predictions().len(), 50);
        assert!(cache.cached_elements() > 0);
    }

    #[test]
    fn resumed_evaluation_from_any_boundary_matches_evaluate() {
        let mut net = small_network();
        let (inputs, targets) = eval_set(40);
        let cache = CheckpointCache::capture(&mut net, &inputs, &targets, 16).unwrap();
        // On the clean network every resume boundary reproduces the clean
        // accuracy exactly (the prefix is literally the cached values).
        for resume in 0..=cache.depth() {
            let acc = cache.evaluate_resumed(&mut net, &targets, resume).unwrap();
            assert_eq!(acc, cache.fault_free_accuracy(), "boundary {resume}");
        }
    }

    #[test]
    fn capture_validates_arguments() {
        let mut net = small_network();
        let (inputs, targets) = eval_set(8);
        assert!(CheckpointCache::capture(&mut net, &inputs, &targets, 0).is_err());
        assert!(CheckpointCache::capture(&mut net, &inputs, &targets[..4], 4).is_err());
    }

    #[test]
    fn resume_plan_resolves_sites_to_their_layer() {
        let mut net = small_network();
        let plan = ResumePlan::of_network(&mut net);
        assert_eq!(plan.depth(), 3);
        // Params: 0/weight, 0/bias (layer 0), 2/weight, 2/bias (layer 2).
        let site = |param_index| FaultSite {
            param_index,
            element: 0,
            bit: 0,
        };
        let model = TransientBitFlip;
        assert_eq!(plan.resume_boundary(&model, &[]), 3, "no faults → clean");
        assert_eq!(plan.resume_boundary(&model, &[site(2)]), 2);
        assert_eq!(plan.resume_boundary(&model, &[site(3), site(0)]), 0);
        // Datapath models floor at the first activation slot (layer 1) even
        // with no parameter sites.
        assert_eq!(plan.resume_boundary(&ActivationBitFlip, &[]), 1);
    }
}
