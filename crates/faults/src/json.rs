//! Machine-readable JSON renderings of campaign outcomes.
//!
//! The `fitact` CLI and the CI regression gates consume campaign results as
//! JSON; this module renders them without external dependencies. Numbers use
//! Rust's shortest-round-trip float formatting, so a value parsed back from
//! the JSON compares bit-equal to the original (`f32` values are widened to
//! `f64` first, which is exact). Non-finite values — illegal in JSON — are
//! emitted as `null`.

use crate::campaign::{CampaignReport, CampaignResult, StratumReport};
use crate::stats::WilsonInterval;
use std::fmt::Write as _;

/// Renders a finite float (f32 values widened exactly), or `null`.
fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Escapes and quotes a string for JSON.
fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl WilsonInterval {
    /// Renders the interval as a JSON object
    /// (`{"successes":…,"trials":…,"point":…,"low":…,"high":…}`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"successes\":{},\"trials\":{},\"point\":{},\"low\":{},\"high\":{}}}",
            self.successes,
            self.trials,
            number(self.point()),
            number(self.low),
            number(self.high)
        )
    }
}

impl StratumReport {
    /// Renders the stratum's outcome counts and intervals as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"label\":{},\"population_bits\":{},\"weight\":{},\"trials\":{},",
                "\"masked\":{},\"tolerable\":{},\"critical\":{},",
                "\"total_faults\":{},\"mean_accuracy\":{},",
                "\"critical_ci\":{},\"sdc_ci\":{}}}"
            ),
            quoted(&self.label),
            self.population_bits,
            number(self.weight),
            self.trials(),
            self.masked,
            self.tolerable,
            self.critical,
            self.total_faults,
            number(f64::from(self.mean_accuracy())),
            self.critical_ci.to_json(),
            self.sdc_ci.to_json()
        )
    }
}

impl CampaignReport {
    /// Renders the full statistical-campaign report as a JSON object.
    ///
    /// Layout (consumed by `fitact campaign` / `fitact diff-report`):
    ///
    /// ```json
    /// {
    ///   "fault_free_accuracy": 0.97, "fault_rate": 1e-6, "model": "bitflip",
    ///   "confidence": 0.95, "epsilon": 0.02, "critical_threshold": 0.05,
    ///   "allocation": "equal",
    ///   "rounds": 4, "converged": true, "total_trials": 96, "total_faults": 12,
    ///   "pooled_critical": {"successes":1,"trials":96,"point":…,"low":…,"high":…},
    ///   "pooled_sdc": {…},
    ///   "stratified_critical_half_width": 0.0312,
    ///   "population_weighted_critical_rate": 0.0104,
    ///   "strata": [ {…}, … ]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let strata: Vec<String> = self.strata.iter().map(StratumReport::to_json).collect();
        format!(
            concat!(
                "{{\"fault_free_accuracy\":{},\"fault_rate\":{},\"model\":{},",
                "\"confidence\":{},\"epsilon\":{},\"critical_threshold\":{},",
                "\"allocation\":{},",
                "\"rounds\":{},\"converged\":{},\"total_trials\":{},\"total_faults\":{},",
                "\"pooled_critical\":{},\"pooled_sdc\":{},",
                "\"stratified_critical_half_width\":{},",
                "\"population_weighted_critical_rate\":{},\"strata\":[{}]}}"
            ),
            number(f64::from(self.fault_free_accuracy)),
            number(self.fault_rate),
            quoted(&self.model),
            number(self.confidence),
            number(self.epsilon),
            number(f64::from(self.critical_threshold)),
            quoted(self.allocation.name()),
            self.rounds,
            self.converged,
            self.total_trials(),
            self.total_faults(),
            self.pooled_critical().to_json(),
            self.pooled_sdc().to_json(),
            number(self.stratified_critical_half_width()),
            number(self.population_weighted_critical_rate()),
            strata.join(",")
        )
    }
}

impl CampaignResult {
    /// Renders the fixed-trial-count campaign result as a JSON object.
    pub fn to_json(&self) -> String {
        let accuracies: Vec<String> = self
            .accuracies
            .iter()
            .map(|&a| number(f64::from(a)))
            .collect();
        format!(
            concat!(
                "{{\"fault_free_accuracy\":{},\"fault_rate\":{},\"trials\":{},",
                "\"total_faults\":{},\"mean_accuracy\":{},\"min_accuracy\":{},",
                "\"max_accuracy\":{},\"accuracies\":[{}]}}"
            ),
            number(f64::from(self.fault_free_accuracy)),
            number(self.fault_rate),
            self.stats.count,
            self.total_faults,
            number(f64::from(self.mean_accuracy())),
            number(f64::from(self.stats.min)),
            number(f64::from(self.stats.max)),
            accuracies.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_interval_json_shape() {
        let ci = WilsonInterval::new(3, 10, 1.96);
        let json = ci.to_json();
        assert!(json.starts_with("{\"successes\":3,\"trials\":10,"));
        assert!(json.contains("\"low\":"));
        assert!(json.contains("\"high\":"));
    }

    #[test]
    fn non_finite_values_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(4.871), "4.871");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(quoted("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
