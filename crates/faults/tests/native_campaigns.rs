//! Campaign determinism in reduced precision.
//!
//! The determinism contract — a trial's result depends only on `(seed,
//! stratum, index)` and the loaded parameters, never on thread count,
//! interruption or work partitioning — must hold when the network stores its
//! weights as native f16 words or per-channel int8, and when the fault models
//! corrupt those native encodings (f16 sign/exponent/mantissa classes, int8
//! value bytes, scale words and zero-points). This suite pins, for both
//! native precisions:
//!
//! * statistical campaigns bit-identical across 1/2/4 worker threads,
//! * bit-exact restoration of the native words after a campaign,
//! * checkpoint interrupt → resume equals a never-interrupted run,
//! * [`UnitRunner`] work units (the distributed execution half) identical
//!   regardless of partitioning and runner thread count.

use fitact_faults::{
    quantize_network, Campaign, CampaignControl, CampaignProgress, MultiBitBurst, RunOutcome,
    StatCampaignConfig, StratumSpec, TransientBitFlip, UnitRunner,
};
use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
use fitact_nn::loss::CrossEntropyLoss;
use fitact_nn::optim::Sgd;
use fitact_nn::Network;
use fitact_tensor::{init, NativeParam, Precision, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small trained MLP quantised to `precision`, plus its evaluation set.
fn trained_setup(precision: Precision) -> (Network, Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(0);
    let root = Sequential::new()
        .with(Box::new(Linear::new(2, 16, &mut rng)))
        .with(Box::new(ActivationLayer::relu("h", &[16])))
        .with(Box::new(Linear::new(16, 2, &mut rng)));
    let mut net = Network::new("mlp", root);
    let inputs = init::uniform(&[128, 2], -1.0, 1.0, &mut rng);
    let targets: Vec<usize> = (0..128)
        .map(|i| {
            let row = &inputs.as_slice()[i * 2..(i + 1) * 2];
            usize::from(row[0] > row[1])
        })
        .collect();
    let loss = CrossEntropyLoss::new();
    let mut opt = Sgd::with_momentum(0.1, 0.9, 0.0);
    for _ in 0..40 {
        net.train_batch(&inputs, &targets, &loss, &mut opt).unwrap();
    }
    quantize_network(&mut net);
    net.quantize_to(precision);
    assert_eq!(net.precision(), precision);
    (net, inputs, targets)
}

fn stat_config() -> StatCampaignConfig {
    StatCampaignConfig {
        fault_rate: 2e-3,
        batch_size: 64,
        seed: 21,
        epsilon: 0.08,
        confidence: 0.95,
        critical_threshold: 0.05,
        round_trials: 4,
        min_trials: 12,
        max_trials: 96,
        strata: StratumSpec::by_bit_class(),
        ..Default::default()
    }
}

/// Every stored word of the network, bit-exactly: f16 words and int8
/// value/scale/zero-point bytes for native parameters, Q15.16-relevant f32
/// bits for plain ones.
fn stored_words(net: &Network) -> Vec<u32> {
    let mut words = Vec::new();
    for param in net.params() {
        match param.native() {
            None => words.extend(param.data().as_slice().iter().map(|v| v.to_bits())),
            Some(NativeParam::F16(p)) => words.extend(p.words().iter().map(|&w| u32::from(w))),
            Some(NativeParam::Int8(p)) => {
                words.extend(p.q().iter().map(|&q| q as u8 as u32));
                words.extend(p.scales().iter().map(|s| s.to_bits()));
                words.extend(p.zero_points().iter().map(|&z| z as u8 as u32));
            }
        }
    }
    words
}

#[test]
fn native_campaigns_are_bit_identical_across_thread_counts() {
    for precision in [Precision::F16, Precision::Int8] {
        let (mut net, inputs, targets) = trained_setup(precision);
        let config = stat_config();
        let serial = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run_until_with_threads(&config, &TransientBitFlip, 1)
            .unwrap();
        for threads in [2, 4] {
            let parallel = Campaign::new(&mut net, &inputs, &targets)
                .unwrap()
                .run_until_with_threads(&config, &TransientBitFlip, threads)
                .unwrap();
            assert_eq!(parallel, serial, "{precision} campaign, {threads} threads");
        }
    }
}

#[test]
fn native_campaigns_restore_the_stored_words_bit_exactly() {
    for precision in [Precision::F16, Precision::Int8] {
        let (mut net, inputs, targets) = trained_setup(precision);
        let before = stored_words(&net);
        // A burst model exercises the width-aware expansion too.
        let report = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run_until(&stat_config(), &MultiBitBurst::new(4))
            .unwrap();
        assert!(report.total_trials() >= 12);
        assert_eq!(
            stored_words(&net),
            before,
            "{precision} words must survive the campaign"
        );
    }
}

#[test]
fn f16_campaign_resumes_from_a_checkpoint_bit_identically() {
    let (mut net, inputs, targets) = trained_setup(Precision::F16);
    let config = stat_config();
    let uninterrupted = Campaign::new(&mut net, &inputs, &targets)
        .unwrap()
        .run_until(&config, &TransientBitFlip)
        .unwrap();
    // Stop after the first completed round, checkpoint the pools…
    let mut checkpoint: Option<CampaignProgress> = None;
    let outcome = Campaign::new(&mut net, &inputs, &targets)
        .unwrap()
        .run_until_resumable(&config, &TransientBitFlip, 2, None, &mut |progress| {
            checkpoint = Some(progress.clone());
            CampaignControl::Stop
        })
        .unwrap();
    let interrupted = match outcome {
        RunOutcome::Interrupted(progress) => progress,
        RunOutcome::Finished(_) => panic!("the observer requested a stop"),
    };
    assert_eq!(Some(&interrupted), checkpoint.as_ref());
    assert!(interrupted.total_trials() < uninterrupted.total_trials());
    // …and resume on a different thread count: same final report.
    let resumed = match Campaign::new(&mut net, &inputs, &targets)
        .unwrap()
        .run_until_resumable(
            &config,
            &TransientBitFlip,
            4,
            Some(interrupted.pools),
            &mut |_| CampaignControl::Continue,
        )
        .unwrap()
    {
        RunOutcome::Finished(report) => report,
        RunOutcome::Interrupted(_) => panic!("nothing requests a stop on resume"),
    };
    assert_eq!(resumed, uninterrupted);
}

#[test]
fn f16_work_units_are_identical_across_partitions_and_threads() {
    let (net, inputs, targets) = trained_setup(Precision::F16);
    let config = stat_config();
    let mut whole =
        UnitRunner::new(net.clone(), inputs.clone(), targets.clone(), &config, 1).unwrap();
    let mut split = UnitRunner::new(net, inputs, targets, &config, 4).unwrap();
    assert_eq!(whole.fault_free_accuracy(), split.fault_free_accuracy());
    for stratum in 0..whole.num_strata() {
        let one_unit = whole.run_unit(&TransientBitFlip, stratum, 0, 8).unwrap();
        let mut two_units = split.run_unit(&TransientBitFlip, stratum, 0, 3).unwrap();
        two_units.extend(split.run_unit(&TransientBitFlip, stratum, 3, 5).unwrap());
        assert_eq!(one_unit, two_units, "stratum {stratum}");
    }
}
