//! Property tests for the injection invariants the campaign engine leans on:
//! XOR involution of transient flips, idempotence of stuck-at defects, and
//! in-range stratified site sampling.

use fitact_faults::{
    apply_bit_flips, apply_stuck_at, quantize_network, BitClass, BitFlipInjector, FaultSite,
    MemoryMap, StratifiedSampler, StratumSpec, StuckAtFault, StuckValue,
};
use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
use fitact_nn::Network;
use fitact_tensor::Fixed32;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_network(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    Network::new(
        "mlp",
        Sequential::new()
            .with(Box::new(Linear::new(5, 7, &mut rng)))
            .with(Box::new(ActivationLayer::relu("h", &[7])))
            .with(Box::new(Linear::new(7, 3, &mut rng))),
    )
}

proptest! {
    /// Flipping any bit of any Q15.16 word twice restores the original word
    /// exactly — the XOR involution at the representation level, valid for
    /// all 32 bits.
    #[test]
    fn bit_flip_is_an_involution_on_the_word(raw in any::<i32>(), bit in 0u32..32) {
        let word = Fixed32::from_raw(raw);
        prop_assert_eq!(word.with_bit_flipped(bit).with_bit_flipped(bit), word);
    }

    /// Injecting then re-injecting the same fault site restores the original
    /// stored parameter, for every bit whose corrupted value still round-trips
    /// exactly through the `f32` working representation (|raw| < 2^24, i.e.
    /// bits up to the first integer bits of a quantised sub-unit weight).
    #[test]
    fn double_injection_restores_the_network(
        seed in 0u64..500,
        param_index in 0usize..4,
        element in 0usize..3,
        bit in 0u32..22,
    ) {
        let mut net = small_network(seed);
        quantize_network(&mut net);
        let before = net.snapshot();
        let site = FaultSite { param_index, element, bit };
        apply_bit_flips(&mut net, &[site]);
        apply_bit_flips(&mut net, &[site]);
        prop_assert_eq!(net.snapshot(), before);
    }

    /// Applying the same stuck-at defect map twice is the same as applying it
    /// once, for any polarity and any bit — including the high bits, because
    /// the second application re-encodes the exact value the first one
    /// produced.
    #[test]
    fn stuck_at_is_idempotent(
        seed in 0u64..500,
        param_index in 0usize..4,
        element in 0usize..3,
        bit in 0u32..22,
        one in any::<bool>(),
    ) {
        let mut net = small_network(seed);
        quantize_network(&mut net);
        let defect = StuckAtFault {
            site: FaultSite { param_index, element, bit },
            value: if one { StuckValue::One } else { StuckValue::Zero },
        };
        apply_stuck_at(&mut net, &[defect]);
        let once = net.snapshot();
        apply_stuck_at(&mut net, &[defect]);
        prop_assert_eq!(net.snapshot(), once);
    }

    /// Every site the uniform injector samples is inside the memory map.
    #[test]
    fn uniform_sites_are_in_range(seed in 0u64..1000, rate in 1e-6f64..2e-2) {
        let net = small_network(seed);
        let map = MemoryMap::of_network(&net);
        let info = net.param_info();
        let mut injector = BitFlipInjector::new(seed);
        for site in injector.sample_sites(&map, rate) {
            prop_assert!(site.param_index < info.len());
            prop_assert!(site.element < info[site.param_index].numel);
            prop_assert!(site.bit < 32);
        }
    }

    /// Every site a stratified sampler draws is inside the memory map AND
    /// inside its stratum: the right bit class and the right layer prefix.
    #[test]
    fn stratified_sites_stay_inside_their_stratum(
        seed in 0u64..1000,
        rate in 1e-4f64..5e-2,
        stratum in 0usize..3,
    ) {
        let net = small_network(seed);
        let map = MemoryMap::of_network(&net);
        let info = net.param_info();
        let sampler = StratifiedSampler::new(&map, &StratumSpec::by_bit_class()).unwrap();
        let class = BitClass::ALL[stratum];
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for site in sampler.sample(stratum, rate, &mut rng) {
            prop_assert!(site.param_index < info.len());
            prop_assert!(site.element < info[site.param_index].numel);
            prop_assert_eq!(BitClass::of(site.bit), class);
        }
        // Layer strata: sites stay inside their layer's parameter spans.
        let layered = StratifiedSampler::new(&map, &StratumSpec::by_layer(&map)).unwrap();
        for site in layered.sample(0, rate, &mut rng) {
            prop_assert!(info[site.param_index].path.starts_with("0/"));
        }
    }

    /// De-duplicated sampling never returns the same bit address twice in one
    /// trial, so "number of sites" really is "number of flipped bits".
    #[test]
    fn sampled_sites_are_unique(seed in 0u64..500, rate in 1e-3f64..5e-2) {
        let net = small_network(seed);
        let map = MemoryMap::of_network(&net);
        let mut injector = BitFlipInjector::new(seed);
        let sites = injector.sample_sites(&map, rate);
        let unique: std::collections::HashSet<_> = sites.iter().collect();
        prop_assert_eq!(unique.len(), sites.len());
    }

    /// Injecting a batch of distinct sites flips exactly that many bits: the
    /// XOR of each stored word before/after has one set bit per site in it.
    #[test]
    fn injection_flips_exactly_the_sampled_bits(seed in 0u64..300, rate in 1e-3f64..2e-2) {
        let mut net = small_network(seed);
        quantize_network(&mut net);
        let map = MemoryMap::of_network(&net);
        let before = net.snapshot();
        let mut injector = BitFlipInjector::new(seed ^ 0x5A5A);
        let sites = injector.sample_sites(&map, rate);
        // Restrict to low bits so every corrupted word still round-trips
        // exactly through f32 (see `double_injection_restores_the_network`).
        let sites: Vec<FaultSite> = sites.into_iter().filter(|s| s.bit < 22).collect();
        apply_bit_flips(&mut net, &sites);
        let after = net.snapshot();
        let mut flipped = 0u32;
        for (b, a) in before.iter().zip(&after) {
            for (x, y) in b.as_slice().iter().zip(a.as_slice()) {
                let diff = Fixed32::from_f32(*x).bits() ^ Fixed32::from_f32(*y).bits();
                flipped += diff.count_ones();
            }
        }
        prop_assert_eq!(flipped as usize, sites.len());
    }
}

/// A deterministic companion to the involution property: the bits excluded
/// above (high integer + sign) are exact at the word level even though the
/// f32 round trip may lose their low-order information.
#[test]
fn high_bit_involution_holds_at_the_word_level() {
    let mut rng = StdRng::seed_from_u64(0);
    for _ in 0..1000 {
        let raw: i32 = rng.gen();
        let word = Fixed32::from_raw(raw);
        for bit in 22..32 {
            assert_eq!(word.with_bit_flipped(bit).with_bit_flipped(bit), word);
        }
    }
}
