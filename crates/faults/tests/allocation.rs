//! Property tests for the Neyman allocation policy.
//!
//! The allocator is the one piece of adaptive machinery in the campaign
//! engine, and every distributed-determinism guarantee rests on it being a
//! pure, order-invariant, exactly-integral function of counted pool state.
//! These tests pin those properties over a deterministic sweep of randomized
//! pool shapes rather than a handful of hand-picked cases.

use fitact_faults::{
    neyman_allocations, plan_round_allocated, stopping_decision, AllocationPolicy,
    StatCampaignConfig, StratumPool, StratumSpec, TrialPoint,
};

const Z: f64 = 1.96;
const FAULT_FREE: f32 = 0.9;

/// SplitMix64 — a tiny deterministic generator so the sweep needs no
/// external crates and reproduces bit-identically everywhere.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn config(strata: usize, round_trials: usize, floor_trials: usize) -> StatCampaignConfig {
    StatCampaignConfig {
        round_trials,
        floor_trials,
        min_trials: round_trials * strata,
        max_trials: 1_000_000,
        allocation: AllocationPolicy::Neyman,
        strata: (0..strata)
            .map(|i| {
                let mut spec = StratumSpec::all();
                spec.label = format!("s{i}");
                spec
            })
            .collect(),
        ..Default::default()
    }
}

/// Fills `counts[h]` trials into stratum `h`, critical with probability
/// roughly `crit_pct[h]` percent, deterministically from `seed`.
fn filled_pools(counts: &[usize], crit_pct: &[u64], seed: u64) -> Vec<StratumPool> {
    let mut rng = Rng(seed);
    counts
        .iter()
        .zip(crit_pct)
        .map(|(&count, &pct)| {
            let mut pool = StratumPool::new();
            for index in 0..count as u64 {
                let accuracy = if rng.below(100) < pct {
                    0.1
                } else {
                    FAULT_FREE
                };
                pool.insert(
                    index,
                    TrialPoint {
                        accuracy,
                        faults: 1,
                    },
                )
                .unwrap();
            }
            pool
        })
        .collect()
}

/// A deterministic sweep of campaign shapes: strata count, populations,
/// per-stratum history sizes and criticality mixes all drawn from `seed`.
fn sweep(
    cases: usize,
    mut visit: impl FnMut(&StatCampaignConfig, &[u64], &[StratumPool], &[usize], usize),
) {
    let mut rng = Rng(0x00F1_7AC7);
    for _ in 0..cases {
        let strata = 1 + rng.below(6) as usize;
        let round_trials = 1 + rng.below(12) as usize;
        let floor = 1 + rng.below(round_trials as u64) as usize;
        let config = config(strata, round_trials, floor);
        let populations: Vec<u64> = (0..strata).map(|_| 1 + rng.below(10_000)).collect();
        let counts: Vec<usize> = (0..strata).map(|_| rng.below(40) as usize).collect();
        let crit_pct: Vec<u64> = (0..strata).map(|_| rng.below(101)).collect();
        let pools = filled_pools(&counts, &crit_pct, rng.next());
        let budget = rng.below(1 + (round_trials * strata) as u64) as usize;
        visit(&config, &populations, &pools, &counts, budget);
    }
}

#[test]
fn allocations_sum_to_the_round_budget() {
    sweep(200, |config, populations, pools, counts, budget| {
        let alloc = neyman_allocations(config, Z, FAULT_FREE, populations, pools, counts, budget);
        assert_eq!(alloc.len(), counts.len());
        assert_eq!(
            alloc.iter().sum::<usize>(),
            budget,
            "allocation must partition the budget exactly: {alloc:?}"
        );
    });
}

#[test]
fn allocations_respect_the_per_stratum_floor() {
    sweep(200, |config, populations, pools, counts, budget| {
        let alloc = neyman_allocations(config, Z, FAULT_FREE, populations, pools, counts, budget);
        let floor = config.floor_trials.min(config.round_trials);
        if budget >= floor * counts.len() {
            for (h, &n) in alloc.iter().enumerate() {
                assert!(
                    n >= floor,
                    "stratum {h} got {n} < floor {floor} with budget {budget}: {alloc:?}"
                );
            }
        } else {
            // Truncated final round: floors fill in stratum-index order, so
            // allocations are non-increasing by index and still sum to the
            // budget (checked above).
            for pair in alloc.windows(2) {
                assert!(
                    pair[0] >= pair[1],
                    "truncated floors must fill in order: {alloc:?}"
                );
            }
        }
    });
}

#[test]
fn allocations_are_invariant_to_stratum_iteration_order() {
    // Reversing the strata (populations, pools, history) must reverse the
    // allocation — no positional bias beyond the documented index
    // tie-break, which reversal exposes only on exact score ties, excluded
    // here by making every population distinct.
    sweep(200, |config, populations, pools, counts, budget| {
        let distinct: Vec<u64> = populations
            .iter()
            .enumerate()
            .map(|(h, &p)| p * 7 + h as u64 + 1)
            .collect();
        if budget < config.floor_trials.min(config.round_trials) * counts.len() {
            return; // truncated rounds fill floors positionally by design
        }
        let forward = neyman_allocations(config, Z, FAULT_FREE, &distinct, pools, counts, budget);
        let rev_pop: Vec<u64> = distinct.iter().rev().copied().collect();
        let rev_pools: Vec<StratumPool> = pools.iter().rev().cloned().collect();
        let rev_counts: Vec<usize> = counts.iter().rev().copied().collect();
        let backward = neyman_allocations(
            config,
            Z,
            FAULT_FREE,
            &rev_pop,
            &rev_pools,
            &rev_counts,
            budget,
        );
        let mut mirrored: Vec<usize> = backward.iter().rev().copied().collect();
        // Exact remainder ties may still arise from equal w·σ products; they
        // resolve toward the lower index in each orientation, so allow the
        // two plans to differ only by a permutation with equal multiset.
        let mut a = forward.clone();
        a.sort_unstable();
        mirrored.sort_unstable();
        assert_eq!(
            a, mirrored,
            "reversed strata must receive the mirrored allocation: {forward:?} vs {backward:?}"
        );
    });
}

#[test]
fn equal_variances_reduce_to_equal_allocation() {
    // Identical populations and identical pool histories ⇒ identical w·σ
    // scores ⇒ the apportionment is exactly equal whenever the budget
    // divides evenly, and within one trial otherwise.
    for &strata in &[2usize, 3, 5, 8] {
        let config = config(strata, 8, 1);
        let populations = vec![1000u64; strata];
        let counts = vec![16usize; strata];
        // Same seed per stratum ⇒ bit-identical pool content in each.
        let pools: Vec<StratumPool> = (0..strata)
            .map(|_| filled_pools(&[16], &[25], 42).remove(0))
            .collect();
        let budget = 8 * strata;
        let alloc = neyman_allocations(
            &config,
            Z,
            FAULT_FREE,
            &populations,
            &pools,
            &counts,
            budget,
        );
        for (h, &n) in alloc.iter().enumerate() {
            assert_eq!(n, 8, "stratum {h} must get an equal share: {alloc:?}");
        }
        // Non-divisible budget: shares differ by at most one.
        let alloc = neyman_allocations(
            &config,
            Z,
            FAULT_FREE,
            &populations,
            &pools,
            &counts,
            budget + 1,
        );
        let lo = alloc.iter().min().unwrap();
        let hi = alloc.iter().max().unwrap();
        assert!(
            hi - lo <= 1,
            "uneven remainder must spread by ≤1: {alloc:?}"
        );
        assert_eq!(alloc.iter().sum::<usize>(), budget + 1);
    }
}

#[test]
fn plans_are_pure_functions_of_pool_state() {
    sweep(100, |config, populations, pools, counts, _| {
        // Rebuild bit-identical pools through an independent code path
        // (clone ⊕ re-insert) and demand the identical plan.
        let rebuilt: Vec<StratumPool> = pools
            .iter()
            .map(|pool| {
                let mut copy = StratumPool::new();
                for (index, point) in pool.iter() {
                    copy.insert(index, point).unwrap();
                }
                copy
            })
            .collect();
        let plan_a = plan_round_allocated(config, Z, FAULT_FREE, populations, pools, counts);
        let plan_b = plan_round_allocated(config, Z, FAULT_FREE, populations, &rebuilt, counts);
        assert_eq!(plan_a, plan_b, "same pool bits must yield the same plan");
        // Specs must extend each stratum's stream contiguously.
        let mut next: Vec<usize> = counts.to_vec();
        for spec in &plan_a {
            assert_eq!(
                spec.index, next[spec.stratum],
                "trial indices must be contiguous"
            );
            next[spec.stratum] += 1;
        }
    });
}

#[test]
fn plans_ignore_uncounted_future_trials() {
    // A resume replay plans against pools that already hold later-round
    // points; only indices below `counts[h]` may influence the plan.
    sweep(100, |config, populations, pools, counts, _| {
        let baseline = plan_round_allocated(config, Z, FAULT_FREE, populations, pools, counts);
        let mut extended: Vec<StratumPool> = pools.to_vec();
        for (h, pool) in extended.iter_mut().enumerate() {
            for offset in 0..5u64 {
                // Adversarially critical future points: maximal σ shift if
                // they were (incorrectly) counted.
                pool.insert(
                    counts[h] as u64 + offset,
                    TrialPoint {
                        accuracy: 0.0,
                        faults: 9,
                    },
                )
                .unwrap();
            }
        }
        let replay = plan_round_allocated(config, Z, FAULT_FREE, populations, &extended, counts);
        assert_eq!(
            baseline, replay,
            "points at or above the scheduled count must not influence the plan"
        );
    });
}

#[test]
fn stopping_decision_is_defined_for_empty_rounds() {
    for policy in [AllocationPolicy::Equal, AllocationPolicy::Neyman] {
        let config = StatCampaignConfig {
            allocation: policy,
            ..config(3, 8, 1)
        };
        let populations = vec![100u64; 3];
        let pools = vec![StratumPool::new(); 3];
        let counts = vec![0usize; 3];
        let decision = stopping_decision(&config, Z, FAULT_FREE, &populations, &pools, &counts);
        assert_eq!(decision.total, 0);
        assert!(
            (decision.half_width - 0.5).abs() < 1e-12,
            "no data must yield the vacuous half-width 0.5 under {policy:?}, got {}",
            decision.half_width
        );
        assert!(!decision.converged, "an empty round can never converge");
        assert!(!decision.exhausted);
        assert!(decision.half_width.is_finite());
    }
}

#[test]
fn equal_policy_planning_is_the_legacy_plan() {
    // `--allocation equal` must be byte-for-byte the pre-adaptive engine:
    // the pool-aware planner delegates to `plan_round` and never reads the
    // pools at all.
    sweep(100, |config, populations, pools, counts, _| {
        let equal_config = StatCampaignConfig {
            allocation: AllocationPolicy::Equal,
            ..config.clone()
        };
        let legacy = fitact_faults::plan_round(&equal_config, counts);
        let allocated =
            plan_round_allocated(&equal_config, Z, FAULT_FREE, populations, pools, counts);
        assert_eq!(legacy, allocated);
    });
}
