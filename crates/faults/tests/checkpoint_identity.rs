//! Bit-identity regression suite for the checkpoint-resumed campaign engine.
//!
//! The resumed engine replaces each trial's full forward pass with a resume
//! from cached clean layer activations; nothing about the *results* may
//! change. This suite pins, for every fault model in the taxonomy and across
//! 1/2/4 worker threads:
//!
//! * fixed-count campaigns ([`Campaign::run`]) produce identical per-trial
//!   accuracies, fault counts and baselines under both engines,
//! * statistical campaigns ([`Campaign::run_until`]) produce identical
//!   reports (same strata, same intervals, same stopping round),
//! * `forward_from(0, ..)` equals `forward(..)`, and resuming from every
//!   intermediate boundary reproduces the full pass layer-by-layer — on a
//!   CNN stack, not just an MLP.

use fitact_faults::{
    quantize_network, ActivationBitFlip, Campaign, CampaignConfig, FaultModel, MultiBitBurst,
    StatCampaignConfig, StratumSpec, StuckAtFaultModel, TransientBitFlip, TrialEngine,
};
use fitact_nn::layers::{ActivationLayer, Conv2d, Flatten, Linear, MaxPool2d, Sequential};
use fitact_nn::loss::CrossEntropyLoss;
use fitact_nn::optim::Sgd;
use fitact_nn::{Mode, Network};
use fitact_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small trained, quantised MLP plus its evaluation set (mirrors the
/// campaign unit-test setup).
fn trained_mlp() -> (Network, Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(0);
    let root = Sequential::new()
        .with(Box::new(Linear::new(2, 16, &mut rng)))
        .with(Box::new(ActivationLayer::relu("h", &[16])))
        .with(Box::new(Linear::new(16, 2, &mut rng)));
    let mut net = Network::new("mlp", root);
    let inputs = init::uniform(&[96, 2], -1.0, 1.0, &mut rng);
    let targets: Vec<usize> = (0..96)
        .map(|i| {
            let row = &inputs.as_slice()[i * 2..(i + 1) * 2];
            usize::from(row[0] > row[1])
        })
        .collect();
    let loss = CrossEntropyLoss::new();
    let mut opt = Sgd::with_momentum(0.1, 0.9, 0.0);
    for _ in 0..30 {
        net.train_batch(&inputs, &targets, &loss, &mut opt).unwrap();
    }
    quantize_network(&mut net);
    (net, inputs, targets)
}

/// A small untrained CNN (conv → relu → pool → flatten → linear) and inputs —
/// deep enough that boundaries cover conv, pool and dense shapes.
fn cnn() -> (Network, Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(3);
    let root = Sequential::new()
        .with(Box::new(Conv2d::new(2, 4, 3, 1, 1, &mut rng)))
        .with(Box::new(ActivationLayer::relu("c1", &[4, 6, 6])))
        .with(Box::new(MaxPool2d::new(2, 2)))
        .with(Box::new(Flatten::new()))
        .with(Box::new(Linear::new(4 * 3 * 3, 3, &mut rng)));
    let mut net = Network::new("cnn", root);
    quantize_network(&mut net);
    let inputs = init::uniform(&[20, 2, 6, 6], -1.0, 1.0, &mut rng);
    let targets: Vec<usize> = (0..20).map(|i| i % 3).collect();
    (net, inputs, targets)
}

fn all_models() -> [&'static dyn FaultModel; 4] {
    const BURST: MultiBitBurst = MultiBitBurst { length: 4 };
    [
        &TransientBitFlip,
        &BURST,
        &StuckAtFaultModel,
        &ActivationBitFlip,
    ]
}

#[test]
fn fixed_count_campaigns_match_the_full_forward_engine_across_threads() {
    let (mut net, inputs, targets) = trained_mlp();
    let config = CampaignConfig {
        fault_rate: 2e-3,
        trials: 9,
        batch_size: 32,
        seed: 11,
    };
    let reference = Campaign::new(&mut net, &inputs, &targets)
        .unwrap()
        .with_engine(TrialEngine::FullForward)
        .run_serial(&config)
        .unwrap();
    assert!(reference.total_faults > 0, "the reference must inject");
    for threads in [1, 2, 4] {
        let resumed = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .with_engine(TrialEngine::CheckpointResumed)
            .run_with_threads(&config, threads)
            .unwrap();
        assert_eq!(
            resumed.accuracies, reference.accuracies,
            "threads {threads}"
        );
        assert_eq!(
            resumed.total_faults, reference.total_faults,
            "threads {threads}"
        );
        assert_eq!(
            resumed.fault_free_accuracy, reference.fault_free_accuracy,
            "threads {threads}"
        );
        assert_eq!(resumed.stats, reference.stats, "threads {threads}");
    }
}

#[test]
fn statistical_campaigns_match_the_full_forward_engine_for_every_model() {
    let (mut net, inputs, targets) = trained_mlp();
    let config = StatCampaignConfig {
        fault_rate: 2e-3,
        batch_size: 32,
        seed: 21,
        epsilon: 0.08,
        confidence: 0.95,
        critical_threshold: 0.05,
        round_trials: 3,
        min_trials: 9,
        max_trials: 36,
        strata: StratumSpec::by_bit_class(),
        ..Default::default()
    };
    for model in all_models() {
        let reference = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .with_engine(TrialEngine::FullForward)
            .run_until_with_threads(&config, model, 1)
            .unwrap();
        for threads in [1, 2, 4] {
            let resumed = Campaign::new(&mut net, &inputs, &targets)
                .unwrap()
                .with_engine(TrialEngine::CheckpointResumed)
                .run_until_with_threads(&config, model, threads)
                .unwrap();
            assert_eq!(
                resumed,
                reference,
                "model {} at {threads} threads",
                model.name()
            );
        }
    }
}

#[test]
fn per_layer_strata_resume_mid_network_and_stay_identical() {
    // Layer strata force trials whose faults are confined to one known layer,
    // so deep strata exercise deep (non-trivial) resume boundaries.
    let (mut net, inputs, targets) = trained_mlp();
    let map = fitact_faults::MemoryMap::of_network(&net);
    let config = StatCampaignConfig {
        fault_rate: 2e-3,
        batch_size: 32,
        seed: 33,
        epsilon: 0.08,
        round_trials: 3,
        min_trials: 6,
        max_trials: 24,
        strata: StratumSpec::by_layer(&map),
        ..Default::default()
    };
    let reference = Campaign::new(&mut net, &inputs, &targets)
        .unwrap()
        .with_engine(TrialEngine::FullForward)
        .run_until(&config, &TransientBitFlip)
        .unwrap();
    let resumed = Campaign::new(&mut net, &inputs, &targets)
        .unwrap()
        .run_until(&config, &TransientBitFlip)
        .unwrap();
    assert_eq!(resumed, reference);
}

#[test]
fn cnn_campaigns_match_the_full_forward_engine() {
    let (mut net, inputs, targets) = cnn();
    let config = CampaignConfig {
        fault_rate: 1e-3,
        trials: 6,
        batch_size: 8,
        seed: 5,
    };
    let before = net.snapshot();
    let reference = Campaign::new(&mut net, &inputs, &targets)
        .unwrap()
        .with_engine(TrialEngine::FullForward)
        .run_serial(&config)
        .unwrap();
    for threads in [1, 2, 4] {
        let resumed = Campaign::new(&mut net, &inputs, &targets)
            .unwrap()
            .run_with_threads(&config, threads)
            .unwrap();
        assert_eq!(
            resumed.accuracies, reference.accuracies,
            "threads {threads}"
        );
        assert_eq!(
            resumed.fault_free_accuracy, reference.fault_free_accuracy,
            "threads {threads}"
        );
    }
    assert_eq!(net.snapshot(), before, "campaigns restore the CNN");
}

#[test]
fn cnn_forward_from_matches_forward_at_every_boundary() {
    let (mut net, inputs, _) = cnn();
    let mut boundaries: Vec<Tensor> = Vec::new();
    let full = net
        .forward_inspect(&inputs, Mode::Eval, &mut |k, t| {
            assert_eq!(k, boundaries.len());
            boundaries.push(t.clone());
        })
        .unwrap();
    assert_eq!(boundaries.len(), net.depth() + 1);
    assert_eq!(boundaries[0], inputs, "boundary 0 is the input");
    // forward_from(0, ..) is forward(..), and every later boundary resumes to
    // the identical output — layer by layer.
    assert_eq!(net.forward(&inputs, Mode::Eval).unwrap(), full);
    for (k, boundary) in boundaries.iter().enumerate() {
        let resumed = net.forward_from(k, boundary, Mode::Eval).unwrap();
        assert_eq!(resumed, full, "resume at boundary {k}");
    }
}

#[test]
fn zero_rate_resumed_trials_reuse_the_clean_baseline_exactly() {
    let (mut net, inputs, targets) = trained_mlp();
    let result = Campaign::new(&mut net, &inputs, &targets)
        .unwrap()
        .run(&CampaignConfig {
            fault_rate: 0.0,
            trials: 4,
            batch_size: 32,
            seed: 2,
        })
        .unwrap();
    assert_eq!(result.total_faults, 0);
    for acc in &result.accuracies {
        assert_eq!(*acc, result.fault_free_accuracy);
    }
}
