//! Property tests for pooled-statistics merging — the algebra that makes
//! distributed and resumable campaigns sound.
//!
//! The distributed coordinator merges work-unit results in whatever order
//! workers deliver them, possibly duplicated by lease re-dispatch, possibly
//! split across checkpoint/resume boundaries. All of that is only correct
//! because [`StratumPool`] merging is a commutative, associative monoid with
//! the empty pool as identity and bit-identical duplicates as no-ops:
//!
//! * **order independence** — any permutation of unit deliveries yields the
//!   same pool,
//! * **associativity** — merging `(a ∪ b) ∪ c` equals `a ∪ (b ∪ c)`,
//! * **identity** — a zero-trial unit (empty pool) merges as a no-op in
//!   either position,
//! * **idempotence** — re-merging an already-merged fragment adds nothing,
//! * **conflict safety** — disagreeing duplicates are a typed
//!   [`FaultError::TrialConflict`], never a silent overwrite.

use fitact_faults::{FaultError, StratumPool, TrialPoint};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Expands a seed into a fragment of trial results with distinct indices —
/// arbitrary `f32` bit patterns included (NaNs, infinities, -0.0), because
/// the pool must treat accuracies as opaque bit patterns.
fn gen_fragment(seed: u64, max_points: usize) -> Vec<(u64, TrialPoint)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let count = rng.gen_range(0..=max_points);
    let mut points = std::collections::BTreeMap::new();
    while points.len() < count {
        points.insert(
            rng.gen_range(0u64..512),
            TrialPoint {
                accuracy: f32::from_bits(rng.gen::<u32>()),
                faults: rng.gen_range(0u64..64),
            },
        );
    }
    points.into_iter().collect()
}

/// Bitwise pool equality: same indexes, bit-identical points. `PartialEq`
/// is not enough here because a NaN accuracy is the same trial by bits but
/// unequal to itself under `==`.
fn same_pool(a: &StratumPool, b: &StratumPool) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|((ia, pa), (ib, pb))| ia == ib && pa.same_bits(&pb))
}

fn pool_of(points: &[(u64, TrialPoint)]) -> StratumPool {
    let mut pool = StratumPool::new();
    for &(index, point) in points {
        // Indexes within one fragment are distinct by construction, so the
        // inserts cannot conflict.
        pool.insert(index, point)
            .expect("no conflicts by construction");
    }
    pool
}

proptest! {
    /// Merging the same set of points in any delivery order produces the
    /// same pool — the coordinator may receive units in any interleaving.
    #[test]
    fn merging_is_order_independent(
        fragment_seed in any::<u64>(),
        shuffle_seed in any::<u64>(),
    ) {
        let points = gen_fragment(fragment_seed, 24);
        let forward = pool_of(&points);

        let mut shuffled = points.clone();
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..=i);
            shuffled.swap(i, j);
        }
        let permuted = pool_of(&shuffled);

        prop_assert!(same_pool(&forward, &permuted));
    }

    /// Merging fragments is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c). Indexes
    /// are made disjoint by stride so every merge succeeds.
    #[test]
    fn merging_is_associative(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        seed_c in any::<u64>(),
    ) {
        let strided = |seed: u64, lane: u64| -> StratumPool {
            let points: Vec<_> = gen_fragment(seed, 12)
                .into_iter()
                .map(|(i, p)| (i * 3 + lane, p))
                .collect();
            pool_of(&points)
        };
        let (pa, pb, pc) = (strided(seed_a, 0), strided(seed_b, 1), strided(seed_c, 2));

        let mut left = pa.clone();
        left.merge(&pb).unwrap();
        left.merge(&pc).unwrap();

        let mut bc = pb.clone();
        bc.merge(&pc).unwrap();
        let mut right = pa;
        right.merge(&bc).unwrap();

        prop_assert!(same_pool(&left, &right));
    }

    /// The empty pool (a zero-trial work unit) is the identity in both
    /// positions, and merging reports exactly the fresh-point count.
    #[test]
    fn empty_pool_is_the_identity(fragment_seed in any::<u64>()) {
        let pool = pool_of(&gen_fragment(fragment_seed, 24));

        let mut left = StratumPool::new();
        prop_assert_eq!(left.merge(&pool).unwrap(), pool.len());
        prop_assert!(same_pool(&left, &pool));

        let mut right = pool.clone();
        prop_assert_eq!(right.merge(&StratumPool::new()).unwrap(), 0);
        prop_assert!(same_pool(&right, &pool));
    }

    /// Re-merging an already-merged fragment (a duplicated unit completion)
    /// adds zero points and changes nothing.
    #[test]
    fn remerging_a_fragment_is_idempotent(
        fragment_seed in any::<u64>(),
        split in 0usize..25,
    ) {
        let points = gen_fragment(fragment_seed, 24);
        let pool = pool_of(&points);
        let fragment = pool_of(&points[..split.min(points.len())]);

        let mut merged = pool.clone();
        prop_assert_eq!(merged.merge(&fragment).unwrap(), 0);
        prop_assert!(same_pool(&merged, &pool));
    }

    /// A fragment disagreeing about a recorded trial is a typed conflict
    /// naming the trial, and bit-equality is what decides: flipping any
    /// accuracy bit or changing the fault count conflicts, while the exact
    /// duplicate stays an idempotent no-op.
    #[test]
    fn disagreeing_duplicates_conflict(
        fragment_seed in any::<u64>(),
        victim in 0usize..24,
        flip_bit in 0u32..32,
    ) {
        let points = gen_fragment(fragment_seed, 24);
        prop_assume!(!points.is_empty());
        let (index, original) = points[victim % points.len()];
        let mut pool = pool_of(&points);

        let twisted = TrialPoint {
            accuracy: f32::from_bits(original.accuracy.to_bits() ^ (1 << flip_bit)),
            faults: original.faults,
        };
        match pool.insert(index, twisted) {
            Err(FaultError::TrialConflict { index: named }) => {
                prop_assert_eq!(named, index);
            }
            other => prop_assert!(false, "expected TrialConflict, got {:?}", other),
        }

        let more_faults = TrialPoint { faults: original.faults + 1, ..original };
        prop_assert!(pool.insert(index, more_faults).is_err());

        // The failed inserts changed nothing, and the exact duplicate is
        // still an idempotent no-op.
        prop_assert!(pool.get(index).unwrap().same_bits(&original));
        prop_assert_eq!(pool.insert(index, original).unwrap(), false);
    }
}
