//! Figure 5: model-accuracy distribution for FitAct, Clip-Act, Ranger and the
//! unprotected model on VGG16 / CIFAR-10 under different fault rates.
//!
//! For each (scheme, fault-rate) pair the binary runs a fault-injection
//! campaign and prints the per-trial accuracy spread (min / q1 / median / q3 /
//! max), i.e. the data behind the paper's box plots. Fault rates are the
//! paper's nominal rates scaled so the expected number of bit flips matches
//! the full-width VGG16 (see EXPERIMENTS.md).

use fitact::ProtectionScheme;
use fitact_bench::report::Table;
use fitact_bench::setup::{prepare_model, ExperimentScale};
use fitact_data::DatasetKind;
use fitact_faults::{
    Campaign, CampaignConfig, StatCampaignConfig, StratumSpec, TransientBitFlip, PAPER_FAULT_RATES,
};
use fitact_nn::models::Architecture;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    eprintln!(
        "[fig5] preparing VGG16 on synthetic CIFAR-10 at scale `{}` ...",
        scale.name
    );
    let prepared = prepare_model(Architecture::Vgg16, DatasetKind::Cifar10, &scale, 42)?;
    eprintln!(
        "[fig5] fault-free baseline accuracy: {:.2}%",
        100.0 * prepared.baseline_accuracy
    );

    // Fraction-preserving by default; override with FITACT_RATE_SCALE.
    let rate_scale = ExperimentScale::rate_scale();
    eprintln!("[fig5] nominal fault rates scaled by {rate_scale:.1}");

    let mut table = Table::new(
        "Fig. 5 — accuracy distribution, VGG16 / CIFAR-10",
        &[
            "scheme",
            "nominal_fault_rate",
            "min_%",
            "q1_%",
            "median_%",
            "q3_%",
            "max_%",
            "mean_%",
        ],
    );

    for scheme in ProtectionScheme::paper_schemes() {
        eprintln!("[fig5] protecting with `{scheme}` ...");
        let mut network = prepared.protected(scheme, &scale)?;
        for (i, &nominal) in PAPER_FAULT_RATES.iter().enumerate() {
            let mut campaign =
                Campaign::new(&mut network, &prepared.test_inputs, &prepared.test_labels)?;
            let result = campaign.run(&CampaignConfig {
                fault_rate: nominal * rate_scale,
                trials: scale.trials,
                batch_size: scale.batch_size,
                seed: 100 + i as u64,
            })?;
            let s = &result.stats;
            table.push_row(vec![
                scheme.name().into(),
                format!("{nominal:.0e}"),
                format!("{:.2}", 100.0 * s.min),
                format!("{:.2}", 100.0 * s.q1),
                format!("{:.2}", 100.0 * s.median),
                format!("{:.2}", 100.0 * s.q3),
                format!("{:.2}", 100.0 * s.max),
                format!("{:.2}", 100.0 * s.mean),
            ]);
            eprintln!(
                "[fig5]   {scheme} @ {nominal:.0e}: mean {:.2}% (min {:.2}%, max {:.2}%), {} flips total",
                100.0 * s.mean,
                100.0 * s.min,
                100.0 * s.max,
                result.total_faults
            );
        }
    }

    println!("{}", table.to_pretty_string());
    let path = table.write_csv("fig5_accuracy_distribution.csv")?;
    println!("series written to {}", path.display());

    // Companion table: the same schemes under *stratified* injection at the
    // middle nominal rate, decomposed by bit class. This is the resilience
    // taxonomy behind the box plots — exponent-bit flips dominate the
    // critical-SDC mass, mantissa flips are almost entirely masked, and a
    // protected model shrinks the exponent stratum's critical rate.
    let mut strata_table = Table::new(
        "Fig. 5 companion — critical-SDC rate per bit-class stratum (95% Wilson CI)",
        &[
            "scheme",
            "stratum",
            "trials",
            "masked",
            "tolerable_sdc",
            "critical_sdc",
            "critical_rate_%",
            "critical_ci_95_%",
        ],
    );
    let stratified_rate = PAPER_FAULT_RATES[2] * rate_scale;
    for scheme in ProtectionScheme::paper_schemes() {
        let mut network = prepared.protected(scheme, &scale)?;
        let report = Campaign::new(&mut network, &prepared.test_inputs, &prepared.test_labels)?
            .run_until(
                &StatCampaignConfig {
                    fault_rate: stratified_rate,
                    batch_size: scale.batch_size,
                    seed: 900,
                    epsilon: 0.05,
                    round_trials: scale.trials.clamp(1, 8),
                    min_trials: scale.trials,
                    max_trials: scale.trials * 6,
                    strata: StratumSpec::by_bit_class(),
                    ..Default::default()
                },
                &TransientBitFlip,
            )?;
        for stratum in &report.strata {
            strata_table.push_row(vec![
                scheme.name().into(),
                stratum.label.clone(),
                format!("{}", stratum.trials()),
                format!("{}", stratum.masked),
                format!("{}", stratum.tolerable),
                format!("{}", stratum.critical),
                format!("{:.1}", 100.0 * stratum.critical_rate()),
                format!(
                    "[{:.1}, {:.1}]",
                    100.0 * stratum.critical_ci.low,
                    100.0 * stratum.critical_ci.high
                ),
            ]);
        }
        eprintln!(
            "[fig5] stratified {scheme}: {} trials, converged = {}",
            report.total_trials(),
            report.converged
        );
    }
    println!("{}", strata_table.to_pretty_string());
    let path = strata_table.write_csv("fig5_bit_class_strata.csv")?;
    println!("series written to {}", path.display());
    Ok(())
}
