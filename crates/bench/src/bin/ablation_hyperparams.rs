//! Ablation: FitAct hyper-parameters — the FitReLU slope `k` and the bound
//! regularisation weight `ζ`.
//!
//! The paper says `k` is "empirically computed" and introduces `ζ` in Eq. 10
//! without a sweep. This harness quantifies both choices: for each value it
//! post-trains the bounds and reports the fault-free accuracy, the mean bound
//! after post-training, and the accuracy under a high fault rate.

use fitact::{apply_protection, FitAct, FitActConfig, ProtectionScheme};
use fitact_bench::report::Table;
use fitact_bench::setup::{prepare_model, ExperimentScale};
use fitact_data::DatasetKind;
use fitact_faults::{quantize_network, Campaign, CampaignConfig};
use fitact_nn::models::Architecture;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    eprintln!(
        "[ablation] preparing AlexNet on synthetic CIFAR-10 at scale `{}` ...",
        scale.name
    );
    let prepared = prepare_model(Architecture::AlexNet, DatasetKind::Cifar10, &scale, 42)?;
    let fault_rate = 3e-5 * ExperimentScale::rate_scale();

    let evaluate = |slope: f32, zeta: f32| -> Result<(f32, f32, f32), Box<dyn std::error::Error>> {
        let mut network = prepared.network.clone();
        apply_protection(
            &mut network,
            &prepared.profile,
            ProtectionScheme::FitAct { slope },
        )?;
        let config = FitActConfig {
            slope,
            zeta,
            post_train_epochs: 2,
            batch_size: scale.batch_size,
            ..Default::default()
        };
        let report = FitAct::new(config).post_train(
            &mut network,
            &prepared.train_inputs,
            &prepared.train_labels,
        )?;
        quantize_network(&mut network);
        let fault_free = network.evaluate(
            &prepared.test_inputs,
            &prepared.test_labels,
            scale.batch_size,
        )?;
        let result = Campaign::new(&mut network, &prepared.test_inputs, &prepared.test_labels)?
            .run(&CampaignConfig {
                fault_rate,
                trials: scale.trials,
                batch_size: scale.batch_size,
                seed: 77,
            })?;
        Ok((fault_free, result.mean_accuracy(), report.mean_bound_after))
    };

    let mut slope_table = Table::new(
        format!(
            "Ablation — FitReLU slope k (AlexNet / CIFAR-10, baseline {:.2}%)",
            100.0 * prepared.baseline_accuracy
        ),
        &["k", "fault_free_%", "acc_under_fault_%", "mean_bound_after"],
    );
    for k in [2.0f32, 4.0, 8.0, 16.0, 32.0] {
        let (fault_free, under_fault, bound) = evaluate(k, FitActConfig::default().zeta)?;
        slope_table.push_row(vec![
            format!("{k}"),
            format!("{:.2}", 100.0 * fault_free),
            format!("{:.2}", 100.0 * under_fault),
            format!("{bound:.3}"),
        ]);
        eprintln!(
            "[ablation] k = {k}: fault-free {:.2}%, under fault {:.2}%",
            100.0 * fault_free,
            100.0 * under_fault
        );
    }
    println!("{}", slope_table.to_pretty_string());
    slope_table.write_csv("ablation_slope.csv")?;

    let mut zeta_table = Table::new(
        "Ablation — bound regularisation weight zeta (AlexNet / CIFAR-10)",
        &[
            "zeta",
            "fault_free_%",
            "acc_under_fault_%",
            "mean_bound_after",
        ],
    );
    for zeta in [0.0f32, 0.01, 0.05, 0.2, 1.0] {
        let (fault_free, under_fault, bound) = evaluate(8.0, zeta)?;
        zeta_table.push_row(vec![
            format!("{zeta}"),
            format!("{:.2}", 100.0 * fault_free),
            format!("{:.2}", 100.0 * under_fault),
            format!("{bound:.3}"),
        ]);
        eprintln!("[ablation] zeta = {zeta}: fault-free {:.2}%, under fault {:.2}%, mean bound {bound:.3}", 100.0 * fault_free, 100.0 * under_fault);
    }
    println!("{}", zeta_table.to_pretty_string());
    let path = zeta_table.write_csv("ablation_zeta.csv")?;
    println!("series written to {}", path.display());
    Ok(())
}
