//! Table I: inference runtime and memory-space overheads of FitAct versus
//! plain ReLU for ResNet50, VGG16 and AlexNet on CIFAR-10 and CIFAR-100.
//!
//! Memory is computed analytically from the parameter inventory of the
//! full-width models (Q15.16 words: weights, biases, batch-norm tensors, plus
//! one λ per neuron for FitAct). Runtime is the measured wall-clock of a
//! single-image forward pass of this crate's inference engine; absolute
//! milliseconds differ from the paper's GPU numbers, but the relative
//! overhead column is produced by the same mechanism (extra sigmoid/compare
//! work per activation). Criterion-based timing lives in
//! `benches/table1_inference_overhead.rs`.

use fitact::ActivationProfile;
use fitact::{apply_protection, MemoryModel, ProtectionScheme, SlotProfile};
use fitact_bench::report::Table;
use fitact_bench::setup::ExperimentScale;
use fitact_data::DatasetKind;
use fitact_nn::models::{Architecture, ModelConfig};
use fitact_nn::{Mode, Network};
use fitact_tensor::Tensor;
use std::time::Instant;

/// Builds a unit-bound activation profile (runtime and memory do not depend on
/// the bound values, only on their count).
fn unit_profile(network: &mut Network) -> ActivationProfile {
    let slots = network.activation_slots();
    ActivationProfile {
        slots: slots
            .into_iter()
            .map(|slot| SlotProfile {
                label: slot.label().to_owned(),
                feature_shape: slot.feature_shape().to_vec(),
                per_neuron_max: vec![1.0; slot.num_neurons()],
                layer_max: 1.0,
            })
            .collect(),
    }
}

/// Median wall-clock of a single-image forward pass, in milliseconds.
fn forward_ms(network: &mut Network, reps: usize) -> Result<f64, Box<dyn std::error::Error>> {
    let input = Tensor::zeros(&[1, 3, 32, 32]);
    // Warm-up.
    network.forward(&input, Mode::Eval)?;
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        network.forward(&input, Mode::Eval)?;
        times.push(start.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Ok(times[times.len() / 2])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    // Memory is reported for the full-width architectures (as in the paper);
    // runtime is measured at the experiment width so the binary stays fast.
    let runtime_width = scale.width.max(0.125);
    let reps = 5;

    let mut table = Table::new(
        "Table I — runtime and memory overheads of FitAct vs ReLU",
        &[
            "dataset",
            "model",
            "relu_runtime_ms",
            "fitact_runtime_ms",
            "runtime_overhead_%",
            "relu_memory_mb",
            "fitact_memory_mb",
            "memory_overhead_%",
        ],
    );

    for kind in DatasetKind::ALL {
        for architecture in Architecture::ALL {
            // --- Memory (full-width models). ---
            let full_config = ModelConfig::new(kind.classes());
            let mut full = architecture.build(&full_config)?;
            let base_memory = MemoryModel::of_network(&full);
            let profile = unit_profile(&mut full);
            apply_protection(&mut full, &profile, ProtectionScheme::FitAct { slope: 8.0 })?;
            let fitact_memory = MemoryModel::of_network(&full);
            drop(full);

            // --- Runtime (width-scaled models, single image). ---
            let small_config = ModelConfig::new(kind.classes())
                .with_width(runtime_width)
                .with_seed(1);
            let mut relu_net = architecture.build(&small_config)?;
            let relu_ms = forward_ms(&mut relu_net, reps)?;
            let profile = unit_profile(&mut relu_net);
            let mut fitact_net = relu_net.clone();
            apply_protection(
                &mut fitact_net,
                &profile,
                ProtectionScheme::FitAct { slope: 8.0 },
            )?;
            let fitact_ms = forward_ms(&mut fitact_net, reps)?;

            let runtime_overhead = 100.0 * (fitact_ms - relu_ms) / relu_ms;
            table.push_row(vec![
                kind.name().into(),
                architecture.name().into(),
                format!("{relu_ms:.3}"),
                format!("{fitact_ms:.3}"),
                format!("{runtime_overhead:.2}"),
                format!("{:.2}", base_memory.total_mb()),
                format!("{:.2}", fitact_memory.total_mb()),
                format!("{:.2}", fitact_memory.overhead_percent()),
            ]);
            eprintln!(
                "[table1] {kind}/{architecture}: runtime {relu_ms:.2} → {fitact_ms:.2} ms ({runtime_overhead:.1}%), \
                 memory {:.1} → {:.1} MB ({:.2}%)",
                base_memory.total_mb(),
                fitact_memory.total_mb(),
                fitact_memory.overhead_percent()
            );
        }
    }

    println!("{}", table.to_pretty_string());
    let path = table.write_csv("table1_overheads.csv")?;
    println!("series written to {}", path.display());
    Ok(())
}
