//! Figure 2: distribution of the maximum output values of all neurons in
//! VGG16's second layer.
//!
//! Trains the (width-scaled) VGG16 on the synthetic CIFAR-10 stand-in,
//! profiles the per-neuron activation maxima of the activation slot that
//! follows the second convolution, and prints the density histogram the
//! paper's Fig. 2 plots. Writes the series to
//! `target/experiments/fig2_activation_profile.csv`.

use fitact_bench::report::Table;
use fitact_bench::setup::{prepare_model, ExperimentScale};
use fitact_data::DatasetKind;
use fitact_nn::models::{Architecture, VGG16_SECOND_ACT_SLOT};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    eprintln!(
        "[fig2] preparing VGG16 on synthetic CIFAR-10 at scale `{}` ...",
        scale.name
    );
    let prepared = prepare_model(Architecture::Vgg16, DatasetKind::Cifar10, &scale, 42)?;
    eprintln!(
        "[fig2] base model trained: fault-free test accuracy {:.2}%",
        100.0 * prepared.baseline_accuracy
    );

    let slot = &prepared.profile.slots[VGG16_SECOND_ACT_SLOT];
    let hist = slot.histogram(20);

    let mut table = Table::new(
        format!(
            "Fig. 2 — distribution of per-neuron maximum output values (VGG16 layer `{}`, {} neurons)",
            slot.label,
            slot.num_neurons()
        ),
        &["bin_center", "density"],
    );
    for (center, density) in &hist {
        table.push_row(vec![format!("{center:.4}"), format!("{density:.4}")]);
    }
    println!("{}", table.to_pretty_string());
    let path = table.write_csv("fig2_activation_profile.csv")?;
    println!("series written to {}", path.display());

    // The paper's observation: neuron maxima vary widely, so one global bound
    // cannot fit them all.
    let maxima = &slot.per_neuron_max;
    let min = maxima.iter().copied().fold(f32::INFINITY, f32::min);
    let mean = maxima.iter().sum::<f32>() / maxima.len() as f32;
    println!();
    println!(
        "per-neuron maxima: min {:.3}, mean {:.3}, max {:.3} — the spread that motivates per-neuron bounds",
        min, mean, slot.layer_max
    );
    Ok(())
}
