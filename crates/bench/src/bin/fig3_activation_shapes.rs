//! Figure 3: shapes of the ReLU, GBReLU, FitReLU-Naive and trainable FitReLU
//! activation functions.
//!
//! Prints the four functions sampled over x ∈ [−5, 10] for a bound λ = 4
//! (matching the qualitative panels of the paper's Fig. 3) and writes the
//! series to `target/experiments/fig3_activation_shapes.csv`.

use fitact::{FitRelu, FitReluNaive, GbRelu};
use fitact_bench::report::Table;
use fitact_nn::{Activation, ReLU};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lambda = 4.0f32;
    let slope = 8.0f32;
    let relu = ReLU::new();
    let gbrelu = GbRelu::new(lambda);
    let naive = FitReluNaive::from_bounds(&[lambda]);
    let fitrelu = FitRelu::from_bounds(&[lambda], slope);

    let mut table = Table::new(
        format!("Fig. 3 — activation shapes (lambda = {lambda}, k = {slope})"),
        &["x", "relu", "gbrelu", "fitrelu_naive", "fitrelu"],
    );
    let steps = 61;
    for i in 0..steps {
        let x = -5.0 + 15.0 * i as f32 / (steps - 1) as f32;
        table.push_row(vec![
            format!("{x:.2}"),
            format!("{:.4}", relu.eval_scalar(x, 0)),
            format!("{:.4}", gbrelu.eval_scalar(x, 0)),
            format!("{:.4}", naive.eval_scalar(x, 0)),
            format!("{:.4}", fitrelu.eval_scalar(x, 0)),
        ]);
    }
    println!("{}", table.to_pretty_string());
    let path = table.write_csv("fig3_activation_shapes.csv")?;
    println!("series written to {}", path.display());

    // A compact qualitative summary matching the figure's message.
    println!();
    println!("ReLU is unbounded; GBReLU and FitReLU-Naive squash values above lambda to 0;");
    println!("trainable FitReLU follows the hard clamp but with a smooth, differentiable edge.");
    Ok(())
}
