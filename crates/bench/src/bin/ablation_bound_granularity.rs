//! Ablation: bound granularity — per layer (Clip-Act), per channel, per neuron
//! (FitAct-Naive), and trained per neuron (FitAct).
//!
//! The paper argues that a single layer-wide bound is too coarse (Fig. 1/2)
//! and jumps straight to per-neuron bounds; this ablation fills in the middle
//! of the design space and measures accuracy under fault for each granularity
//! on the same trained VGG16.

use fitact::ProtectionScheme;
use fitact_bench::report::Table;
use fitact_bench::setup::{prepare_model, ExperimentScale};
use fitact_data::DatasetKind;
use fitact_faults::{Campaign, CampaignConfig};
use fitact_nn::models::Architecture;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    eprintln!(
        "[ablation] preparing VGG16 on synthetic CIFAR-10 at scale `{}` ...",
        scale.name
    );
    let prepared = prepare_model(Architecture::Vgg16, DatasetKind::Cifar10, &scale, 42)?;
    let rate_scale = ExperimentScale::rate_scale();

    let schemes = [
        ProtectionScheme::ClipAct,
        ProtectionScheme::ClipActPerChannel,
        ProtectionScheme::FitActNaive,
        ProtectionScheme::FitAct { slope: 8.0 },
    ];
    let nominal_rates = [1e-6f64, 3e-6, 1e-5];

    let mut table = Table::new(
        format!(
            "Ablation — bound granularity (VGG16 / CIFAR-10, baseline {:.2}%)",
            100.0 * prepared.baseline_accuracy
        ),
        &[
            "granularity",
            "extra_bound_words",
            "fault_free_%",
            "acc@1e-6_%",
            "acc@3e-6_%",
            "acc@1e-5_%",
        ],
    );

    for scheme in schemes {
        let mut network = prepared.protected(scheme, &scale)?;
        let extra_words: usize = network
            .param_info()
            .iter()
            .filter(|i| i.path.ends_with("lambda"))
            .map(|i| i.numel)
            .sum();
        let fault_free = network.evaluate(
            &prepared.test_inputs,
            &prepared.test_labels,
            scale.batch_size,
        )?;
        let mut row = vec![
            scheme.name().to_string(),
            extra_words.to_string(),
            format!("{:.2}", 100.0 * fault_free),
        ];
        for (i, &nominal) in nominal_rates.iter().enumerate() {
            let mut campaign =
                Campaign::new(&mut network, &prepared.test_inputs, &prepared.test_labels)?;
            let result = campaign.run(&CampaignConfig {
                fault_rate: nominal * rate_scale,
                trials: scale.trials,
                batch_size: scale.batch_size,
                seed: 900 + i as u64,
            })?;
            row.push(format!("{:.2}", 100.0 * result.mean_accuracy()));
            eprintln!(
                "[ablation] {scheme} @ {nominal:.0e}: {:.2}%",
                100.0 * result.mean_accuracy()
            );
        }
        table.push_row(row);
    }

    println!("{}", table.to_pretty_string());
    let path = table.write_csv("ablation_bound_granularity.csv")?;
    println!("series written to {}", path.display());
    Ok(())
}
