//! Figure 1: accuracy of VGG16 on CIFAR-10 under faults, as a function of the
//! global activation bound (GBReLU) of the second layer.
//!
//! Reproduces the paper's motivating case study: faults are injected only into
//! the parameters of the input layer and the second (convolutional) layer,
//! GBReLU replaces the ReLU after the second layer, and its single global
//! bound λ is swept. Too large a bound lets faulty values through; too small a
//! bound destroys the fault-free accuracy — the tension that motivates
//! per-neuron bounds.
//!
//! The fault rate is scaled so the *expected number of bit flips* in the two
//! targeted layers matches what the paper's full-width VGG16 would see at
//! 1e-5 (see EXPERIMENTS.md).

use fitact::GbRelu;
use fitact_bench::report::Table;
use fitact_bench::setup::{prepare_model, ExperimentScale};
use fitact_data::DatasetKind;
use fitact_faults::{Campaign, CampaignConfig, MemoryMap};
use fitact_nn::models::{
    Architecture, ModelConfig, VGG16_FIRST_CONV_PREFIX, VGG16_SECOND_ACT_SLOT,
    VGG16_SECOND_CONV_PREFIX,
};
use fitact_nn::ReLU;

/// The fault rate of the paper's Fig. 1 case study.
const PAPER_FAULT_RATE: f64 = 1e-5;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    eprintln!(
        "[fig1] preparing VGG16 on synthetic CIFAR-10 at scale `{}` ...",
        scale.name
    );
    let prepared = prepare_model(Architecture::Vgg16, DatasetKind::Cifar10, &scale, 7)?;
    let baseline = prepared.baseline_accuracy;
    eprintln!(
        "[fig1] fault-free baseline accuracy: {:.2}%",
        100.0 * baseline
    );

    // Scale the fault rate so the expected flip count in the two targeted
    // layers matches the paper's full-width model at PAPER_FAULT_RATE.
    let layer_filter = |path: &str| {
        path.starts_with(&format!("{VGG16_FIRST_CONV_PREFIX}/"))
            || path.starts_with(&format!("{VGG16_SECOND_CONV_PREFIX}/"))
    };
    let full_width = Architecture::Vgg16.build(&ModelConfig::new(10))?;
    let full_bits = MemoryMap::of_network_filtered(&full_width, layer_filter).total_bits();
    let actual_bits = MemoryMap::of_network_filtered(&prepared.network, layer_filter).total_bits();
    let rate = PAPER_FAULT_RATE * full_bits as f64 / actual_bits as f64;
    eprintln!(
        "[fig1] targeted fault space: {actual_bits} bits (full-width: {full_bits}); effective rate {rate:.2e}"
    );

    // The second-layer activation maximum from calibration anchors the sweep.
    let layer_max = prepared.profile.slots[VGG16_SECOND_ACT_SLOT].layer_max;
    let sweep: Vec<f32> = (1..=16).map(|i| layer_max * i as f32 / 8.0).collect();

    let mut table = Table::new(
        format!(
            "Fig. 1 — VGG16/CIFAR-10 accuracy under faults vs global bound of layer 2 (baseline {:.2}%)",
            100.0 * baseline
        ),
        &["global_bound", "accuracy_under_fault_%", "fault_free_accuracy_%"],
    );

    for &bound in &sweep {
        let mut network = prepared.network.clone();
        {
            let mut slots = network.activation_slots();
            slots[VGG16_SECOND_ACT_SLOT].replace_activation(Box::new(GbRelu::new(bound)));
        }
        // Fault-free accuracy with this bound installed (shows the accuracy
        // loss when the bound is too small).
        let fault_free = network.evaluate(
            &prepared.test_inputs,
            &prepared.test_labels,
            scale.batch_size,
        )?;
        let mut campaign = Campaign::with_layer_filter(
            &mut network,
            &prepared.test_inputs,
            &prepared.test_labels,
            layer_filter,
        )?;
        let result = campaign.run(&CampaignConfig {
            fault_rate: rate,
            trials: scale.trials,
            batch_size: scale.batch_size,
            seed: 11,
        })?;
        table.push_row(vec![
            format!("{bound:.3}"),
            format!("{:.2}", 100.0 * result.mean_accuracy()),
            format!("{:.2}", 100.0 * fault_free),
        ]);
        eprintln!(
            "[fig1] bound {bound:.3}: accuracy under fault {:.2}%, fault-free {:.2}%",
            100.0 * result.mean_accuracy(),
            100.0 * fault_free
        );
    }

    // Reference row: plain ReLU in the second slot (unbounded).
    {
        let mut network = prepared.network.clone();
        {
            let mut slots = network.activation_slots();
            slots[VGG16_SECOND_ACT_SLOT].replace_activation(Box::new(ReLU::new()));
        }
        let mut campaign = Campaign::with_layer_filter(
            &mut network,
            &prepared.test_inputs,
            &prepared.test_labels,
            layer_filter,
        )?;
        let result = campaign.run(&CampaignConfig {
            fault_rate: rate,
            trials: scale.trials,
            batch_size: scale.batch_size,
            seed: 11,
        })?;
        table.push_row(vec![
            "unbounded".into(),
            format!("{:.2}", 100.0 * result.mean_accuracy()),
            format!("{:.2}", 100.0 * baseline),
        ]);
    }

    println!("{}", table.to_pretty_string());
    let path = table.write_csv("fig1_bound_sweep.csv")?;
    println!("series written to {}", path.display());
    Ok(())
}
