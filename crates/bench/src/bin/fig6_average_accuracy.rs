//! Figure 6: average model accuracy for FitAct, Clip-Act, Ranger and the
//! unprotected model — ResNet50, VGG16 and AlexNet on CIFAR-10 and CIFAR-100,
//! under fault rates 1e-7 … 3e-5.
//!
//! This is the paper's headline comparison grid. One row is printed per
//! (dataset, architecture, scheme, fault rate) combination; rates are the
//! paper's nominal rates scaled per architecture so that the expected number
//! of bit flips matches the full-width model (see EXPERIMENTS.md).
//!
//! Campaigns run through the statistical engine: every point runs its full
//! fixed trial budget (the mean-accuracy column keeps the fixed-count
//! protocol's precision — the engine's early-stopping rule targets the
//! critical-SDC rate, a different statistic, so it must not truncate the
//! mean), and the table additionally reports the 95% Wilson interval on the
//! critical-SDC rate that the budget bought.
//!
//! This is the longest-running harness; use `FITACT_SCALE=tiny` for a smoke
//! run.

use fitact::ProtectionScheme;
use fitact_bench::report::Table;
use fitact_bench::setup::{prepare_model, ExperimentScale};
use fitact_data::DatasetKind;
use fitact_faults::{
    Campaign, StatCampaignConfig, StratumSpec, TransientBitFlip, PAPER_FAULT_RATES,
};
use fitact_nn::models::Architecture;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    let rate_scale = ExperimentScale::rate_scale();
    let mut table = Table::new(
        "Fig. 6 — average accuracy per dataset / architecture / scheme / fault rate",
        &[
            "dataset",
            "architecture",
            "scheme",
            "nominal_fault_rate",
            "mean_accuracy_%",
            "baseline_%",
            "trials",
            "critical_sdc_%",
            "critical_ci_95_%",
        ],
    );

    for kind in DatasetKind::ALL {
        for architecture in Architecture::ALL {
            eprintln!(
                "[fig6] preparing {architecture} on synthetic {kind} at scale `{}` ...",
                scale.name
            );
            let prepared = prepare_model(architecture, kind, &scale, 42)?;
            eprintln!(
                "[fig6] {architecture}/{kind}: fault-free baseline {:.2}%",
                100.0 * prepared.baseline_accuracy
            );

            for scheme in ProtectionScheme::paper_schemes() {
                let mut network = prepared.protected(scheme, &scale)?;
                for (i, &nominal) in PAPER_FAULT_RATES.iter().enumerate() {
                    let mut campaign =
                        Campaign::new(&mut network, &prepared.test_inputs, &prepared.test_labels)?;
                    // A single uniform stratum keeps the paper's fault model.
                    // min_trials == max_trials pins the full budget: the mean
                    // column's precision must not depend on how quickly the
                    // critical-SDC interval happens to tighten.
                    let report = campaign.run_until(
                        &StatCampaignConfig {
                            fault_rate: nominal * rate_scale,
                            batch_size: scale.batch_size,
                            seed: 500 + i as u64,
                            round_trials: scale.trials.clamp(1, 4),
                            min_trials: scale.trials,
                            max_trials: scale.trials,
                            strata: vec![StratumSpec::all()],
                            ..Default::default()
                        },
                        &TransientBitFlip,
                    )?;
                    let uniform = &report.strata[0];
                    let critical_ci = report.pooled_critical();
                    table.push_row(vec![
                        kind.name().into(),
                        architecture.name().into(),
                        scheme.name().into(),
                        format!("{nominal:.0e}"),
                        format!("{:.2}", 100.0 * uniform.mean_accuracy()),
                        format!("{:.2}", 100.0 * prepared.baseline_accuracy),
                        format!("{}", report.total_trials()),
                        format!("{:.1}", 100.0 * critical_ci.point()),
                        format!(
                            "[{:.1}, {:.1}]",
                            100.0 * critical_ci.low,
                            100.0 * critical_ci.high
                        ),
                    ]);
                    eprintln!(
                        "[fig6]   {kind}/{architecture}/{scheme} @ {nominal:.0e}: {:.2}% \
                         ({} trials, critical SDC {:.1}%)",
                        100.0 * uniform.mean_accuracy(),
                        report.total_trials(),
                        100.0 * critical_ci.point(),
                    );
                }
            }
        }
    }

    println!("{}", table.to_pretty_string());
    let path = table.write_csv("fig6_average_accuracy.csv")?;
    println!("series written to {}", path.display());
    Ok(())
}
