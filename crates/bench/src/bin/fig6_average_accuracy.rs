//! Figure 6: average model accuracy for FitAct, Clip-Act, Ranger and the
//! unprotected model — ResNet50, VGG16 and AlexNet on CIFAR-10 and CIFAR-100,
//! under fault rates 1e-7 … 3e-5.
//!
//! This is the paper's headline comparison grid. One row is printed per
//! (dataset, architecture, scheme, fault rate) combination; rates are the
//! paper's nominal rates scaled per architecture so that the expected number
//! of bit flips matches the full-width model (see EXPERIMENTS.md).
//!
//! This is the longest-running harness; use `FITACT_SCALE=tiny` for a smoke
//! run.

use fitact::ProtectionScheme;
use fitact_bench::report::Table;
use fitact_bench::setup::{prepare_model, ExperimentScale};
use fitact_data::DatasetKind;
use fitact_faults::{Campaign, CampaignConfig, PAPER_FAULT_RATES};
use fitact_nn::models::Architecture;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    let rate_scale = ExperimentScale::rate_scale();
    let mut table = Table::new(
        "Fig. 6 — average accuracy per dataset / architecture / scheme / fault rate",
        &[
            "dataset",
            "architecture",
            "scheme",
            "nominal_fault_rate",
            "mean_accuracy_%",
            "baseline_%",
        ],
    );

    for kind in DatasetKind::ALL {
        for architecture in Architecture::ALL {
            eprintln!(
                "[fig6] preparing {architecture} on synthetic {kind} at scale `{}` ...",
                scale.name
            );
            let prepared = prepare_model(architecture, kind, &scale, 42)?;
            eprintln!(
                "[fig6] {architecture}/{kind}: fault-free baseline {:.2}%",
                100.0 * prepared.baseline_accuracy
            );

            for scheme in ProtectionScheme::paper_schemes() {
                let mut network = prepared.protected(scheme, &scale)?;
                for (i, &nominal) in PAPER_FAULT_RATES.iter().enumerate() {
                    let mut campaign =
                        Campaign::new(&mut network, &prepared.test_inputs, &prepared.test_labels)?;
                    let result = campaign.run(&CampaignConfig {
                        fault_rate: nominal * rate_scale,
                        trials: scale.trials,
                        batch_size: scale.batch_size,
                        seed: 500 + i as u64,
                    })?;
                    table.push_row(vec![
                        kind.name().into(),
                        architecture.name().into(),
                        scheme.name().into(),
                        format!("{nominal:.0e}"),
                        format!("{:.2}", 100.0 * result.mean_accuracy()),
                        format!("{:.2}", 100.0 * prepared.baseline_accuracy),
                    ]);
                    eprintln!(
                        "[fig6]   {kind}/{architecture}/{scheme} @ {nominal:.0e}: {:.2}%",
                        100.0 * result.mean_accuracy()
                    );
                }
            }
        }
    }

    println!("{}", table.to_pretty_string());
    let path = table.write_csv("fig6_average_accuracy.csv")?;
    println!("series written to {}", path.display());
    Ok(())
}
