//! Section VI-C1: runtime overhead of the resilience post-training stage
//! relative to conventional training.
//!
//! The paper reports that post-training ResNet50 / VGG16 / AlexNet takes
//! about 21 / 4 / 1 minutes versus 340 / 60 / 17 minutes of conventional
//! training — a 5.9%–6.7% overhead. This harness measures the wall-clock of
//! one conventional-training epoch and one post-training epoch for each
//! architecture at the experiment scale and reports the per-epoch ratio, plus
//! the projected overhead for the paper's epoch budget (200 conventional
//! epochs vs 10 post-training epochs, the ratio implied by the paper's
//! minutes).

use fitact::{FitAct, FitActConfig};
use fitact_bench::report::Table;
use fitact_bench::setup::{prepare_data, ExperimentScale};
use fitact_data::DatasetKind;
use fitact_nn::models::{Architecture, ModelConfig};
use std::time::Instant;

/// Conventional-training epochs assumed when projecting the total overhead.
const CONVENTIONAL_EPOCHS: f64 = 200.0;
/// Post-training epochs assumed when projecting the total overhead.
const POST_TRAIN_EPOCHS: f64 = 10.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    let (train_inputs, train_labels, _test_inputs, _test_labels) =
        prepare_data(DatasetKind::Cifar10, &scale, 3)?;

    let mut table = Table::new(
        "Section VI-C1 — post-training runtime overhead vs conventional training",
        &[
            "model",
            "conventional_epoch_s",
            "post_train_epoch_s",
            "per_epoch_ratio_%",
            "projected_total_overhead_%",
        ],
    );

    for architecture in Architecture::ALL {
        eprintln!(
            "[training_overhead] measuring {architecture} at scale `{}` ...",
            scale.name
        );
        let config = ModelConfig::new(10).with_width(scale.width).with_seed(2);
        let mut network = architecture.build(&config)?;
        let fitact = FitAct::new(FitActConfig {
            batch_size: scale.batch_size,
            post_train_epochs: 1,
            ..Default::default()
        });

        // One conventional-training epoch (stage 1).
        let start = Instant::now();
        fitact.train_for_accuracy(&mut network, &train_inputs, &train_labels, 1, 0.05)?;
        let conventional_epoch = start.elapsed().as_secs_f64();

        // Architecture modification + one post-training epoch (stage 2).
        let profile = fitact.calibrate(&mut network, &train_inputs)?;
        fitact.modify(&mut network, &profile)?;
        let start = Instant::now();
        fitact.post_train(&mut network, &train_inputs, &train_labels)?;
        let post_epoch = start.elapsed().as_secs_f64();

        let per_epoch_ratio = 100.0 * post_epoch / conventional_epoch;
        let projected =
            100.0 * (post_epoch * POST_TRAIN_EPOCHS) / (conventional_epoch * CONVENTIONAL_EPOCHS);
        table.push_row(vec![
            architecture.name().into(),
            format!("{conventional_epoch:.2}"),
            format!("{post_epoch:.2}"),
            format!("{per_epoch_ratio:.1}"),
            format!("{projected:.1}"),
        ]);
        eprintln!(
            "[training_overhead] {architecture}: conventional epoch {conventional_epoch:.2}s, \
             post-train epoch {post_epoch:.2}s, projected overhead {projected:.1}%"
        );
    }

    println!("{}", table.to_pretty_string());
    let path = table.write_csv("training_overhead.csv")?;
    println!("series written to {}", path.display());
    Ok(())
}
