//! Helpers for printing experiment tables and writing CSV files.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory (relative to the workspace root) where experiment CSVs are
/// written.
pub const OUTPUT_DIR: &str = "target/experiments";

/// A simple rectangular results table that can be pretty-printed and written
/// to CSV.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (converted to strings by the caller).
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn to_pretty_string(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    format!(
                        "{:width$}",
                        c,
                        width = widths.get(i).copied().unwrap_or(c.len())
                    )
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `OUTPUT_DIR/<file_name>` and returns the
    /// full path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or writing the file.
    pub fn write_csv(&self, file_name: &str) -> io::Result<PathBuf> {
        let dir = Path::new(OUTPUT_DIR);
        fs::create_dir_all(dir)?;
        let path = dir.join(file_name);
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_text_and_csv() {
        let mut t = Table::new("Demo", &["scheme", "accuracy"]);
        t.push_row(vec!["fitact".into(), "90.3".into()]);
        t.push_row(vec!["clipact".into(), "61.6".into()]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let text = t.to_pretty_string();
        assert!(text.contains("Demo"));
        assert!(text.contains("fitact"));
        let csv = t.to_csv();
        assert!(csv.starts_with("scheme,accuracy\n"));
        assert!(csv.contains("clipact,61.6"));
    }

    #[test]
    fn empty_table_is_reported_empty() {
        let t = Table::new("Empty", &["a"]);
        assert!(t.is_empty());
        assert!(t.to_csv().starts_with("a"));
    }
}
