//! Shared experiment plumbing: scaling presets, dataset preparation and base
//! model training.
//!
//! Every figure/table binary uses the same pipeline: build a CIFAR-scale
//! architecture (scaled by a width multiplier so it runs on a CPU in minutes),
//! train it on the synthetic CIFAR stand-in, quantise it to the Q15.16 grid,
//! and then hand protected copies to the fault-injection campaigns.
//!
//! The experiment scale is selected with the `FITACT_SCALE` environment
//! variable: `tiny` (seconds, for smoke tests), `quick` (minutes, the
//! default), or `full` (closer to paper scale; hours on a CPU).

use fitact::{
    apply_protection, ActivationProfile, ActivationProfiler, FitAct, FitActConfig, ProtectionScheme,
};
use fitact_data::{
    materialize, DataError, Dataset, DatasetKind, SyntheticCifar, SyntheticCifarConfig,
};
use fitact_faults::quantize_network;
use fitact_nn::models::{Architecture, ModelConfig};
use fitact_nn::Network;
use fitact_tensor::Tensor;

/// How large an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Human-readable name of the preset.
    pub name: &'static str,
    /// Width multiplier applied to every architecture.
    pub width: f32,
    /// Training samples per dataset.
    pub train_samples: usize,
    /// Test samples per dataset (the campaign evaluation set).
    pub test_samples: usize,
    /// Stage-1 training epochs.
    pub train_epochs: usize,
    /// Fault-injection trials per (scheme, rate) point.
    pub trials: usize,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl ExperimentScale {
    /// Seconds-scale preset used by smoke tests.
    pub fn tiny() -> Self {
        ExperimentScale {
            name: "tiny",
            width: 0.0626,
            train_samples: 120,
            test_samples: 60,
            train_epochs: 2,
            trials: 3,
            batch_size: 20,
        }
    }

    /// Minutes-scale preset (default).
    pub fn quick() -> Self {
        ExperimentScale {
            name: "quick",
            width: 0.125,
            train_samples: 600,
            test_samples: 200,
            train_epochs: 4,
            trials: 8,
            batch_size: 32,
        }
    }

    /// Closer-to-paper preset (hours on a CPU).
    pub fn full() -> Self {
        ExperimentScale {
            name: "full",
            width: 0.5,
            train_samples: 4000,
            test_samples: 1000,
            train_epochs: 12,
            trials: 20,
            batch_size: 64,
        }
    }

    /// Reads the preset from the `FITACT_SCALE` environment variable
    /// (`tiny` / `quick` / `full`, defaulting to `quick`), then applies the
    /// optional per-field overrides `FITACT_WIDTH`, `FITACT_TRAIN_SAMPLES`,
    /// `FITACT_TEST_SAMPLES`, `FITACT_EPOCHS` and `FITACT_TRIALS`.
    pub fn from_env() -> Self {
        let mut scale = match std::env::var("FITACT_SCALE").as_deref() {
            Ok("tiny") => ExperimentScale::tiny(),
            Ok("full") => ExperimentScale::full(),
            _ => ExperimentScale::quick(),
        };
        fn env<T: std::str::FromStr>(name: &str) -> Option<T> {
            std::env::var(name).ok().and_then(|v| v.parse().ok())
        }
        if let Some(width) = env::<f32>("FITACT_WIDTH") {
            scale.width = width;
        }
        if let Some(samples) = env::<usize>("FITACT_TRAIN_SAMPLES") {
            scale.train_samples = samples;
        }
        if let Some(samples) = env::<usize>("FITACT_TEST_SAMPLES") {
            scale.test_samples = samples;
        }
        if let Some(epochs) = env::<usize>("FITACT_EPOCHS") {
            scale.train_epochs = epochs;
        }
        if let Some(trials) = env::<usize>("FITACT_TRIALS") {
            scale.trials = trials;
        }
        scale
    }

    /// The fault-rate scaling factor applied to the paper's nominal rates.
    ///
    /// By default the nominal per-bit rates are used unchanged
    /// (fraction-preserving: the width-scaled model sees the same *fraction*
    /// of corrupted bits as the paper's full-width model). Setting
    /// `FITACT_RATE_SCALE` overrides the factor — for example to the
    /// full-width/actual bit ratio if matching the *absolute* flip count is
    /// desired instead.
    pub fn rate_scale() -> f64 {
        std::env::var("FITACT_RATE_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0)
    }
}

/// A trained base model together with its train/test splits, ready for
/// calibration, protection and fault campaigns.
#[derive(Debug)]
pub struct PreparedModel {
    /// The trained (and quantised) base network with plain ReLU activations.
    pub network: Network,
    /// Calibrated per-neuron activation maxima.
    pub profile: ActivationProfile,
    /// Training inputs `[n, 3, 32, 32]`.
    pub train_inputs: Tensor,
    /// Training labels.
    pub train_labels: Vec<usize>,
    /// Test inputs `[m, 3, 32, 32]`.
    pub test_inputs: Tensor,
    /// Test labels.
    pub test_labels: Vec<usize>,
    /// Fault-free test accuracy of the quantised base model.
    pub baseline_accuracy: f32,
}

impl PreparedModel {
    /// Returns a copy of the base network protected with `scheme`.
    ///
    /// For the `FitAct` scheme the per-neuron bounds are additionally
    /// post-trained on the training split (stage 2 of the workflow).
    ///
    /// # Errors
    ///
    /// Propagates calibration/post-training errors.
    pub fn protected(
        &self,
        scheme: ProtectionScheme,
        scale: &ExperimentScale,
    ) -> Result<Network, Box<dyn std::error::Error>> {
        let mut network = self.network.clone();
        apply_protection(&mut network, &self.profile, scheme)?;
        if let ProtectionScheme::FitAct { .. } = scheme {
            let config = FitActConfig {
                post_train_epochs: 2,
                batch_size: scale.batch_size,
                ..Default::default()
            };
            FitAct::new(config).post_train(&mut network, &self.train_inputs, &self.train_labels)?;
        }
        quantize_network(&mut network);
        Ok(network)
    }
}

/// Generates the synthetic train and test splits for one dataset kind.
///
/// # Errors
///
/// Propagates dataset errors.
pub fn prepare_data(
    kind: DatasetKind,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<(Tensor, Vec<usize>, Tensor, Vec<usize>), DataError> {
    let train = SyntheticCifar::try_new(SyntheticCifarConfig {
        classes: kind.classes(),
        samples: scale.train_samples,
        seed,
        noise: 0.15,
    })?;
    let test = SyntheticCifar::test(kind.classes(), scale.test_samples, seed);
    let (train_inputs, train_labels) = materialize(&train)?;
    let (test_inputs, test_labels) = materialize(&test)?;
    debug_assert_eq!(train.num_classes(), kind.classes());
    Ok((train_inputs, train_labels, test_inputs, test_labels))
}

/// Builds, trains, quantises and calibrates one architecture on one dataset.
///
/// # Errors
///
/// Propagates model-construction, training and calibration errors.
pub fn prepare_model(
    architecture: Architecture,
    kind: DatasetKind,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<PreparedModel, Box<dyn std::error::Error>> {
    let (train_inputs, train_labels, test_inputs, test_labels) = prepare_data(kind, scale, seed)?;
    let model_config = ModelConfig::new(kind.classes())
        .with_width(scale.width)
        .with_seed(seed);
    let mut network = architecture.build(&model_config)?;

    let fitact = FitAct::new(FitActConfig {
        batch_size: scale.batch_size,
        ..Default::default()
    });
    fitact.train_for_accuracy(
        &mut network,
        &train_inputs,
        &train_labels,
        scale.train_epochs,
        0.05,
    )?;
    quantize_network(&mut network);

    let profile =
        ActivationProfiler::new(scale.batch_size)?.profile(&mut network, &train_inputs)?;
    let baseline_accuracy = network.evaluate(&test_inputs, &test_labels, scale.batch_size)?;

    Ok(PreparedModel {
        network,
        profile,
        train_inputs,
        train_labels,
        test_inputs,
        test_labels,
        baseline_accuracy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_presets_are_ordered() {
        let tiny = ExperimentScale::tiny();
        let quick = ExperimentScale::quick();
        let full = ExperimentScale::full();
        assert!(tiny.train_samples < quick.train_samples);
        assert!(quick.train_samples < full.train_samples);
        assert!(tiny.width <= quick.width && quick.width <= full.width);
        assert_eq!(tiny.name, "tiny");
    }

    #[test]
    fn from_env_defaults_to_quick() {
        // The test environment does not set FITACT_SCALE.
        if std::env::var("FITACT_SCALE").is_err() {
            assert_eq!(ExperimentScale::from_env().name, "quick");
        }
    }

    #[test]
    fn prepare_data_produces_matching_splits() {
        let scale = ExperimentScale::tiny();
        let (train_x, train_y, test_x, test_y) =
            prepare_data(DatasetKind::Cifar10, &scale, 1).unwrap();
        assert_eq!(train_x.dims()[0], scale.train_samples);
        assert_eq!(train_y.len(), scale.train_samples);
        assert_eq!(test_x.dims()[0], scale.test_samples);
        assert_eq!(test_y.len(), scale.test_samples);
        assert_eq!(train_x.dims()[1..], [3, 32, 32]);
    }

    #[test]
    fn prepare_model_trains_and_calibrates_a_tiny_alexnet() {
        let scale = ExperimentScale::tiny();
        let prepared =
            prepare_model(Architecture::AlexNet, DatasetKind::Cifar10, &scale, 3).unwrap();
        assert!(prepared.baseline_accuracy >= 0.0 && prepared.baseline_accuracy <= 1.0);
        assert!(!prepared.profile.is_empty());
        // A protected copy can be built for every paper scheme.
        for scheme in ProtectionScheme::paper_schemes() {
            let mut protected = prepared.protected(scheme, &scale).unwrap();
            assert!(protected
                .evaluate(
                    &prepared.test_inputs,
                    &prepared.test_labels,
                    scale.batch_size
                )
                .is_ok());
        }
    }
}
