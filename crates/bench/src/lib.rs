//! Experiment harnesses for the FitAct reproduction.
//!
//! This crate hosts the binaries and Criterion benches that regenerate every
//! table and figure of the paper. Shared plumbing (experiment configuration,
//! CSV/report output) lives here; each figure/table has its own binary under
//! `src/bin/`.

pub mod report;
pub mod setup;
