//! Criterion bench for the cache-blocked matmul kernel and the
//! reduced-precision kernels.
//!
//! Measures the packed GEBP kernel behind `Tensor::matmul` across the square
//! sizes that dominate this workload (64–512), its transposed variants, and —
//! as the speedup reference — a faithful copy of the seed's scalar
//! `matmul_rows` kernel (branchy zero-skip row loop). The acceptance bar for
//! the kernel overhaul is ≥ 3× over that scalar kernel at 256×256×256 on a
//! single thread.
//!
//! The `matmul_f16` group times the runtime-dispatched f16 kernel against
//! its scalar leg at the same 256×256×256 shape, asserts the two legs are
//! **bit-identical** (the invariant `crates/tensor` pins in both CI matrix
//! legs), and writes the comparison to `BENCH_matmul.json` at the workspace
//! root — the case `fitact bench-gate --case matmul_f16` gates against
//! `ci/golden/bench_baseline.json`. Run with `cargo bench -- --test` for
//! the CI smoke mode (one untimed pass, JSON flagged as a smoke run).

use criterion::{black_box, BenchmarkId, Criterion};
use fitact_tensor::half::f32_to_f16;
use fitact_tensor::matmul::{matmul_into, serial_scope, Layout};
use fitact_tensor::simd;
use std::time::Instant;

/// The seed repository's scalar kernel, kept verbatim as the baseline: row
/// loop, `a_val == 0.0` skip, axpy inner loop over `b` rows.
fn seed_scalar_kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_val) in a_row.iter().enumerate() {
            if a_val == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for j in 0..n {
                out_row[j] += a_val * b_row[j];
            }
        }
    }
}

fn operands(m: usize, k: usize, n: usize) -> (Vec<f32>, Vec<f32>) {
    let gen = |len: usize, salt: u32| -> Vec<f32> {
        (0..len)
            .map(|i| {
                ((i as u32).wrapping_mul(2_654_435_761).wrapping_add(salt) % 1000) as f32 / 500.0
                    - 1.0
            })
            .collect()
    };
    (gen(m * k, 1), gen(k * n, 2))
}

fn bench_square_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    for size in [64usize, 128, 256, 512] {
        let (a, b) = operands(size, size, size);
        let mut out = vec![0.0f32; size * size];
        group.bench_with_input(BenchmarkId::new("blocked", size), &(), |bench, ()| {
            bench.iter(|| {
                matmul_into(
                    Layout::Nn,
                    black_box(&a),
                    black_box(&b),
                    &mut out,
                    size,
                    size,
                    size,
                    false,
                );
            });
        });
        group.bench_with_input(BenchmarkId::new("seed_scalar", size), &(), |bench, ()| {
            bench.iter(|| {
                out.fill(0.0);
                seed_scalar_kernel(black_box(&a), black_box(&b), &mut out, size, size, size);
            });
        });
    }
    group.finish();
}

fn bench_transposed_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_variants");
    group.sample_size(20);
    let size = 256usize;
    let (a, b) = operands(size, size, size);
    let mut out = vec![0.0f32; size * size];
    for (name, layout) in [("nn", Layout::Nn), ("tn", Layout::Tn), ("nt", Layout::Nt)] {
        group.bench_with_input(BenchmarkId::new(name, size), &(), |bench, ()| {
            bench.iter(|| {
                matmul_into(
                    layout,
                    black_box(&a),
                    black_box(&b),
                    &mut out,
                    size,
                    size,
                    size,
                    false,
                );
            });
        });
    }
    group.finish();
}

/// f16 operands for the reduced-precision case: the same deterministic
/// values as [`operands`], with the weight matrix stored as f16 words.
fn f16_operands(m: usize, k: usize, n: usize) -> (Vec<f32>, Vec<u16>, Vec<f32>) {
    let (x, w) = operands(m, k, n);
    let words: Vec<u16> = w.iter().map(|&v| f32_to_f16(v)).collect();
    let bias: Vec<f32> = (0..n).map(|i| (i % 7) as f32 / 7.0 - 0.5).collect();
    (x, words, bias)
}

fn bench_f16_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_f16");
    group.sample_size(20);
    let size = 256usize;
    let (x, w, bias) = f16_operands(size, size, size);
    let mut out = vec![0.0f32; size * size];
    group.bench_with_input(BenchmarkId::new("dispatched", size), &(), |bench, ()| {
        bench.iter(|| {
            serial_scope(|| {
                simd::matmul_f16(
                    black_box(&x),
                    black_box(&w),
                    Some(&bias),
                    &mut out,
                    size,
                    size,
                    size,
                );
            });
        });
    });
    group.bench_with_input(BenchmarkId::new("scalar", size), &(), |bench, ()| {
        bench.iter(|| {
            simd::matmul_f16_scalar(
                black_box(&x),
                black_box(&w),
                Some(&bias),
                &mut out,
                size,
                size,
                size,
            );
        });
    });
    group.finish();
}

/// Times the dispatched f16 kernel against its scalar leg (median of `reps`
/// single-threaded passes), asserts bit-identity between the legs, and
/// returns the `BENCH_matmul.json` document. `speedup` is what the CI
/// bench-trend job gates: it collapses to ~1 if dispatch stops taking the
/// SIMD leg.
fn emit_matmul_f16_json(smoke: bool) -> String {
    let size = 256usize;
    let (x, w, bias) = f16_operands(size, size, size);
    let reps = if smoke { 1 } else { 7 };
    let time_kernel = |kernel: &dyn Fn(&mut [f32])| -> (f64, Vec<f32>) {
        serial_scope(|| {
            let mut out = vec![0.0f32; size * size];
            kernel(&mut out); // warm-up
            let mut seconds = Vec::with_capacity(reps);
            for _ in 0..reps {
                let start = Instant::now();
                kernel(&mut out);
                seconds.push(start.elapsed().as_secs_f64());
            }
            seconds.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
            (seconds[seconds.len() / 2], out)
        })
    };
    let (dispatched_s, dispatched_out) = time_kernel(&|out| {
        simd::matmul_f16(&x, &w, Some(&bias), out, size, size, size);
    });
    let (scalar_s, scalar_out) = time_kernel(&|out| {
        simd::matmul_f16_scalar(&x, &w, Some(&bias), out, size, size, size);
    });
    let bit_identical = dispatched_out
        .iter()
        .zip(&scalar_out)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        bit_identical,
        "the dispatched f16 kernel must be bit-identical to the scalar leg"
    );
    let speedup = scalar_s / dispatched_s.max(1e-12);
    println!(
        "matmul_f16: {size}^3 dispatched ({backend}) {d:.3} ms, scalar {s:.3} ms, {speedup:.2}x",
        backend = simd::backend_name(),
        d = 1e3 * dispatched_s,
        s = 1e3 * scalar_s,
    );
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"matmul_kernels\",\n",
            "  \"case\": \"matmul_f16\",\n",
            "  \"smoke\": {smoke},\n",
            "  \"shape\": \"{size}x{size}x{size}\",\n",
            "  \"backend\": \"{backend}\",\n",
            "  \"dispatched_ms\": {dispatched:.3},\n",
            "  \"scalar_ms\": {scalar:.3},\n",
            "  \"speedup\": {speedup:.3},\n",
            "  \"bit_identical\": {bit_identical}\n",
            "}}\n"
        ),
        smoke = smoke,
        size = size,
        backend = simd::backend_name(),
        dispatched = 1e3 * dispatched_s,
        scalar = 1e3 * scalar_s,
        speedup = speedup,
        bit_identical = bit_identical,
    )
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--test");
    let mut criterion = Criterion::default();
    bench_square_sizes(&mut criterion);
    bench_transposed_variants(&mut criterion);
    bench_f16_kernel(&mut criterion);
    let json = emit_matmul_f16_json(smoke);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_matmul.json");
    std::fs::write(&path, &json).expect("BENCH_matmul.json is writable");
    println!("matmul_kernels -> {}", path.display());
}
