//! Criterion bench for the cache-blocked matmul kernel.
//!
//! Measures the packed GEBP kernel behind `Tensor::matmul` across the square
//! sizes that dominate this workload (64–512), its transposed variants, and —
//! as the speedup reference — a faithful copy of the seed's scalar
//! `matmul_rows` kernel (branchy zero-skip row loop). The acceptance bar for
//! the kernel overhaul is ≥ 3× over that scalar kernel at 256×256×256 on a
//! single thread.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fitact_tensor::matmul::{matmul_into, Layout};

/// The seed repository's scalar kernel, kept verbatim as the baseline: row
/// loop, `a_val == 0.0` skip, axpy inner loop over `b` rows.
fn seed_scalar_kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_val) in a_row.iter().enumerate() {
            if a_val == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for j in 0..n {
                out_row[j] += a_val * b_row[j];
            }
        }
    }
}

fn operands(m: usize, k: usize, n: usize) -> (Vec<f32>, Vec<f32>) {
    let gen = |len: usize, salt: u32| -> Vec<f32> {
        (0..len)
            .map(|i| {
                ((i as u32).wrapping_mul(2_654_435_761).wrapping_add(salt) % 1000) as f32 / 500.0
                    - 1.0
            })
            .collect()
    };
    (gen(m * k, 1), gen(k * n, 2))
}

fn bench_square_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    for size in [64usize, 128, 256, 512] {
        let (a, b) = operands(size, size, size);
        let mut out = vec![0.0f32; size * size];
        group.bench_with_input(BenchmarkId::new("blocked", size), &(), |bench, ()| {
            bench.iter(|| {
                matmul_into(
                    Layout::Nn,
                    black_box(&a),
                    black_box(&b),
                    &mut out,
                    size,
                    size,
                    size,
                    false,
                );
            });
        });
        group.bench_with_input(BenchmarkId::new("seed_scalar", size), &(), |bench, ()| {
            bench.iter(|| {
                out.fill(0.0);
                seed_scalar_kernel(black_box(&a), black_box(&b), &mut out, size, size, size);
            });
        });
    }
    group.finish();
}

fn bench_transposed_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_variants");
    group.sample_size(20);
    let size = 256usize;
    let (a, b) = operands(size, size, size);
    let mut out = vec![0.0f32; size * size];
    for (name, layout) in [("nn", Layout::Nn), ("tn", Layout::Tn), ("nt", Layout::Nt)] {
        group.bench_with_input(BenchmarkId::new(name, size), &(), |bench, ()| {
            bench.iter(|| {
                matmul_into(
                    layout,
                    black_box(&a),
                    black_box(&b),
                    &mut out,
                    size,
                    size,
                    size,
                    false,
                );
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_square_sizes, bench_transposed_variants);
criterion_main!(benches);
