//! Criterion bench behind Table I's runtime columns: single-image inference
//! latency of each architecture with plain ReLU and with FitAct activations.
//!
//! The width multiplier is kept small so the bench suite completes quickly;
//! the relative ReLU-vs-FitAct overhead is what matters and is
//! width-independent to first order (it is per-activation work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fitact::{apply_protection, ActivationProfile, ProtectionScheme, SlotProfile};
use fitact_nn::models::{Architecture, ModelConfig};
use fitact_nn::{Mode, Network};
use fitact_tensor::Tensor;

fn unit_profile(network: &mut Network) -> ActivationProfile {
    ActivationProfile {
        slots: network
            .activation_slots()
            .into_iter()
            .map(|slot| SlotProfile {
                label: slot.label().to_owned(),
                feature_shape: slot.feature_shape().to_vec(),
                per_neuron_max: vec![1.0; slot.num_neurons()],
                layer_max: 1.0,
            })
            .collect(),
    }
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_inference");
    group.sample_size(10);
    let input = Tensor::zeros(&[1, 3, 32, 32]);

    for architecture in Architecture::ALL {
        let config = ModelConfig::new(10).with_width(0.0626).with_seed(0);
        let mut relu_net = architecture.build(&config).expect("model builds");
        let profile = unit_profile(&mut relu_net);
        let mut fitact_net = relu_net.clone();
        apply_protection(
            &mut fitact_net,
            &profile,
            ProtectionScheme::FitAct { slope: 8.0 },
        )
        .expect("protection applies");

        group.bench_with_input(
            BenchmarkId::new("relu", architecture.name()),
            &(),
            |b, ()| {
                b.iter(|| relu_net.forward(&input, Mode::Eval).expect("forward"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fitact", architecture.name()),
            &(),
            |b, ()| {
                b.iter(|| fitact_net.forward(&input, Mode::Eval).expect("forward"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
