//! Criterion bench for fault-injection campaign throughput.
//!
//! The Monte-Carlo campaigns behind the paper's Figs. 5–6 run thousands of
//! inject → evaluate → restore trials; this bench measures trials/second of
//! the serial path against the trial-parallel path on a small quantised MLP,
//! and — the headline case — the full-forward trial engine against the
//! checkpoint-resumed engine on the CNN demo network (a width-scaled
//! AlexNet), where resumed trials skip the convolutional prefix whenever
//! their faults land in the parameter-heavy late layers. All compared paths
//! produce bit-identical results (pinned by the `checkpoint_identity`
//! suite), so any gap is pure scheduling overhead or speedup.
//!
//! Besides the criterion timings, the bench writes a machine-readable
//! multi-case comparison to `BENCH_campaign.json` at the workspace root:
//! `campaign_throughput` (median-of-3 wall-clock per trial engine plus the
//! measured speedup) and `campaign_adaptive` (trials-to-target under equal
//! vs Neyman allocation on the briefly-trained CNN, against the same
//! stratified half-width criterion). Both cases are gated by CI via
//! `fitact bench-gate --case`. Run with `cargo bench -- --test` for the CI
//! smoke mode: every case executes once, untimed, and the JSON is still
//! emitted (flagged as a smoke run, which the gate skips).

use criterion::{BenchmarkId, Criterion};
use fitact::{FitAct, FitActConfig};
use fitact_data::{materialize, SyntheticCifar};
use fitact_faults::{
    plan_round_allocated, quantize_network, stratified_half_width, z_for_confidence,
    AllocationPolicy, Campaign, CampaignConfig, CampaignResult, MemoryMap, StatCampaignConfig,
    StratumPool, StratumSpec, TransientBitFlip, TrialEngine, TrialOutcome, UnitRunner,
};
use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
use fitact_nn::loss::CrossEntropyLoss;
use fitact_nn::models::{alexnet, ModelConfig};
use fitact_nn::optim::Sgd;
use fitact_nn::Network;
use fitact_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// A small trained, quantised MLP plus its evaluation set.
fn trained_setup() -> (Network, Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(0);
    let root = Sequential::new()
        .with(Box::new(Linear::new(16, 64, &mut rng)))
        .with(Box::new(ActivationLayer::relu("h", &[64])))
        .with(Box::new(Linear::new(64, 4, &mut rng)));
    let mut net = Network::new("mlp", root);
    let inputs = init::uniform(&[256, 16], -1.0, 1.0, &mut rng);
    let targets: Vec<usize> = (0..256)
        .map(|i| {
            let row = &inputs.as_slice()[i * 16..(i + 1) * 16];
            usize::from(row[0] > row[1]) + 2 * usize::from(row[2] > row[3])
        })
        .collect();
    let loss = CrossEntropyLoss::new();
    let mut opt = Sgd::with_momentum(0.1, 0.9, 0.0);
    for _ in 0..20 {
        net.train_batch(&inputs, &targets, &loss, &mut opt)
            .expect("training step");
    }
    quantize_network(&mut net);
    (net, inputs, targets)
}

/// The CNN demo: a width-scaled quantised AlexNet on synthetic CIFAR-shaped
/// inputs. Most parameters sit in the late fully-connected layers, so at
/// realistic fault rates most trials resume deep in the network.
fn cnn_demo() -> (Network, Tensor, Vec<usize>) {
    let mut net = alexnet(&ModelConfig::new(10).with_width(0.0626).with_seed(7))
        .expect("alexnet builds at tiny width");
    quantize_network(&mut net);
    let mut rng = StdRng::seed_from_u64(9);
    let inputs = init::uniform(&[64, 3, 32, 32], -1.0, 1.0, &mut rng);
    let targets: Vec<usize> = (0..64).map(|i| i % 10).collect();
    (net, inputs, targets)
}

/// The fixed-count configuration of the engine-comparison case: a paper-scale
/// fault rate (~1.6 expected flips per trial on the tiny AlexNet), so resume
/// depth follows the parameter-mass distribution.
fn cnn_config() -> CampaignConfig {
    CampaignConfig {
        fault_rate: 1e-6,
        trials: 32,
        batch_size: 32,
        seed: 42,
    }
}

fn run_cnn_campaign(
    net: &mut Network,
    inputs: &Tensor,
    targets: &[usize],
    engine: TrialEngine,
) -> CampaignResult {
    Campaign::new(net, inputs, targets)
        .expect("campaign builds")
        .with_engine(engine)
        .run_serial(&cnn_config())
        .expect("campaign runs")
}

fn bench_campaign(c: &mut Criterion) {
    let (mut net, inputs, targets) = trained_setup();
    let config = CampaignConfig {
        fault_rate: 1e-4,
        trials: 64,
        batch_size: 64,
        seed: 42,
    };
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("serial", config.trials), &(), |b, ()| {
        b.iter(|| {
            Campaign::new(&mut net, &inputs, &targets)
                .expect("campaign builds")
                .run_serial(&config)
                .expect("campaign runs")
        });
    });
    group.bench_with_input(
        BenchmarkId::new(format!("parallel_x{cores}"), config.trials),
        &(),
        |b, ()| {
            b.iter(|| {
                Campaign::new(&mut net, &inputs, &targets)
                    .expect("campaign builds")
                    .run_with_threads(&config, cores)
                    .expect("campaign runs")
            });
        },
    );
    // The statistical path: stratified sampling, outcome classification and
    // Wilson-interval early stopping. The comparison against the fixed-count
    // runs above shows what adaptive stopping buys — the trial budget matches,
    // but the campaign quits as soon as the critical-SDC CI is tight.
    let stat_config = StatCampaignConfig {
        fault_rate: 1e-4,
        batch_size: 64,
        seed: 42,
        epsilon: 0.05,
        round_trials: 8,
        min_trials: 16,
        max_trials: config.trials,
        strata: StratumSpec::by_bit_class(),
        ..Default::default()
    };
    group.bench_with_input(
        BenchmarkId::new(format!("run_until_x{cores}"), config.trials),
        &(),
        |b, ()| {
            b.iter(|| {
                Campaign::new(&mut net, &inputs, &targets)
                    .expect("campaign builds")
                    .run_until_with_threads(&stat_config, &TransientBitFlip, cores)
                    .expect("campaign runs")
            });
        },
    );
    group.finish();
}

/// Full-forward vs checkpoint-resumed trial engines on the CNN demo.
fn bench_cnn_engines(c: &mut Criterion) {
    let (mut net, inputs, targets) = cnn_demo();
    let mut group = c.benchmark_group("campaign_cnn");
    group.sample_size(10);
    for (label, engine) in [
        ("full_forward", TrialEngine::FullForward),
        ("checkpoint_resumed", TrialEngine::CheckpointResumed),
    ] {
        group.bench_with_input(
            BenchmarkId::new(label, cnn_config().trials),
            &(),
            |b, ()| {
                b.iter(|| run_cnn_campaign(&mut net, &inputs, &targets, engine));
            },
        );
    }
    group.finish();
}

/// The briefly-trained CNN demo of `tests/campaign_statistics.rs`: the
/// adaptive-allocation case needs a model whose fault-free accuracy is well
/// above chance, so exponent-bit flips actually produce critical SDC and the
/// per-stratum variances differ — the regime Neyman allocation exploits. (The
/// untrained `cnn_demo` sits at chance accuracy, where nothing can drop far
/// enough to classify as critical and every stratum looks alike.)
fn trained_cnn_demo() -> (Network, Tensor, Vec<usize>) {
    let train = SyntheticCifar::train(10, 160, 33);
    let test = SyntheticCifar::test(10, 80, 33);
    let (train_x, train_y) = materialize(&train).expect("train split materialises");
    let (test_x, test_y) = materialize(&test).expect("test split materialises");
    let mut net = alexnet(
        &ModelConfig::new(10)
            .with_width(0.0626)
            .with_seed(7)
            .with_dropout(0.1),
    )
    .expect("alexnet builds at tiny width");
    let fitact = FitAct::new(FitActConfig {
        batch_size: 20,
        ..Default::default()
    });
    fitact
        .train_for_accuracy(&mut net, &train_x, &train_y, 4, 0.05)
        .expect("brief training converges");
    quantize_network(&mut net);
    (net, test_x, test_y)
}

/// The statistical campaign shape of the adaptive-allocation case: a fault
/// rate lopsided enough that variance concentrates in the exponent stratum —
/// ~0.5 expected flips per trial, mostly masked with a visible critical
/// minority.
fn adaptive_config(smoke: bool, words: usize) -> StatCampaignConfig {
    StatCampaignConfig {
        fault_rate: 0.5 / (words as f64 * 15.0),
        batch_size: 40,
        seed: 2024,
        epsilon: if smoke { 0.12 } else { 0.03 },
        confidence: 0.95,
        critical_threshold: 0.1,
        round_trials: if smoke { 12 } else { 4 },
        min_trials: if smoke { 24 } else { 12 },
        max_trials: if smoke { 72 } else { 3000 },
        strata: StratumSpec::by_bit_class(),
        ..Default::default()
    }
}

/// Runs the CNN demo campaign round by round under `policy` until the
/// **stratified** critical-SDC half-width reaches the ε target, and returns
/// the trials spent. Both policies are driven against the same metric — the
/// one Neyman allocation minimises — so the comparison isolates what the
/// allocation itself buys.
fn trials_to_stratified_target(
    policy: AllocationPolicy,
    base: &StatCampaignConfig,
    net: &Network,
    inputs: &Tensor,
    targets: &[usize],
) -> usize {
    let config = StatCampaignConfig {
        allocation: policy,
        ..base.clone()
    };
    let mut runner = UnitRunner::new(net.clone(), inputs.clone(), targets.to_vec(), &config, 1)
        .expect("runner builds");
    let z = z_for_confidence(config.confidence);
    let fault_free = runner.fault_free_accuracy();
    let sampler = runner.sampler().clone();
    let num_strata = sampler.num_strata();
    let populations: Vec<u64> = (0..num_strata).map(|s| sampler.population(s)).collect();
    let total_pop: u64 = populations.iter().sum();
    let weights: Vec<f64> = populations
        .iter()
        .map(|&p| p as f64 / total_pop as f64)
        .collect();
    let mut pools = vec![StratumPool::new(); num_strata];
    let mut counts = vec![0usize; num_strata];
    loop {
        let specs = plan_round_allocated(&config, z, fault_free, &populations, &pools, &counts);
        if specs.is_empty() {
            break;
        }
        let mut per_stratum = vec![0usize; num_strata];
        for spec in &specs {
            per_stratum[spec.stratum] += 1;
        }
        for (stratum, &n) in per_stratum.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let points = runner
                .run_unit(&TransientBitFlip, stratum, counts[stratum], n)
                .expect("unit runs");
            for (offset, point) in points.into_iter().enumerate() {
                pools[stratum]
                    .insert((counts[stratum] + offset) as u64, point)
                    .expect("fresh index");
            }
            counts[stratum] += n;
        }
        let evidence: Vec<(u64, u64)> = pools
            .iter()
            .zip(&counts)
            .map(|(pool, &count)| {
                let mut critical = 0u64;
                let mut trials = 0u64;
                for (_, point) in pool.iter_below(count as u64) {
                    trials += 1;
                    if TrialOutcome::classify(fault_free, point.accuracy, config.critical_threshold)
                        == TrialOutcome::CriticalSdc
                    {
                        critical += 1;
                    }
                }
                (critical, trials)
            })
            .collect();
        let total: usize = counts.iter().sum();
        let half_width = stratified_half_width(z, &evidence, &weights);
        if (total >= config.min_trials && half_width <= config.epsilon)
            || total >= config.max_trials
        {
            break;
        }
    }
    counts.iter().sum()
}

/// The adaptive-allocation case: trials-to-target under equal vs Neyman
/// allocation, plus thread-count bit-identity of the Neyman engine itself.
/// `speedup` is the trial-budget ratio `equal / neyman` — ≥ 1.333 means the
/// adaptive policy reached the same stratified CI target in ≥25% fewer
/// trials.
fn adaptive_case(smoke: bool) -> (usize, usize, f64, bool) {
    let (net, inputs, targets) = trained_cnn_demo();
    let words = MemoryMap::of_network(&net).total_words() as usize;
    let config = adaptive_config(smoke, words);
    let equal_trials =
        trials_to_stratified_target(AllocationPolicy::Equal, &config, &net, &inputs, &targets);
    let neyman_trials =
        trials_to_stratified_target(AllocationPolicy::Neyman, &config, &net, &inputs, &targets);
    let speedup = equal_trials as f64 / neyman_trials.max(1) as f64;

    // Bit-identity of the adaptive engine across worker counts (serial vs
    // 2 and 4 threads), through the real `run_until` path.
    let neyman_run = |threads: usize| {
        let mut net = net.clone();
        Campaign::new(&mut net, &inputs, &targets)
            .expect("campaign builds")
            .run_until_with_threads(
                &StatCampaignConfig {
                    allocation: AllocationPolicy::Neyman,
                    ..config.clone()
                },
                &TransientBitFlip,
                threads,
            )
            .expect("campaign runs")
    };
    let serial = neyman_run(1);
    let bit_identical = [2, 4].iter().all(|&threads| neyman_run(threads) == serial);
    (equal_trials, neyman_trials, speedup, bit_identical)
}

/// Times one serial CNN campaign per engine (median of `reps`), checks trial
/// bit-identity, measures the adaptive-allocation trial savings, and writes
/// the multi-case comparison to `BENCH_campaign.json` at the workspace root
/// (cases `campaign_throughput` and `campaign_adaptive`, gated separately by
/// `fitact bench-gate --case`).
fn emit_campaign_json(smoke: bool) {
    let (mut net, inputs, targets) = cnn_demo();
    let reps = if smoke { 1 } else { 3 };
    let mut time_engine = |engine: TrialEngine| -> (f64, CampaignResult) {
        let mut seconds = Vec::with_capacity(reps);
        let mut last = None;
        for _ in 0..reps {
            let start = Instant::now();
            let result = run_cnn_campaign(&mut net, &inputs, &targets, engine);
            seconds.push(start.elapsed().as_secs_f64());
            last = Some(result);
        }
        seconds.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        (seconds[seconds.len() / 2], last.expect("reps >= 1"))
    };
    let (full_seconds, full_result) = time_engine(TrialEngine::FullForward);
    let (resumed_seconds, resumed_result) = time_engine(TrialEngine::CheckpointResumed);
    let bit_identical = full_result.accuracies == resumed_result.accuracies
        && full_result.fault_free_accuracy == resumed_result.fault_free_accuracy
        && full_result.total_faults == resumed_result.total_faults;
    assert!(
        bit_identical,
        "engine comparison must be bit-identical before its timing means anything"
    );
    let config = cnn_config();
    let speedup = full_seconds / resumed_seconds.max(1e-12);

    let (equal_trials, neyman_trials, trial_speedup, neyman_identical) = adaptive_case(smoke);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"campaign_throughput\",\n",
            "  \"network\": \"alexnet-tiny (CNN demo)\",\n",
            "  \"smoke\": {smoke},\n",
            "  \"campaign_throughput\": {{\n",
            "    \"case\": \"full_forward_vs_checkpoint_resumed\",\n",
            "    \"eval_samples\": {eval},\n",
            "    \"trials\": {trials},\n",
            "    \"fault_rate\": {rate:e},\n",
            "    \"full_forward_seconds\": {full:.6},\n",
            "    \"checkpoint_resumed_seconds\": {resumed:.6},\n",
            "    \"speedup\": {speedup:.3},\n",
            "    \"bit_identical\": {ident}\n",
            "  }},\n",
            "  \"campaign_adaptive\": {{\n",
            "    \"case\": \"equal_vs_neyman_trials_to_target\",\n",
            "    \"equal_trials\": {equal_trials},\n",
            "    \"neyman_trials\": {neyman_trials},\n",
            "    \"speedup\": {trial_speedup:.3},\n",
            "    \"bit_identical\": {neyman_identical}\n",
            "  }}\n",
            "}}\n"
        ),
        eval = targets.len(),
        trials = config.trials,
        rate = config.fault_rate,
        smoke = smoke,
        full = full_seconds,
        resumed = resumed_seconds,
        speedup = speedup,
        ident = bit_identical,
        equal_trials = equal_trials,
        neyman_trials = neyman_trials,
        trial_speedup = trial_speedup,
        neyman_identical = neyman_identical,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_campaign.json");
    std::fs::write(&path, &json).expect("BENCH_campaign.json is writable");
    println!(
        "campaign_cnn engines: full {full_seconds:.3}s vs resumed {resumed_seconds:.3}s \
         ({speedup:.2}x); adaptive: {equal_trials} equal vs {neyman_trials} neyman trials \
         ({trial_speedup:.2}x) -> {}",
        path.display()
    );
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--test");
    let mut criterion = Criterion::default();
    bench_campaign(&mut criterion);
    bench_cnn_engines(&mut criterion);
    emit_campaign_json(smoke);
}
