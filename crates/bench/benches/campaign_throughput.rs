//! Criterion bench for fault-injection campaign throughput.
//!
//! The Monte-Carlo campaigns behind the paper's Figs. 5–6 run thousands of
//! inject → evaluate → restore trials; this bench measures trials/second of
//! the serial path against the trial-parallel path at the machine's core
//! count, on the same small quantised MLP the campaign tests use. The two
//! paths produce bit-identical results (pinned by
//! `parallel_campaign_matches_serial_bit_for_bit`), so any gap is pure
//! scheduling overhead or speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fitact_faults::{
    quantize_network, Campaign, CampaignConfig, StatCampaignConfig, StratumSpec, TransientBitFlip,
};
use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
use fitact_nn::loss::CrossEntropyLoss;
use fitact_nn::optim::Sgd;
use fitact_nn::Network;
use fitact_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small trained, quantised MLP plus its evaluation set.
fn trained_setup() -> (Network, Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(0);
    let root = Sequential::new()
        .with(Box::new(Linear::new(16, 64, &mut rng)))
        .with(Box::new(ActivationLayer::relu("h", &[64])))
        .with(Box::new(Linear::new(64, 4, &mut rng)));
    let mut net = Network::new("mlp", root);
    let inputs = init::uniform(&[256, 16], -1.0, 1.0, &mut rng);
    let targets: Vec<usize> = (0..256)
        .map(|i| {
            let row = &inputs.as_slice()[i * 16..(i + 1) * 16];
            usize::from(row[0] > row[1]) + 2 * usize::from(row[2] > row[3])
        })
        .collect();
    let loss = CrossEntropyLoss::new();
    let mut opt = Sgd::with_momentum(0.1, 0.9, 0.0);
    for _ in 0..20 {
        net.train_batch(&inputs, &targets, &loss, &mut opt)
            .expect("training step");
    }
    quantize_network(&mut net);
    (net, inputs, targets)
}

fn bench_campaign(c: &mut Criterion) {
    let (mut net, inputs, targets) = trained_setup();
    let config = CampaignConfig {
        fault_rate: 1e-4,
        trials: 64,
        batch_size: 64,
        seed: 42,
    };
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("serial", config.trials), &(), |b, ()| {
        b.iter(|| {
            Campaign::new(&mut net, &inputs, &targets)
                .expect("campaign builds")
                .run_serial(&config)
                .expect("campaign runs")
        });
    });
    group.bench_with_input(
        BenchmarkId::new(format!("parallel_x{cores}"), config.trials),
        &(),
        |b, ()| {
            b.iter(|| {
                Campaign::new(&mut net, &inputs, &targets)
                    .expect("campaign builds")
                    .run_with_threads(&config, cores)
                    .expect("campaign runs")
            });
        },
    );
    // The statistical path: stratified sampling, outcome classification and
    // Wilson-interval early stopping. The comparison against the fixed-count
    // runs above shows what adaptive stopping buys — the trial budget matches,
    // but the campaign quits as soon as the critical-SDC CI is tight.
    let stat_config = StatCampaignConfig {
        fault_rate: 1e-4,
        batch_size: 64,
        seed: 42,
        epsilon: 0.05,
        round_trials: 8,
        min_trials: 16,
        max_trials: config.trials,
        strata: StratumSpec::by_bit_class(),
        ..Default::default()
    };
    group.bench_with_input(
        BenchmarkId::new(format!("run_until_x{cores}"), config.trials),
        &(),
        |b, ()| {
            b.iter(|| {
                Campaign::new(&mut net, &inputs, &targets)
                    .expect("campaign builds")
                    .run_until_with_threads(&stat_config, &TransientBitFlip, cores)
                    .expect("campaign runs")
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
