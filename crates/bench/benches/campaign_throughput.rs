//! Criterion bench for fault-injection campaign throughput.
//!
//! The Monte-Carlo campaigns behind the paper's Figs. 5–6 run thousands of
//! inject → evaluate → restore trials; this bench measures trials/second of
//! the serial path against the trial-parallel path on a small quantised MLP,
//! and — the headline case — the full-forward trial engine against the
//! checkpoint-resumed engine on the CNN demo network (a width-scaled
//! AlexNet), where resumed trials skip the convolutional prefix whenever
//! their faults land in the parameter-heavy late layers. All compared paths
//! produce bit-identical results (pinned by the `checkpoint_identity`
//! suite), so any gap is pure scheduling overhead or speedup.
//!
//! Besides the criterion timings, the bench writes a machine-readable
//! engine comparison to `BENCH_campaign.json` at the workspace root
//! (median-of-3 wall-clock per engine plus the measured speedup), so the
//! campaign-throughput trajectory is tracked across commits. Run with
//! `cargo bench -- --test` for the CI smoke mode: every case executes once,
//! untimed, and the JSON is still emitted (flagged as a smoke run).

use criterion::{BenchmarkId, Criterion};
use fitact_faults::{
    quantize_network, Campaign, CampaignConfig, CampaignResult, StatCampaignConfig, StratumSpec,
    TransientBitFlip, TrialEngine,
};
use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
use fitact_nn::loss::CrossEntropyLoss;
use fitact_nn::models::{alexnet, ModelConfig};
use fitact_nn::optim::Sgd;
use fitact_nn::Network;
use fitact_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// A small trained, quantised MLP plus its evaluation set.
fn trained_setup() -> (Network, Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(0);
    let root = Sequential::new()
        .with(Box::new(Linear::new(16, 64, &mut rng)))
        .with(Box::new(ActivationLayer::relu("h", &[64])))
        .with(Box::new(Linear::new(64, 4, &mut rng)));
    let mut net = Network::new("mlp", root);
    let inputs = init::uniform(&[256, 16], -1.0, 1.0, &mut rng);
    let targets: Vec<usize> = (0..256)
        .map(|i| {
            let row = &inputs.as_slice()[i * 16..(i + 1) * 16];
            usize::from(row[0] > row[1]) + 2 * usize::from(row[2] > row[3])
        })
        .collect();
    let loss = CrossEntropyLoss::new();
    let mut opt = Sgd::with_momentum(0.1, 0.9, 0.0);
    for _ in 0..20 {
        net.train_batch(&inputs, &targets, &loss, &mut opt)
            .expect("training step");
    }
    quantize_network(&mut net);
    (net, inputs, targets)
}

/// The CNN demo: a width-scaled quantised AlexNet on synthetic CIFAR-shaped
/// inputs. Most parameters sit in the late fully-connected layers, so at
/// realistic fault rates most trials resume deep in the network.
fn cnn_demo() -> (Network, Tensor, Vec<usize>) {
    let mut net = alexnet(&ModelConfig::new(10).with_width(0.0626).with_seed(7))
        .expect("alexnet builds at tiny width");
    quantize_network(&mut net);
    let mut rng = StdRng::seed_from_u64(9);
    let inputs = init::uniform(&[64, 3, 32, 32], -1.0, 1.0, &mut rng);
    let targets: Vec<usize> = (0..64).map(|i| i % 10).collect();
    (net, inputs, targets)
}

/// The fixed-count configuration of the engine-comparison case: a paper-scale
/// fault rate (~1.6 expected flips per trial on the tiny AlexNet), so resume
/// depth follows the parameter-mass distribution.
fn cnn_config() -> CampaignConfig {
    CampaignConfig {
        fault_rate: 1e-6,
        trials: 32,
        batch_size: 32,
        seed: 42,
    }
}

fn run_cnn_campaign(
    net: &mut Network,
    inputs: &Tensor,
    targets: &[usize],
    engine: TrialEngine,
) -> CampaignResult {
    Campaign::new(net, inputs, targets)
        .expect("campaign builds")
        .with_engine(engine)
        .run_serial(&cnn_config())
        .expect("campaign runs")
}

fn bench_campaign(c: &mut Criterion) {
    let (mut net, inputs, targets) = trained_setup();
    let config = CampaignConfig {
        fault_rate: 1e-4,
        trials: 64,
        batch_size: 64,
        seed: 42,
    };
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("serial", config.trials), &(), |b, ()| {
        b.iter(|| {
            Campaign::new(&mut net, &inputs, &targets)
                .expect("campaign builds")
                .run_serial(&config)
                .expect("campaign runs")
        });
    });
    group.bench_with_input(
        BenchmarkId::new(format!("parallel_x{cores}"), config.trials),
        &(),
        |b, ()| {
            b.iter(|| {
                Campaign::new(&mut net, &inputs, &targets)
                    .expect("campaign builds")
                    .run_with_threads(&config, cores)
                    .expect("campaign runs")
            });
        },
    );
    // The statistical path: stratified sampling, outcome classification and
    // Wilson-interval early stopping. The comparison against the fixed-count
    // runs above shows what adaptive stopping buys — the trial budget matches,
    // but the campaign quits as soon as the critical-SDC CI is tight.
    let stat_config = StatCampaignConfig {
        fault_rate: 1e-4,
        batch_size: 64,
        seed: 42,
        epsilon: 0.05,
        round_trials: 8,
        min_trials: 16,
        max_trials: config.trials,
        strata: StratumSpec::by_bit_class(),
        ..Default::default()
    };
    group.bench_with_input(
        BenchmarkId::new(format!("run_until_x{cores}"), config.trials),
        &(),
        |b, ()| {
            b.iter(|| {
                Campaign::new(&mut net, &inputs, &targets)
                    .expect("campaign builds")
                    .run_until_with_threads(&stat_config, &TransientBitFlip, cores)
                    .expect("campaign runs")
            });
        },
    );
    group.finish();
}

/// Full-forward vs checkpoint-resumed trial engines on the CNN demo.
fn bench_cnn_engines(c: &mut Criterion) {
    let (mut net, inputs, targets) = cnn_demo();
    let mut group = c.benchmark_group("campaign_cnn");
    group.sample_size(10);
    for (label, engine) in [
        ("full_forward", TrialEngine::FullForward),
        ("checkpoint_resumed", TrialEngine::CheckpointResumed),
    ] {
        group.bench_with_input(
            BenchmarkId::new(label, cnn_config().trials),
            &(),
            |b, ()| {
                b.iter(|| run_cnn_campaign(&mut net, &inputs, &targets, engine));
            },
        );
    }
    group.finish();
}

/// Times one serial CNN campaign per engine (median of `reps`), checks trial
/// bit-identity, and writes the comparison to `BENCH_campaign.json` at the
/// workspace root.
fn emit_campaign_json(smoke: bool) {
    let (mut net, inputs, targets) = cnn_demo();
    let reps = if smoke { 1 } else { 3 };
    let mut time_engine = |engine: TrialEngine| -> (f64, CampaignResult) {
        let mut seconds = Vec::with_capacity(reps);
        let mut last = None;
        for _ in 0..reps {
            let start = Instant::now();
            let result = run_cnn_campaign(&mut net, &inputs, &targets, engine);
            seconds.push(start.elapsed().as_secs_f64());
            last = Some(result);
        }
        seconds.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        (seconds[seconds.len() / 2], last.expect("reps >= 1"))
    };
    let (full_seconds, full_result) = time_engine(TrialEngine::FullForward);
    let (resumed_seconds, resumed_result) = time_engine(TrialEngine::CheckpointResumed);
    let bit_identical = full_result.accuracies == resumed_result.accuracies
        && full_result.fault_free_accuracy == resumed_result.fault_free_accuracy
        && full_result.total_faults == resumed_result.total_faults;
    assert!(
        bit_identical,
        "engine comparison must be bit-identical before its timing means anything"
    );
    let config = cnn_config();
    let speedup = full_seconds / resumed_seconds.max(1e-12);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"campaign_throughput\",\n",
            "  \"case\": \"full_forward_vs_checkpoint_resumed\",\n",
            "  \"network\": \"alexnet-tiny (CNN demo)\",\n",
            "  \"eval_samples\": {eval},\n",
            "  \"trials\": {trials},\n",
            "  \"fault_rate\": {rate:e},\n",
            "  \"smoke\": {smoke},\n",
            "  \"full_forward_seconds\": {full:.6},\n",
            "  \"checkpoint_resumed_seconds\": {resumed:.6},\n",
            "  \"speedup\": {speedup:.3},\n",
            "  \"bit_identical\": {ident}\n",
            "}}\n"
        ),
        eval = targets.len(),
        trials = config.trials,
        rate = config.fault_rate,
        smoke = smoke,
        full = full_seconds,
        resumed = resumed_seconds,
        speedup = speedup,
        ident = bit_identical,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_campaign.json");
    std::fs::write(&path, &json).expect("BENCH_campaign.json is writable");
    println!(
        "campaign_cnn engines: full {full_seconds:.3}s vs resumed {resumed_seconds:.3}s \
         ({speedup:.2}x) -> {}",
        path.display()
    );
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--test");
    let mut criterion = Criterion::default();
    bench_campaign(&mut criterion);
    bench_cnn_engines(&mut criterion);
    emit_campaign_json(smoke);
}
