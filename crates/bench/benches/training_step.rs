//! Criterion bench behind the Section VI-C1 training-overhead numbers: one
//! conventional-training step (forward + backward + SGD) versus one
//! post-training step (forward + backward + Adam on the bounds only) for a
//! small VGG16.

use criterion::{criterion_group, criterion_main, Criterion};
use fitact::{FitAct, FitActConfig};
use fitact_data::{materialize, SyntheticCifar};
use fitact_nn::loss::CrossEntropyLoss;
use fitact_nn::models::{vgg16, ModelConfig};
use fitact_nn::optim::{Adam, Optimizer, Sgd};
use fitact_nn::Mode;
use fitact_tensor::Tensor;

fn bench_training_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_step");
    group.sample_size(10);

    let dataset = SyntheticCifar::train(10, 16, 0);
    let (inputs, labels) = materialize(&dataset).expect("synthetic dataset materialises");
    let batch: Tensor = inputs;
    let loss = CrossEntropyLoss::new();

    // Stage 1: conventional training step.
    let config = ModelConfig::new(10).with_width(0.0626).with_seed(1);
    let mut network = vgg16(&config).expect("vgg16 builds");
    let mut sgd = Sgd::with_momentum(0.05, 0.9, 5e-4);
    group.bench_function("conventional_sgd_step", |b| {
        b.iter(|| {
            network
                .train_batch(&batch, &labels, &loss, &mut sgd)
                .expect("training step succeeds")
        });
    });

    // Stage 2: bound post-training step.
    let fitact = FitAct::new(FitActConfig {
        batch_size: 16,
        ..Default::default()
    });
    let profile = fitact
        .calibrate(&mut network, &batch)
        .expect("calibration succeeds");
    fitact
        .modify(&mut network, &profile)
        .expect("modification succeeds");
    let mut adam = Adam::new(0.02);
    group.bench_function("post_training_adam_step", |b| {
        b.iter(|| {
            network.zero_grad();
            let logits = network.forward(&batch, Mode::Eval).expect("forward");
            let (_, grad) = loss.forward(&logits, &labels).expect("loss");
            network.backward(&grad).expect("backward");
            let mut params = network.params_mut();
            adam.step(&mut params);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_training_steps);
criterion_main!(benches);
