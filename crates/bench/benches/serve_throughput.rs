//! Criterion bench for serving throughput: micro-batched forward passes
//! against per-request forwards on a serving-representative MLP.
//!
//! This is the compute-side case for `fitact serve`'s dynamic batching: a
//! single-row forward pays the packed matmul's panel-packing cost for one
//! row of useful work, while a coalesced batch amortises it across every
//! row — with **bit-identical** per-row results, which the bench asserts
//! before timing means anything (the same invariance
//! `crates/nn/tests/batch_invariance.rs` pins).
//!
//! All timed forwards run inside `matmul::serial_scope`, exactly like a
//! server worker thread — so the measured speedup is the *per-worker* gain
//! (packing amortisation and cache reuse), not the kernel's internal
//! multi-core fan-out, which serving workers deliberately disable.
//!
//! Besides the criterion timings, the bench writes a machine-readable
//! comparison to `BENCH_serve.json` at the workspace root: per-sample
//! wall-clock for the per-request path and for batch sizes 2/8/32, plus the
//! speedup of each batched path — and a **connection-scaling** case that
//! boots the real server and drives 1 / 64 / 512 concurrent keep-alive
//! connections through the event-driven transport, asserting every request
//! is served without error (the acceptance bar for the connection layer).
//! A third case, `precision_f16`, forwards a wide MLP whose weights dwarf
//! the cache — the bandwidth-bound regime — at the server's batch-32
//! coalescing ceiling in f32 and in native f16, recording rows/sec for
//! each; the acceptance bar for the reduced-precision path is ≥ 1.5× f16
//! over f32 (half the streamed weight bytes).
//! Run with `cargo bench -- --test` for the CI smoke mode (one untimed pass
//! per case, JSON still emitted and flagged as a smoke run).

use criterion::{BenchmarkId, Criterion};
use fitact_io::ModelArtifact;
use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
use fitact_nn::{copy_batch_into, Mode, Network};
use fitact_serve::{ServeConfig, Server};
use fitact_tensor::matmul::serial_scope;
use fitact_tensor::{init, Precision, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A serving-representative MLP: hidden products big enough that the
/// packed-kernel economics (the thing batching amortises) are visible.
fn serving_mlp() -> Network {
    let mut rng = StdRng::seed_from_u64(123);
    Network::new(
        "serving-mlp",
        Sequential::new()
            .with(Box::new(Linear::new(256, 512, &mut rng)))
            .with(Box::new(ActivationLayer::relu("h1", &[512])))
            .with(Box::new(Linear::new(512, 512, &mut rng)))
            .with(Box::new(ActivationLayer::relu("h2", &[512])))
            .with(Box::new(Linear::new(512, 10, &mut rng))),
    )
}

const SAMPLES: usize = 64;

fn eval_inputs() -> Tensor {
    let mut rng = StdRng::seed_from_u64(321);
    init::uniform(&[SAMPLES, 256], -1.0, 1.0, &mut rng)
}

/// Forwards the whole eval set in batches of `batch`, returning every
/// output row (flattened) for the bit-identity check.
fn forward_all(net: &mut Network, inputs: &Tensor, batch: usize, staging: &mut Tensor) -> Vec<f32> {
    let mut out = Vec::with_capacity(SAMPLES * 10);
    let mut start = 0;
    while start < SAMPLES {
        let end = (start + batch).min(SAMPLES);
        copy_batch_into(inputs, start, end, staging).expect("slice");
        let logits = net.forward(staging, Mode::Eval).expect("forward");
        out.extend_from_slice(logits.as_slice());
        start = end;
    }
    out
}

fn bench_serve(c: &mut Criterion) {
    let mut net = serving_mlp();
    let inputs = eval_inputs();
    let mut staging = Tensor::default();
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    for batch in [1usize, 2, 8, 32] {
        group.bench_with_input(BenchmarkId::new("forward", batch), &batch, |b, &batch| {
            b.iter(|| serial_scope(|| forward_all(&mut net, &inputs, batch, &mut staging)));
        });
    }
    group.finish();
}

/// Times each batch size (median of `reps` passes over the eval set),
/// asserts per-row bit-identity against the per-request path, and returns
/// the `micro_batching` JSON object for `BENCH_serve.json`.
fn emit_serve_json(smoke: bool) -> String {
    let mut net = serving_mlp();
    let inputs = eval_inputs();
    let mut staging = Tensor::default();
    let reps = if smoke { 1 } else { 5 };
    let mut time_batch = |batch: usize| -> (f64, Vec<f32>) {
        serial_scope(|| {
            // One warm-up pass so every timed pass runs on warm workspaces
            // and pack buffers (the server's steady state).
            let rows = forward_all(&mut net, &inputs, batch, &mut staging);
            let mut seconds = Vec::with_capacity(reps);
            for _ in 0..reps {
                let start = Instant::now();
                let timed = forward_all(&mut net, &inputs, batch, &mut staging);
                seconds.push(start.elapsed().as_secs_f64());
                assert_eq!(timed, rows, "forward passes are deterministic");
            }
            seconds.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
            (seconds[seconds.len() / 2], rows)
        })
    };
    let (per_request_s, per_request_rows) = time_batch(1);
    let batched: Vec<(usize, f64)> = [2usize, 8, 32]
        .into_iter()
        .map(|batch| {
            let (seconds, rows) = time_batch(batch);
            assert_eq!(
                rows, per_request_rows,
                "batch={batch} must be bit-identical to per-request forwards"
            );
            (batch, seconds)
        })
        .collect();
    let per_sample_us = |s: f64| 1e6 * s / SAMPLES as f64;
    let mut batch_entries = String::new();
    for (batch, seconds) in &batched {
        batch_entries.push_str(&format!(
            "    \"{batch}\": {{ \"us_per_sample\": {us:.3}, \"speedup\": {speedup:.3} }},\n",
            us = per_sample_us(*seconds),
            speedup = per_request_s / seconds.max(1e-12),
        ));
    }
    let json = format!(
        concat!(
            "  \"micro_batching\": {{\n",
            "    \"case\": \"micro_batched_vs_per_request_forward\",\n",
            "    \"network\": \"serving-mlp (256-512-512-10)\",\n",
            "    \"eval_samples\": {samples},\n",
            "    \"per_request_us_per_sample\": {per_request:.3},\n",
            "    \"batched\": {{\n",
            "{entries}",
            "    \"_\": null\n",
            "    }},\n",
            "    \"speedup_at_8\": {speedup8:.3},\n",
            "    \"bit_identical\": true\n",
            "  }}"
        ),
        samples = SAMPLES,
        per_request = per_sample_us(per_request_s),
        entries = batch_entries,
        speedup8 = per_request_s
            / batched
                .iter()
                .find(|(b, _)| *b == 8)
                .map(|(_, s)| *s)
                .expect("batch 8 measured")
                .max(1e-12),
    );
    println!(
        "serve_throughput: per-request {pr:.1} us/sample, batch 8 {b8:.1} us/sample",
        pr = per_sample_us(per_request_s),
        b8 = per_sample_us(batched.iter().find(|(b, _)| *b == 8).expect("measured").1),
    );
    json
}

/// The bandwidth-bound precision case: a wide MLP whose ~100 MB of f32
/// weights (50 MB as f16) are streamed from memory every forward, timed at
/// the batch-32 coalescing ceiling in f32 and in native f16 words. With
/// the weight stream the bottleneck, halving the bytes is the win the
/// reduced-precision path exists for; the returned `precision_f16` JSON
/// object records rows/sec for both element types and their ratio.
fn emit_precision_json(smoke: bool) -> String {
    const INPUT: usize = 2048;
    const HIDDEN: usize = 4096;
    const BATCH: usize = 32;
    const ROWS: usize = 64;
    let wide_mlp = || {
        let mut rng = StdRng::seed_from_u64(99);
        Network::new(
            "wide-mlp",
            Sequential::new()
                .with(Box::new(Linear::new(INPUT, HIDDEN, &mut rng)))
                .with(Box::new(ActivationLayer::relu("h1", &[HIDDEN])))
                .with(Box::new(Linear::new(HIDDEN, HIDDEN, &mut rng)))
                .with(Box::new(ActivationLayer::relu("h2", &[HIDDEN])))
                .with(Box::new(Linear::new(HIDDEN, 10, &mut rng))),
        )
    };
    let inputs = {
        let mut rng = StdRng::seed_from_u64(98);
        init::uniform(&[ROWS, INPUT], -1.0, 1.0, &mut rng)
    };
    let reps = if smoke { 1 } else { 5 };
    let time_net = |net: &mut Network| -> f64 {
        let mut staging = Tensor::default();
        serial_scope(|| {
            let mut all_rows = || {
                let mut out = Vec::with_capacity(ROWS * 10);
                let mut start = 0;
                while start < ROWS {
                    let end = (start + BATCH).min(ROWS);
                    copy_batch_into(&inputs, start, end, &mut staging).expect("slice");
                    let logits = net.forward(&staging, Mode::Eval).expect("forward");
                    out.extend_from_slice(logits.as_slice());
                    start = end;
                }
                out
            };
            let rows = all_rows(); // warm-up
            let mut seconds = Vec::with_capacity(reps);
            for _ in 0..reps {
                let start = Instant::now();
                let timed = all_rows();
                seconds.push(start.elapsed().as_secs_f64());
                assert_eq!(timed, rows, "forward passes are deterministic");
            }
            seconds.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
            seconds[seconds.len() / 2]
        })
    };
    // Timed sequentially, each network dropped before the next is built, so
    // the ~150 MB of weights never resides twice.
    let f32_s = time_net(&mut wide_mlp());
    let f16_s = {
        let mut net = wide_mlp();
        net.quantize_to(Precision::F16);
        assert_eq!(net.precision(), Precision::F16);
        time_net(&mut net)
    };
    let rows_per_s = |s: f64| ROWS as f64 / s.max(1e-12);
    let speedup = f32_s / f16_s.max(1e-12);
    println!(
        "serve_throughput: bandwidth-bound batch-{BATCH} f32 {f32:.0} rows/s, f16 {f16:.0} rows/s ({speedup:.2}x)",
        f32 = rows_per_s(f32_s),
        f16 = rows_per_s(f16_s),
    );
    format!(
        concat!(
            "  \"precision_f16\": {{\n",
            "    \"case\": \"f16_vs_f32_bandwidth_bound_batch32\",\n",
            "    \"network\": \"wide-mlp ({input}-{hidden}-{hidden}-10)\",\n",
            "    \"batch\": {batch},\n",
            "    \"eval_samples\": {rows},\n",
            "    \"f32_rows_per_s\": {f32:.1},\n",
            "    \"f16_rows_per_s\": {f16:.1},\n",
            "    \"f16_speedup\": {speedup:.3}\n",
            "  }}"
        ),
        input = INPUT,
        hidden = HIDDEN,
        batch = BATCH,
        rows = ROWS,
        f32 = rows_per_s(f32_s),
        f16 = rows_per_s(f16_s),
        speedup = speedup,
    )
}

/// One keep-alive client: `requests` predicts on a single connection,
/// panicking on any non-200 or framing error. Returns the rows served.
fn keepalive_client(addr: SocketAddr, requests: usize) -> usize {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let body = r#"{"input": [0.5, -0.25, 0.125, 1.0]}"#;
    let request = format!(
        "POST /predict HTTP/1.1\r\nHost: b\r\nConnection: keep-alive\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    for _ in 0..requests {
        writer.write_all(request.as_bytes()).expect("write request");
        let mut status_line = String::new();
        reader.read_line(&mut status_line).expect("status line");
        assert!(
            status_line.starts_with("HTTP/1.1 200"),
            "every benched request must be served: {status_line:?}"
        );
        let mut length = 0usize;
        loop {
            let mut header = String::new();
            reader.read_line(&mut header).expect("header");
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some(value) = header
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .map(str::to_owned)
            {
                length = value.parse().expect("content length");
            }
        }
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body).expect("framed body");
    }
    requests
}

/// Drives `conns` concurrent keep-alive connections, each issuing
/// `per_conn` predicts, against one server. Returns (seconds, rows).
fn drive_connections(addr: SocketAddr, conns: usize, per_conn: usize) -> (f64, usize) {
    let start = Instant::now();
    let clients: Vec<_> = (0..conns)
        .map(|_| std::thread::spawn(move || keepalive_client(addr, per_conn)))
        .collect();
    let rows: usize = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .sum();
    (start.elapsed().as_secs_f64(), rows)
}

/// The connection-scaling case: the same tiny model served over 1 / 64 /
/// 512 concurrent keep-alive connections. Every request must succeed —
/// the 512-connection row is the acceptance bar for the event-driven
/// transport — and the returned `connection_scaling` JSON object records
/// requests/second per connection count.
fn emit_connection_scaling_json(smoke: bool) -> String {
    let mut rng = StdRng::seed_from_u64(124);
    let net = Network::new(
        "bench-mlp",
        Sequential::new()
            .with(Box::new(Linear::new(4, 32, &mut rng)))
            .with(Box::new(ActivationLayer::relu("h", &[32])))
            .with(Box::new(Linear::new(32, 3, &mut rng))),
    );
    let dir = std::env::temp_dir().join(format!("fitact_bench_conns_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bench.fitact");
    ModelArtifact::capture(&net)
        .expect("capture")
        .save(&path)
        .expect("save artifact");
    let server = Server::start(
        &path,
        &ServeConfig {
            max_batch: 32,
            max_wait: Duration::from_millis(1),
            workers: 2,
            max_connections: 1024, // room for the 512-connection case
            max_queue: 4096,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();
    let per_conn = if smoke { 2 } else { 8 };
    let mut entries = String::new();
    for conns in [1usize, 64, 512] {
        let (seconds, rows) = drive_connections(addr, conns, per_conn);
        assert_eq!(rows, conns * per_conn, "every request served, no errors");
        entries.push_str(&format!(
            "    \"{conns}\": {{ \"requests\": {rows}, \"seconds\": {seconds:.4}, \"requests_per_s\": {rps:.1} }},\n",
            rps = rows as f64 / seconds.max(1e-12),
        ));
        println!(
            "serve_throughput: {conns} keep-alive conns x {per_conn} requests in {seconds:.3}s, all served"
        );
    }
    server.shutdown();
    let metrics = server.join();
    assert_eq!(metrics.errors_total, 0, "no server-side errors");
    std::fs::remove_dir_all(&dir).ok();
    format!(
        concat!(
            "  \"connection_scaling\": {{\n",
            "    \"case\": \"keepalive_connection_scaling\",\n",
            "    \"network\": \"bench-mlp (4-32-3)\",\n",
            "    \"requests_per_connection\": {per_conn},\n",
            "    \"connections\": {{\n",
            "{entries}",
            "    \"_\": null\n",
            "    }},\n",
            "    \"all_requests_served\": true\n",
            "  }}"
        ),
        per_conn = per_conn,
        entries = entries,
    )
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--test");
    let mut criterion = Criterion::default();
    bench_serve(&mut criterion);
    let micro_batching = emit_serve_json(smoke);
    let precision = emit_precision_json(smoke);
    let connection_scaling = emit_connection_scaling_json(smoke);
    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"smoke\": {smoke},\n{micro_batching},\n{precision},\n{connection_scaling}\n}}\n"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve.json");
    std::fs::write(&path, &json).expect("BENCH_serve.json is writable");
    println!("serve_throughput -> {}", path.display());
}
