//! Procedurally generated CIFAR-like image classification data.

use crate::{DataError, Dataset};
use fitact_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Image side length (matches CIFAR).
pub const IMAGE_SIZE: usize = 32;
/// Image channels (RGB).
pub const IMAGE_CHANNELS: usize = 3;

/// Configuration of a [`SyntheticCifar`] dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticCifarConfig {
    /// Number of classes (10 for the CIFAR-10 stand-in, 100 for CIFAR-100).
    pub classes: usize,
    /// Number of samples in the split.
    pub samples: usize,
    /// Master seed; train and test splits should use different seeds.
    pub seed: u64,
    /// Standard deviation of the per-pixel Gaussian noise.
    pub noise: f32,
}

impl Default for SyntheticCifarConfig {
    fn default() -> Self {
        SyntheticCifarConfig {
            classes: 10,
            samples: 1024,
            seed: 0,
            noise: 0.15,
        }
    }
}

/// Class-conditional synthetic 3×32×32 images.
///
/// Each class is defined by a deterministic "prototype": a colour bias plus a
/// small set of oriented sinusoidal gratings with class-specific frequencies
/// and phases. Each sample perturbs the prototype with a random phase jitter
/// and additive Gaussian noise. The task is therefore learnable by a
/// convolutional network (it has spatial structure), non-trivial (classes
/// overlap under noise), and fully reproducible from a single seed — which is
/// exactly what the fault-injection experiments need.
///
/// Images are generated lazily from `(seed, class, index)` so the dataset has
/// O(1) memory regardless of length.
#[derive(Debug, Clone)]
pub struct SyntheticCifar {
    config: SyntheticCifarConfig,
    prototypes: Vec<ClassPrototype>,
    /// Offset mixed into the per-sample random stream so that train and test
    /// splits built from the same seed share class prototypes but not images.
    index_offset: u64,
}

/// The deterministic generative description of one class.
#[derive(Debug, Clone)]
struct ClassPrototype {
    /// Per-channel colour bias.
    color: [f32; IMAGE_CHANNELS],
    /// Oriented gratings: (frequency_x, frequency_y, phase, amplitude, channel weight).
    gratings: Vec<(f32, f32, f32, f32, [f32; IMAGE_CHANNELS])>,
}

impl SyntheticCifar {
    /// Creates a dataset from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`; use [`SyntheticCifar::try_new`] for a
    /// fallible constructor.
    pub fn new(config: SyntheticCifarConfig) -> Self {
        Self::try_new(config).expect("invalid SyntheticCifarConfig")
    }

    /// Creates a dataset from its configuration, validating it first.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if `classes == 0` or
    /// `noise < 0.0`.
    pub fn try_new(config: SyntheticCifarConfig) -> Result<Self, DataError> {
        if config.classes == 0 {
            return Err(DataError::InvalidConfig(
                "classes must be at least 1".into(),
            ));
        }
        if config.noise < 0.0 {
            return Err(DataError::InvalidConfig(
                "noise must be non-negative".into(),
            ));
        }
        let prototypes = (0..config.classes)
            .map(|c| ClassPrototype::generate(config.seed, c))
            .collect();
        Ok(SyntheticCifar {
            config,
            prototypes,
            index_offset: 0,
        })
    }

    /// Convenience constructor for the 10-class training split used in
    /// experiments.
    pub fn train(classes: usize, samples: usize, seed: u64) -> Self {
        SyntheticCifar::new(SyntheticCifarConfig {
            classes,
            samples,
            seed,
            noise: 0.15,
        })
    }

    /// Convenience constructor for a held-out test split: same prototypes
    /// (same master seed), different sample noise stream.
    pub fn test(classes: usize, samples: usize, seed: u64) -> Self {
        SyntheticCifar::new(SyntheticCifarConfig {
            classes,
            samples,
            // Prototypes depend only on `seed`, so the test split shares them;
            // the per-sample stream is offset below via the index hash.
            seed,
            noise: 0.15,
        })
        .with_index_offset(1 << 40)
    }

    /// Offsets the per-sample random stream (used to build disjoint splits
    /// that share class prototypes).
    #[must_use]
    fn with_index_offset(mut self, offset: u64) -> Self {
        self.index_offset = offset;
        self
    }

    /// The dataset configuration.
    pub fn config(&self) -> &SyntheticCifarConfig {
        &self.config
    }

    /// The class label of sample `index` (labels cycle through the classes so
    /// every split is balanced).
    pub fn label_of(&self, index: usize) -> usize {
        index % self.config.classes
    }

    fn sample_rng(&self, index: usize) -> StdRng {
        // Mix the master seed, the index and the split offset into a
        // per-sample seed with SplitMix64-style finalisation.
        let mut z = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index as u64)
            .wrapping_add(self.index_offset);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        StdRng::seed_from_u64(z ^ (z >> 31))
    }
}

impl Dataset for SyntheticCifar {
    fn len(&self) -> usize {
        self.config.samples
    }

    fn num_classes(&self) -> usize {
        self.config.classes
    }

    fn input_shape(&self) -> Vec<usize> {
        vec![IMAGE_CHANNELS, IMAGE_SIZE, IMAGE_SIZE]
    }

    fn sample(&self, index: usize) -> Result<(Tensor, usize), DataError> {
        if index >= self.config.samples {
            return Err(DataError::IndexOutOfRange {
                index,
                len: self.config.samples,
            });
        }
        let label = self.label_of(index);
        let prototype = &self.prototypes[label];
        let mut rng = self.sample_rng(index);
        let jitter: f32 = rng.gen_range(-0.5..0.5);
        let mut data = vec![0.0f32; IMAGE_CHANNELS * IMAGE_SIZE * IMAGE_SIZE];
        for ch in 0..IMAGE_CHANNELS {
            for y in 0..IMAGE_SIZE {
                for x in 0..IMAGE_SIZE {
                    let mut v = prototype.color[ch];
                    for (fx, fy, phase, amplitude, weights) in &prototype.gratings {
                        let arg = fx * x as f32 + fy * y as f32 + phase + jitter;
                        v += amplitude * weights[ch] * arg.sin();
                    }
                    data[(ch * IMAGE_SIZE + y) * IMAGE_SIZE + x] = v;
                }
            }
        }
        if self.config.noise > 0.0 {
            for v in &mut data {
                // Cheap approximately-normal noise (Irwin–Hall with n = 4).
                let n: f32 = (0..4).map(|_| rng.gen_range(-0.5f32..0.5)).sum();
                *v += self.config.noise * n;
            }
        }
        let image = Tensor::from_vec(data, &[IMAGE_CHANNELS, IMAGE_SIZE, IMAGE_SIZE])
            .expect("image buffer matches image shape");
        Ok((image, label))
    }
}

impl ClassPrototype {
    fn generate(seed: u64, class: usize) -> Self {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (class as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        let color = [
            rng.gen_range(-0.6..0.6),
            rng.gen_range(-0.6..0.6),
            rng.gen_range(-0.6..0.6),
        ];
        let num_gratings = rng.gen_range(2..=3);
        let gratings = (0..num_gratings)
            .map(|_| {
                (
                    rng.gen_range(0.2..1.2),
                    rng.gen_range(0.2..1.2),
                    rng.gen_range(0.0..std::f32::consts::TAU),
                    rng.gen_range(0.3..0.7),
                    [
                        rng.gen_range(0.2..1.0),
                        rng.gen_range(0.2..1.0),
                        rng.gen_range(0.2..1.0),
                    ],
                )
            })
            .collect();
        ClassPrototype { color, gratings }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configuration_validation() {
        assert!(SyntheticCifar::try_new(SyntheticCifarConfig {
            classes: 0,
            ..Default::default()
        })
        .is_err());
        assert!(SyntheticCifar::try_new(SyntheticCifarConfig {
            noise: -1.0,
            ..Default::default()
        })
        .is_err());
        assert!(SyntheticCifar::try_new(SyntheticCifarConfig::default()).is_ok());
    }

    #[test]
    fn samples_have_cifar_shape_and_valid_labels() {
        let ds = SyntheticCifar::train(10, 20, 1);
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.num_classes(), 10);
        assert_eq!(ds.input_shape(), vec![3, 32, 32]);
        for i in 0..ds.len() {
            let (img, label) = ds.sample(i).unwrap();
            assert_eq!(img.dims(), &[3, 32, 32]);
            assert!(label < 10);
            assert!(img.is_finite());
        }
    }

    #[test]
    fn out_of_range_index_errors() {
        let ds = SyntheticCifar::train(10, 4, 0);
        assert!(ds.sample(4).is_err());
        assert!(!ds.is_empty());
    }

    #[test]
    fn labels_are_balanced() {
        let ds = SyntheticCifar::train(10, 100, 2);
        let mut counts = [0usize; 10];
        for i in 0..100 {
            counts[ds.label_of(i)] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticCifar::train(10, 8, 3);
        let b = SyntheticCifar::train(10, 8, 3);
        for i in 0..8 {
            assert_eq!(a.sample(i).unwrap().0, b.sample(i).unwrap().0);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticCifar::train(10, 4, 3);
        let b = SyntheticCifar::train(10, 4, 4);
        assert_ne!(a.sample(0).unwrap().0, b.sample(0).unwrap().0);
    }

    #[test]
    fn train_and_test_splits_share_prototypes_but_not_samples() {
        let train = SyntheticCifar::train(10, 16, 5);
        let test = SyntheticCifar::test(10, 16, 5);
        // Same class structure (prototype colours equal) …
        assert_eq!(train.prototypes[0].color, test.prototypes[0].color);
        // … but different concrete images for the same index.
        assert_ne!(train.sample(0).unwrap().0, test.sample(0).unwrap().0);
        // Labels still line up because both cycle through classes.
        assert_eq!(train.sample(3).unwrap().1, test.sample(3).unwrap().1);
    }

    #[test]
    fn same_class_samples_are_more_similar_than_different_class() {
        // Sanity check that the task is learnable: the average distance
        // between two samples of the same class should be smaller than
        // between samples of different classes.
        let ds = SyntheticCifar::train(10, 40, 7);
        let dist =
            |a: &Tensor, b: &Tensor| -> f32 { a.sub(b).unwrap().sq_norm() / a.numel() as f32 };
        let (x0a, _) = ds.sample(0).unwrap(); // class 0
        let (x0b, _) = ds.sample(10).unwrap(); // class 0 again
        let (x1, _) = ds.sample(1).unwrap(); // class 1
        assert!(dist(&x0a, &x0b) < dist(&x0a, &x1));
    }

    #[test]
    fn pixel_values_are_in_a_sane_range() {
        let ds = SyntheticCifar::train(10, 10, 9);
        for i in 0..10 {
            let (img, _) = ds.sample(i).unwrap();
            assert!(img.max() < 5.0);
            assert!(img.min() > -5.0);
        }
    }
}
