//! Loader for the real CIFAR-10 / CIFAR-100 binary files.
//!
//! The offline reproduction uses [`crate::SyntheticCifar`], but when the
//! original binary files are available on disk (`data_batch_*.bin`,
//! `test_batch.bin` for CIFAR-10; `train.bin`, `test.bin` for CIFAR-100) this
//! loader reads them so the experiments can be re-run against the real data
//! without code changes.

use crate::{DataError, Dataset, DatasetKind};
use fitact_tensor::Tensor;
use std::fs;
use std::path::Path;

/// Image side length of CIFAR images.
const IMAGE_SIZE: usize = 32;
/// Number of channels.
const IMAGE_CHANNELS: usize = 3;
/// Bytes of pixel data per record.
const PIXEL_BYTES: usize = IMAGE_CHANNELS * IMAGE_SIZE * IMAGE_SIZE;

/// Per-channel normalisation mean used when decoding (standard CIFAR values).
const MEAN: [f32; 3] = [0.4914, 0.4822, 0.4465];
/// Per-channel normalisation standard deviation.
const STD: [f32; 3] = [0.2470, 0.2435, 0.2616];

/// A CIFAR-10 or CIFAR-100 split loaded from the original binary format.
#[derive(Debug, Clone)]
pub struct CifarBinary {
    kind: DatasetKind,
    images: Vec<u8>,
    labels: Vec<u8>,
}

impl CifarBinary {
    /// Loads one or more CIFAR binary files and concatenates their records.
    ///
    /// * CIFAR-10 records are `1 + 3072` bytes (label, pixels).
    /// * CIFAR-100 records are `2 + 3072` bytes (coarse label, fine label,
    ///   pixels); the fine label is used.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Io`] if a file cannot be read and
    /// [`DataError::Malformed`] if a file size is not a multiple of the record
    /// size.
    pub fn load<P: AsRef<Path>>(kind: DatasetKind, files: &[P]) -> Result<Self, DataError> {
        let record = Self::record_size(kind);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for file in files {
            let bytes = fs::read(file)?;
            if bytes.is_empty() || bytes.len() % record != 0 {
                return Err(DataError::Malformed(format!(
                    "{} has {} bytes, not a multiple of the {record}-byte record",
                    file.as_ref().display(),
                    bytes.len()
                )));
            }
            for chunk in bytes.chunks_exact(record) {
                let label = match kind {
                    DatasetKind::Cifar10 => chunk[0],
                    DatasetKind::Cifar100 => chunk[1],
                };
                if usize::from(label) >= kind.classes() {
                    return Err(DataError::Malformed(format!(
                        "label {label} out of range for {kind}"
                    )));
                }
                labels.push(label);
                images.extend_from_slice(&chunk[record - PIXEL_BYTES..]);
            }
        }
        Ok(CifarBinary {
            kind,
            images,
            labels,
        })
    }

    /// Bytes per record in the binary format.
    fn record_size(kind: DatasetKind) -> usize {
        match kind {
            DatasetKind::Cifar10 => 1 + PIXEL_BYTES,
            DatasetKind::Cifar100 => 2 + PIXEL_BYTES,
        }
    }

    /// Which dataset family this split belongs to.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }
}

impl Dataset for CifarBinary {
    fn len(&self) -> usize {
        self.labels.len()
    }

    fn num_classes(&self) -> usize {
        self.kind.classes()
    }

    fn input_shape(&self) -> Vec<usize> {
        vec![IMAGE_CHANNELS, IMAGE_SIZE, IMAGE_SIZE]
    }

    fn sample(&self, index: usize) -> Result<(Tensor, usize), DataError> {
        if index >= self.labels.len() {
            return Err(DataError::IndexOutOfRange {
                index,
                len: self.labels.len(),
            });
        }
        let raw = &self.images[index * PIXEL_BYTES..(index + 1) * PIXEL_BYTES];
        let plane = IMAGE_SIZE * IMAGE_SIZE;
        let mut data = vec![0.0f32; PIXEL_BYTES];
        for ch in 0..IMAGE_CHANNELS {
            for p in 0..plane {
                let v = f32::from(raw[ch * plane + p]) / 255.0;
                data[ch * plane + p] = (v - MEAN[ch]) / STD[ch];
            }
        }
        let image = Tensor::from_vec(data, &[IMAGE_CHANNELS, IMAGE_SIZE, IMAGE_SIZE])
            .expect("pixel buffer matches image shape");
        Ok((image, usize::from(self.labels[index])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_temp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        let mut f = fs::File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    fn fake_cifar10_record(label: u8, fill: u8) -> Vec<u8> {
        let mut rec = vec![label];
        rec.extend(std::iter::repeat_n(fill, PIXEL_BYTES));
        rec
    }

    #[test]
    fn loads_cifar10_records() {
        let mut bytes = fake_cifar10_record(3, 128);
        bytes.extend(fake_cifar10_record(7, 255));
        let path = write_temp("fitact_test_cifar10.bin", &bytes);
        let ds = CifarBinary::load(DatasetKind::Cifar10, &[&path]).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.kind(), DatasetKind::Cifar10);
        assert_eq!(ds.num_classes(), 10);
        assert_eq!(ds.input_shape(), vec![3, 32, 32]);
        let (img, label) = ds.sample(0).unwrap();
        assert_eq!(label, 3);
        assert_eq!(img.dims(), &[3, 32, 32]);
        // 128/255 normalised by channel-0 stats.
        let expected = (128.0 / 255.0 - MEAN[0]) / STD[0];
        assert!((img.as_slice()[0] - expected).abs() < 1e-5);
        assert!(ds.sample(2).is_err());
        fs::remove_file(path).ok();
    }

    #[test]
    fn loads_cifar100_fine_labels() {
        let mut rec = vec![5u8, 42u8]; // coarse 5, fine 42
        rec.extend(std::iter::repeat_n(0u8, PIXEL_BYTES));
        let path = write_temp("fitact_test_cifar100.bin", &rec);
        let ds = CifarBinary::load(DatasetKind::Cifar100, &[&path]).unwrap();
        assert_eq!(ds.sample(0).unwrap().1, 42);
        assert_eq!(ds.num_classes(), 100);
        fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_truncated_files_and_bad_labels() {
        let path = write_temp("fitact_test_truncated.bin", &[0u8; 100]);
        assert!(matches!(
            CifarBinary::load(DatasetKind::Cifar10, &[&path]),
            Err(DataError::Malformed(_))
        ));
        fs::remove_file(path).ok();

        let bytes = fake_cifar10_record(250, 0); // label out of range
        let path = write_temp("fitact_test_badlabel.bin", &bytes);
        assert!(matches!(
            CifarBinary::load(DatasetKind::Cifar10, &[&path]),
            Err(DataError::Malformed(_))
        ));
        fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            CifarBinary::load(DatasetKind::Cifar10, &["/nonexistent/cifar.bin"]),
            Err(DataError::Io(_))
        ));
    }
}
