//! Datasets and data loading for the FitAct reproduction.
//!
//! The paper trains on CIFAR-10 and CIFAR-100. Those datasets are not
//! available in this offline environment, so the primary dataset here is
//! [`SyntheticCifar`]: procedurally generated, class-conditional 3×32×32
//! images that a convolutional network can actually learn, exercising exactly
//! the same code paths (see `DESIGN.md` §2 for the substitution argument).
//! The real CIFAR binary format is still supported through [`CifarBinary`]
//! when the files are present on disk.
//!
//! # Example
//!
//! ```
//! use fitact_data::{Dataset, SyntheticCifar, SyntheticCifarConfig};
//!
//! let train = SyntheticCifar::new(SyntheticCifarConfig {
//!     classes: 10,
//!     samples: 64,
//!     seed: 7,
//!     noise: 0.1,
//! });
//! assert_eq!(train.len(), 64);
//! let (image, label) = train.sample(0).expect("index in range");
//! assert_eq!(image.dims(), &[3, 32, 32]);
//! assert!(label < 10);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod augment;
mod blobs;
mod cifar_binary;
mod loader;
mod spec;
mod synthetic;

pub use augment::{AugmentConfig, Augmented};
pub use blobs::{Blobs, BlobsConfig};
pub use cifar_binary::CifarBinary;
pub use loader::{materialize, DataLoader};
pub use spec::DataSpec;
pub use synthetic::{SyntheticCifar, SyntheticCifarConfig};

use fitact_tensor::Tensor;
use std::error::Error;
use std::fmt;

/// Errors produced when constructing or reading datasets.
#[derive(Debug)]
pub enum DataError {
    /// A sample index was out of range.
    IndexOutOfRange {
        /// The requested index.
        index: usize,
        /// The dataset length.
        len: usize,
    },
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// An I/O error occurred while reading dataset files from disk.
    Io(std::io::Error),
    /// A dataset file had an unexpected size or structure.
    Malformed(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::IndexOutOfRange { index, len } => {
                write!(
                    f,
                    "sample index {index} out of range for dataset of length {len}"
                )
            }
            DataError::InvalidConfig(msg) => write!(f, "invalid dataset configuration: {msg}"),
            DataError::Io(e) => write!(f, "dataset i/o error: {e}"),
            DataError::Malformed(msg) => write!(f, "malformed dataset file: {msg}"),
        }
    }
}

impl Error for DataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

/// A supervised image-classification dataset.
pub trait Dataset {
    /// Number of samples.
    fn len(&self) -> usize;

    /// Returns `true` if the dataset has no samples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct class labels.
    fn num_classes(&self) -> usize;

    /// Per-sample input shape (e.g. `[3, 32, 32]`).
    fn input_shape(&self) -> Vec<usize>;

    /// Returns the `index`-th sample as `(input, label)`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::IndexOutOfRange`] if `index >= self.len()`.
    fn sample(&self, index: usize) -> Result<(Tensor, usize), DataError>;
}

/// The two dataset families used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// 10-class dataset (CIFAR-10 stand-in).
    Cifar10,
    /// 100-class dataset (CIFAR-100 stand-in).
    Cifar100,
}

impl DatasetKind {
    /// Both dataset kinds in the order used by the paper's Fig. 6.
    pub const ALL: [DatasetKind; 2] = [DatasetKind::Cifar10, DatasetKind::Cifar100];

    /// Number of classes.
    pub fn classes(self) -> usize {
        match self {
            DatasetKind::Cifar10 => 10,
            DatasetKind::Cifar100 => 100,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Cifar10 => "cifar10",
            DatasetKind::Cifar100 => "cifar100",
        }
    }
}

impl fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        let errors: Vec<DataError> = vec![
            DataError::IndexOutOfRange { index: 5, len: 3 },
            DataError::InvalidConfig("x".into()),
            DataError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "missing")),
            DataError::Malformed("truncated".into()),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn dataset_kind_metadata() {
        assert_eq!(DatasetKind::Cifar10.classes(), 10);
        assert_eq!(DatasetKind::Cifar100.classes(), 100);
        assert_eq!(DatasetKind::Cifar10.to_string(), "cifar10");
        assert_eq!(DatasetKind::ALL.len(), 2);
    }

    #[test]
    fn io_error_has_source() {
        let e = DataError::from(std::io::Error::other("x"));
        assert!(Error::source(&e).is_some());
    }
}
