//! Mini-batch iteration over datasets.

use crate::{DataError, Dataset};
use fitact_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Materialises an entire dataset into one `[n, ...input_shape]` tensor plus a
/// label vector.
///
/// Convenient for evaluation and for the fault-injection campaigns, which
/// re-evaluate the same test split many times.
///
/// # Errors
///
/// Propagates any [`DataError`] from the underlying dataset.
pub fn materialize<D: Dataset + ?Sized>(dataset: &D) -> Result<(Tensor, Vec<usize>), DataError> {
    let mut samples = Vec::with_capacity(dataset.len());
    let mut labels = Vec::with_capacity(dataset.len());
    for i in 0..dataset.len() {
        let (x, y) = dataset.sample(i)?;
        samples.push(x);
        labels.push(y);
    }
    let inputs = Tensor::stack(&samples)
        .map_err(|e| DataError::InvalidConfig(format!("failed to stack dataset samples: {e}")))?;
    Ok((inputs, labels))
}

/// Iterates over a dataset in shuffled mini-batches.
///
/// # Example
///
/// ```
/// use fitact_data::{Blobs, BlobsConfig, DataLoader};
///
/// # fn main() -> Result<(), fitact_data::DataError> {
/// let ds = Blobs::new(BlobsConfig { samples: 10, ..Default::default() })?;
/// let mut loader = DataLoader::new(&ds, 4, true, 0)?;
/// let mut seen = 0;
/// while let Some((inputs, labels)) = loader.next_batch()? {
///     assert_eq!(inputs.dims()[0], labels.len());
///     seen += labels.len();
/// }
/// assert_eq!(seen, 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DataLoader<'a, D: Dataset + ?Sized> {
    dataset: &'a D,
    batch_size: usize,
    order: Vec<usize>,
    cursor: usize,
    shuffle: bool,
    rng: StdRng,
}

impl<'a, D: Dataset + ?Sized> DataLoader<'a, D> {
    /// Creates a loader over `dataset` with the given batch size.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if `batch_size == 0`.
    pub fn new(
        dataset: &'a D,
        batch_size: usize,
        shuffle: bool,
        seed: u64,
    ) -> Result<Self, DataError> {
        if batch_size == 0 {
            return Err(DataError::InvalidConfig(
                "batch_size must be non-zero".into(),
            ));
        }
        let mut loader = DataLoader {
            dataset,
            batch_size,
            order: (0..dataset.len()).collect(),
            cursor: 0,
            shuffle,
            rng: StdRng::seed_from_u64(seed),
        };
        loader.reshuffle();
        Ok(loader)
    }

    /// Number of batches per epoch (the final batch may be smaller).
    pub fn batches_per_epoch(&self) -> usize {
        self.dataset.len().div_ceil(self.batch_size)
    }

    /// Returns the next mini-batch, or `None` at the end of the epoch.
    ///
    /// # Errors
    ///
    /// Propagates dataset errors.
    pub fn next_batch(&mut self) -> Result<Option<(Tensor, Vec<usize>)>, DataError> {
        if self.cursor >= self.order.len() {
            return Ok(None);
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let mut samples = Vec::with_capacity(end - self.cursor);
        let mut labels = Vec::with_capacity(end - self.cursor);
        for &idx in &self.order[self.cursor..end] {
            let (x, y) = self.dataset.sample(idx)?;
            samples.push(x);
            labels.push(y);
        }
        self.cursor = end;
        let inputs = Tensor::stack(&samples)
            .map_err(|e| DataError::InvalidConfig(format!("failed to stack batch samples: {e}")))?;
        Ok(Some((inputs, labels)))
    }

    /// Resets the loader for a new epoch (re-shuffling if enabled).
    pub fn reset(&mut self) {
        self.cursor = 0;
        self.reshuffle();
    }

    fn reshuffle(&mut self) {
        if self.shuffle {
            self.order.shuffle(&mut self.rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Blobs, BlobsConfig};

    fn dataset(samples: usize) -> Blobs {
        Blobs::new(BlobsConfig {
            samples,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn loader_covers_every_sample_once() {
        let ds = dataset(10);
        let mut loader = DataLoader::new(&ds, 3, true, 1).unwrap();
        assert_eq!(loader.batches_per_epoch(), 4);
        let mut total = 0;
        let mut batch_sizes = Vec::new();
        while let Some((x, y)) = loader.next_batch().unwrap() {
            assert_eq!(x.dims()[0], y.len());
            batch_sizes.push(y.len());
            total += y.len();
        }
        assert_eq!(total, 10);
        assert_eq!(batch_sizes, vec![3, 3, 3, 1]);
        // Exhausted until reset.
        assert!(loader.next_batch().unwrap().is_none());
        loader.reset();
        assert!(loader.next_batch().unwrap().is_some());
    }

    #[test]
    fn zero_batch_size_rejected() {
        let ds = dataset(4);
        assert!(DataLoader::new(&ds, 0, false, 0).is_err());
    }

    #[test]
    fn unshuffled_loader_preserves_order() {
        let ds = dataset(6);
        let mut loader = DataLoader::new(&ds, 2, false, 0).unwrap();
        let (_, labels) = loader.next_batch().unwrap().unwrap();
        // Blobs labels cycle 0,1,2,...
        assert_eq!(labels, vec![0, 1]);
    }

    #[test]
    fn shuffled_loader_changes_order_between_seeds() {
        let ds = dataset(64);
        let mut a = DataLoader::new(&ds, 64, true, 1).unwrap();
        let mut b = DataLoader::new(&ds, 64, true, 2).unwrap();
        let (_, la) = a.next_batch().unwrap().unwrap();
        let (_, lb) = b.next_batch().unwrap().unwrap();
        assert_ne!(la, lb);
    }

    #[test]
    fn materialize_builds_full_tensors() {
        let ds = dataset(5);
        let (inputs, labels) = materialize(&ds).unwrap();
        assert_eq!(inputs.dims(), &[5, 8]);
        assert_eq!(labels.len(), 5);
        // Matches per-sample access.
        let (x0, y0) = ds.sample(0).unwrap();
        assert_eq!(inputs.index_axis0(0).unwrap(), x0);
        assert_eq!(labels[0], y0);
    }
}
