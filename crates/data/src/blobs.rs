//! A tiny low-dimensional dataset for fast unit and integration tests.

use crate::{DataError, Dataset};
use fitact_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a [`Blobs`] dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlobsConfig {
    /// Number of classes (one Gaussian blob per class).
    pub classes: usize,
    /// Input dimensionality.
    pub features: usize,
    /// Number of samples.
    pub samples: usize,
    /// Standard deviation of each blob around its centre.
    pub spread: f32,
    /// Master seed.
    pub seed: u64,
}

impl Default for BlobsConfig {
    fn default() -> Self {
        BlobsConfig {
            classes: 3,
            features: 8,
            samples: 256,
            spread: 0.3,
            seed: 0,
        }
    }
}

/// Isotropic Gaussian blobs: class `c` is a cloud around a random centre.
///
/// This is the "does training work at all?" dataset — an MLP reaches high
/// accuracy on it within a handful of epochs, which keeps cross-crate
/// integration tests fast.
#[derive(Debug, Clone)]
pub struct Blobs {
    config: BlobsConfig,
    inputs: Vec<f32>,
    labels: Vec<usize>,
}

impl Blobs {
    /// Generates the dataset eagerly from its configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] for zero classes or features.
    pub fn new(config: BlobsConfig) -> Result<Self, DataError> {
        if config.classes == 0 || config.features == 0 {
            return Err(DataError::InvalidConfig(
                "blobs need at least one class and one feature".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let centres: Vec<Vec<f32>> = (0..config.classes)
            .map(|_| {
                (0..config.features)
                    .map(|_| rng.gen_range(-2.0..2.0))
                    .collect()
            })
            .collect();
        let mut inputs = Vec::with_capacity(config.samples * config.features);
        let mut labels = Vec::with_capacity(config.samples);
        for i in 0..config.samples {
            let label = i % config.classes;
            labels.push(label);
            for &centre in &centres[label] {
                inputs.push(centre + config.spread * (rng.gen_range(-1.0f32..1.0)));
            }
        }
        Ok(Blobs {
            config,
            inputs,
            labels,
        })
    }

    /// The dataset configuration.
    pub fn config(&self) -> &BlobsConfig {
        &self.config
    }
}

impl Dataset for Blobs {
    fn len(&self) -> usize {
        self.config.samples
    }

    fn num_classes(&self) -> usize {
        self.config.classes
    }

    fn input_shape(&self) -> Vec<usize> {
        vec![self.config.features]
    }

    fn sample(&self, index: usize) -> Result<(Tensor, usize), DataError> {
        if index >= self.config.samples {
            return Err(DataError::IndexOutOfRange {
                index,
                len: self.config.samples,
            });
        }
        let f = self.config.features;
        let data = self.inputs[index * f..(index + 1) * f].to_vec();
        let input = Tensor::from_vec(data, &[f]).expect("feature buffer matches shape");
        Ok((input, self.labels[index]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_samples() {
        let ds = Blobs::new(BlobsConfig::default()).unwrap();
        assert_eq!(ds.len(), 256);
        assert_eq!(ds.num_classes(), 3);
        assert_eq!(ds.input_shape(), vec![8]);
        let (x, y) = ds.sample(5).unwrap();
        assert_eq!(x.dims(), &[8]);
        assert!(y < 3);
        assert_eq!(ds.config().features, 8);
    }

    #[test]
    fn rejects_invalid_config_and_indices() {
        assert!(Blobs::new(BlobsConfig {
            classes: 0,
            ..Default::default()
        })
        .is_err());
        assert!(Blobs::new(BlobsConfig {
            features: 0,
            ..Default::default()
        })
        .is_err());
        let ds = Blobs::new(BlobsConfig {
            samples: 3,
            ..Default::default()
        })
        .unwrap();
        assert!(ds.sample(3).is_err());
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = Blobs::new(BlobsConfig::default()).unwrap();
        let b = Blobs::new(BlobsConfig::default()).unwrap();
        assert_eq!(a.sample(0).unwrap().0, b.sample(0).unwrap().0);
        let c = Blobs::new(BlobsConfig {
            seed: 9,
            ..Default::default()
        })
        .unwrap();
        assert_ne!(a.sample(0).unwrap().0, c.sample(0).unwrap().0);
    }

    #[test]
    fn classes_form_separated_clusters() {
        let ds = Blobs::new(BlobsConfig {
            spread: 0.1,
            ..Default::default()
        })
        .unwrap();
        // Two samples of class 0 are closer than a class-0 and a class-1 sample.
        let (a, _) = ds.sample(0).unwrap();
        let (b, _) = ds.sample(3).unwrap();
        let (c, _) = ds.sample(1).unwrap();
        let d_same = a.sub(&b).unwrap().sq_norm();
        let d_diff = a.sub(&c).unwrap().sq_norm();
        assert!(d_same < d_diff);
    }
}
