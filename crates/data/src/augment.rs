//! Data augmentation wrappers.
//!
//! Standard CIFAR training recipes (the ones behind the paper's baseline
//! accuracies) use random horizontal flips and random shifted crops. This
//! module provides those as a dataset wrapper so stage-1 training can use them
//! without touching the underlying dataset.

use crate::{DataError, Dataset};
use fitact_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Augmentation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugmentConfig {
    /// Probability of a horizontal flip.
    pub flip_probability: f32,
    /// Maximum absolute shift (in pixels) of the random crop; 0 disables it.
    pub max_shift: usize,
    /// Seed of the augmentation stream.
    pub seed: u64,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        AugmentConfig {
            flip_probability: 0.5,
            max_shift: 4,
            seed: 0,
        }
    }
}

/// A dataset wrapper that applies random horizontal flips and shifted crops to
/// `[channels, height, width]` samples.
///
/// Augmentation is deterministic per `(seed, index, epoch)`: call
/// [`Augmented::set_epoch`] between epochs to draw fresh augmentations while
/// keeping runs reproducible.
#[derive(Debug, Clone)]
pub struct Augmented<D> {
    inner: D,
    config: AugmentConfig,
    epoch: u64,
}

impl<D: Dataset> Augmented<D> {
    /// Wraps a dataset with augmentation.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if the flip probability is outside
    /// `[0, 1]` or the inner samples are not image-shaped (3-D).
    pub fn new(inner: D, config: AugmentConfig) -> Result<Self, DataError> {
        if !(0.0..=1.0).contains(&config.flip_probability) {
            return Err(DataError::InvalidConfig(format!(
                "flip probability {} must be in [0, 1]",
                config.flip_probability
            )));
        }
        if inner.input_shape().len() != 3 {
            return Err(DataError::InvalidConfig(
                "augmentation requires [channels, height, width] samples".into(),
            ));
        }
        Ok(Augmented {
            inner,
            config,
            epoch: 0,
        })
    }

    /// Advances the augmentation stream to a new epoch.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The wrapped dataset.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    fn sample_rng(&self, index: usize) -> StdRng {
        let mut z = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index as u64)
            .wrapping_add(self.epoch.wrapping_mul(0x517C_C1B7_2722_0A95));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        StdRng::seed_from_u64(z ^ (z >> 31))
    }
}

impl<D: Dataset> Dataset for Augmented<D> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn input_shape(&self) -> Vec<usize> {
        self.inner.input_shape()
    }

    fn sample(&self, index: usize) -> Result<(Tensor, usize), DataError> {
        let (image, label) = self.inner.sample(index)?;
        let mut rng = self.sample_rng(index);
        let mut out = image;
        if self.config.flip_probability > 0.0 && rng.gen::<f32>() < self.config.flip_probability {
            out = flip_horizontal(&out);
        }
        if self.config.max_shift > 0 {
            let shift = self.config.max_shift as isize;
            let dx = rng.gen_range(-shift..=shift);
            let dy = rng.gen_range(-shift..=shift);
            out = shift_image(&out, dx, dy);
        }
        Ok((out, label))
    }
}

/// Mirrors a `[c, h, w]` image along its width.
fn flip_horizontal(image: &Tensor) -> Tensor {
    let (c, h, w) = (image.dims()[0], image.dims()[1], image.dims()[2]);
    let src = image.as_slice();
    let mut out = vec![0.0f32; src.len()];
    for ch in 0..c {
        for y in 0..h {
            let row = (ch * h + y) * w;
            for x in 0..w {
                out[row + x] = src[row + (w - 1 - x)];
            }
        }
    }
    Tensor::from_vec(out, image.dims()).expect("flipped buffer matches image shape")
}

/// Shifts a `[c, h, w]` image by `(dx, dy)` pixels, zero-padding the exposed
/// border (equivalent to the pad-then-crop augmentation).
fn shift_image(image: &Tensor, dx: isize, dy: isize) -> Tensor {
    let (c, h, w) = (image.dims()[0], image.dims()[1], image.dims()[2]);
    let src = image.as_slice();
    let mut out = vec![0.0f32; src.len()];
    for ch in 0..c {
        for y in 0..h {
            let sy = y as isize - dy;
            if sy < 0 || sy >= h as isize {
                continue;
            }
            for x in 0..w {
                let sx = x as isize - dx;
                if sx < 0 || sx >= w as isize {
                    continue;
                }
                out[(ch * h + y) * w + x] = src[(ch * h + sy as usize) * w + sx as usize];
            }
        }
    }
    Tensor::from_vec(out, image.dims()).expect("shifted buffer matches image shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SyntheticCifar, SyntheticCifarConfig};

    fn base() -> SyntheticCifar {
        SyntheticCifar::new(SyntheticCifarConfig {
            samples: 8,
            ..Default::default()
        })
    }

    #[test]
    fn wrapper_preserves_metadata_and_labels() {
        let aug = Augmented::new(base(), AugmentConfig::default()).unwrap();
        assert_eq!(aug.len(), 8);
        assert_eq!(aug.num_classes(), 10);
        assert_eq!(aug.input_shape(), vec![3, 32, 32]);
        for i in 0..8 {
            let (img, label) = aug.sample(i).unwrap();
            assert_eq!(img.dims(), &[3, 32, 32]);
            assert_eq!(label, aug.inner().sample(i).unwrap().1);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Augmented::new(
            base(),
            AugmentConfig {
                flip_probability: 1.5,
                ..Default::default()
            }
        )
        .is_err());
        let blobs = crate::Blobs::new(crate::BlobsConfig::default()).unwrap();
        assert!(Augmented::new(blobs, AugmentConfig::default()).is_err());
    }

    #[test]
    fn augmentation_is_deterministic_per_epoch_and_varies_across_epochs() {
        let mut a = Augmented::new(base(), AugmentConfig::default()).unwrap();
        let first = a.sample(0).unwrap().0;
        assert_eq!(a.sample(0).unwrap().0, first);
        a.set_epoch(1);
        let second = a.sample(0).unwrap().0;
        // With flips and shifts enabled, a different epoch almost surely gives
        // a different view.
        assert_ne!(first, second);
    }

    #[test]
    fn disabled_augmentation_is_identity() {
        let aug = Augmented::new(
            base(),
            AugmentConfig {
                flip_probability: 0.0,
                max_shift: 0,
                seed: 0,
            },
        )
        .unwrap();
        let (augmented, _) = aug.sample(3).unwrap();
        let (original, _) = aug.inner().sample(3).unwrap();
        assert_eq!(augmented, original);
    }

    #[test]
    fn flip_is_an_involution_and_preserves_content() {
        let (img, _) = base().sample(0).unwrap();
        let flipped = flip_horizontal(&img);
        assert_ne!(flipped, img);
        assert_eq!(flip_horizontal(&flipped), img);
        assert!((flipped.sum() - img.sum()).abs() < 1e-3);
    }

    #[test]
    fn shift_moves_pixels_and_zero_pads() {
        let img = Tensor::from_vec((1..=4).map(|v| v as f32).collect(), &[1, 2, 2]).unwrap();
        let shifted = shift_image(&img, 1, 0);
        // Row [1, 2] becomes [0, 1]; row [3, 4] becomes [0, 3].
        assert_eq!(shifted.as_slice(), &[0.0, 1.0, 0.0, 3.0]);
        let unshifted = shift_image(&img, 0, 0);
        assert_eq!(unshifted, img);
    }
}
