//! Reproducible dataset specifications.
//!
//! The `fitact` CLI composes its pipeline stages via on-disk model
//! artifacts, and each stage needs the *same* data the previous stage used.
//! Datasets here are procedurally generated, so rather than persisting
//! tensors the artifact records a [`DataSpec`] — the generator's name and
//! seeds — and every stage rematerialises the identical split from it.

use crate::{materialize, Blobs, BlobsConfig, DataError, SyntheticCifar};
use fitact_tensor::Tensor;

/// A serializable description of a procedurally generated dataset split.
///
/// Materialising the same spec twice yields bit-identical tensors and
/// labels (the generators are seeded and deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSpec {
    /// Generator family: `"blobs"` or `"synthetic-cifar"`.
    pub kind: String,
    /// Number of classes.
    pub classes: usize,
    /// Number of samples in the split.
    pub samples: usize,
    /// Master seed.
    pub seed: u64,
    /// Whether this is the held-out test split (`synthetic-cifar` shares
    /// class prototypes between splits but offsets the sample noise stream;
    /// `blobs` ignores the flag).
    pub test_split: bool,
}

impl DataSpec {
    /// The generator kinds [`DataSpec::materialize`] understands.
    pub const KINDS: [&'static str; 2] = ["blobs", "synthetic-cifar"];

    /// A blobs spec (8-feature Gaussian clouds — the fast MLP dataset).
    pub fn blobs(classes: usize, samples: usize, seed: u64) -> Self {
        DataSpec {
            kind: "blobs".into(),
            classes,
            samples,
            seed,
            test_split: false,
        }
    }

    /// A synthetic-CIFAR spec (3×32×32 class-conditional images).
    pub fn synthetic_cifar(classes: usize, samples: usize, seed: u64) -> Self {
        DataSpec {
            kind: "synthetic-cifar".into(),
            classes,
            samples,
            seed,
            test_split: false,
        }
    }

    /// Builder-style switch to the held-out test split.
    #[must_use]
    pub fn test(mut self) -> Self {
        self.test_split = true;
        self
    }

    /// Builder-style sample-count override.
    #[must_use]
    pub fn with_samples(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }

    /// Per-sample input shape of the generated tensors.
    pub fn input_shape(&self) -> Vec<usize> {
        match self.kind.as_str() {
            "synthetic-cifar" => vec![3, 32, 32],
            _ => vec![8],
        }
    }

    /// Generates the split as `(inputs, labels)`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] for an unknown kind or a
    /// configuration the generator rejects.
    pub fn materialize(&self) -> Result<(Tensor, Vec<usize>), DataError> {
        match self.kind.as_str() {
            "blobs" => {
                let ds = Blobs::new(BlobsConfig {
                    classes: self.classes,
                    samples: self.samples,
                    seed: self.seed,
                    ..Default::default()
                })?;
                materialize(&ds)
            }
            "synthetic-cifar" => {
                let ds = if self.test_split {
                    SyntheticCifar::test(self.classes, self.samples, self.seed)
                } else {
                    SyntheticCifar::train(self.classes, self.samples, self.seed)
                };
                materialize(&ds)
            }
            other => Err(DataError::InvalidConfig(format!(
                "unknown dataset kind `{other}` (expected one of {:?})",
                Self::KINDS
            ))),
        }
    }

    /// Flattens the spec into string key/value pairs (artifact metadata).
    pub fn to_meta(&self) -> Vec<(String, String)> {
        vec![
            ("data.kind".into(), self.kind.clone()),
            ("data.classes".into(), self.classes.to_string()),
            ("data.samples".into(), self.samples.to_string()),
            ("data.seed".into(), self.seed.to_string()),
            ("data.test_split".into(), self.test_split.to_string()),
        ]
    }

    /// Reconstructs a spec from metadata written by [`DataSpec::to_meta`].
    ///
    /// Returns `None` when any key is missing or unparsable — callers fall
    /// back to explicit configuration. A missing `data.test_split` key
    /// (artifacts written before the key existed) means the train split.
    pub fn from_meta<'a>(mut lookup: impl FnMut(&str) -> Option<&'a str>) -> Option<Self> {
        Some(DataSpec {
            kind: lookup("data.kind")?.to_owned(),
            classes: lookup("data.classes")?.parse().ok()?,
            samples: lookup("data.samples")?.parse().ok()?,
            seed: lookup("data.seed")?.parse().ok()?,
            test_split: match lookup("data.test_split") {
                Some(text) => text.parse().ok()?,
                None => false,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_spec_materializes_deterministically() {
        let spec = DataSpec::blobs(3, 24, 7);
        let (x1, y1) = spec.materialize().unwrap();
        let (x2, y2) = spec.materialize().unwrap();
        assert_eq!(x1, x2);
        assert_eq!(y1, y2);
        assert_eq!(x1.dims(), &[24, 8]);
        assert_eq!(spec.input_shape(), vec![8]);
    }

    #[test]
    fn cifar_spec_train_and_test_differ() {
        let train = DataSpec::synthetic_cifar(4, 8, 5);
        let test = train.clone().test();
        let (xt, _) = train.materialize().unwrap();
        let (xe, _) = test.materialize().unwrap();
        assert_eq!(xt.dims(), &[8, 3, 32, 32]);
        assert_ne!(xt, xe, "test split must use a different noise stream");
    }

    #[test]
    fn meta_round_trip() {
        for spec in [
            DataSpec::synthetic_cifar(10, 100, 42),
            DataSpec::synthetic_cifar(10, 100, 42).test(),
            DataSpec::blobs(3, 24, 7),
        ] {
            let meta = spec.to_meta();
            let restored = DataSpec::from_meta(|k| {
                meta.iter().find(|(mk, _)| mk == k).map(|(_, v)| v.as_str())
            })
            .unwrap();
            assert_eq!(restored, spec);
        }
        assert!(DataSpec::from_meta(|_| None).is_none());
        // Metadata written before the test_split key existed defaults to the
        // train split.
        let legacy = DataSpec::blobs(3, 24, 7).to_meta();
        let restored = DataSpec::from_meta(|k| {
            if k == "data.test_split" {
                None
            } else {
                legacy
                    .iter()
                    .find(|(mk, _)| mk == k)
                    .map(|(_, v)| v.as_str())
            }
        })
        .unwrap();
        assert!(!restored.test_split);
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut spec = DataSpec::blobs(3, 8, 0);
        spec.kind = "imagenet".into();
        assert!(matches!(
            spec.materialize(),
            Err(DataError::InvalidConfig(_))
        ));
    }

    #[test]
    fn sample_override_applies() {
        let spec = DataSpec::blobs(3, 8, 0).with_samples(16);
        assert_eq!(spec.samples, 16);
    }
}
