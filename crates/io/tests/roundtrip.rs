//! Artifact round-trip suite: every layer type × every protection scheme
//! serializes and reloads **bit-identically**, and malformed artifacts fail
//! with typed errors, never panics.

use fitact::{apply_protection, ActivationProfiler, ProtectionScheme};
use fitact_io::{IoError, ModelArtifact};
use fitact_nn::layers::{
    ActivationLayer, BatchNorm2d, Bottleneck, Conv2d, Dropout, Flatten, GlobalAvgPool, Linear,
    MaxPool2d, Sequential,
};
use fitact_nn::{Mode, Network};
use fitact_tensor::{init, NativeParam, Precision, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A network exercising Conv2d, BatchNorm2d, ActivationLayer, MaxPool2d,
/// Dropout, Flatten and Linear.
fn cnn() -> Network {
    let mut rng = StdRng::seed_from_u64(5);
    Network::new(
        "cnn",
        Sequential::new()
            .with(Box::new(Conv2d::new(3, 8, 3, 1, 1, &mut rng)))
            .with(Box::new(BatchNorm2d::new(8)))
            .with(Box::new(ActivationLayer::relu("conv1", &[8, 8, 8])))
            .with(Box::new(MaxPool2d::new(2, 2)))
            .with(Box::new(Dropout::new(0.25, 11).unwrap()))
            .with(Box::new(Flatten::new()))
            .with(Box::new(Linear::new(8 * 4 * 4, 16, &mut rng)))
            .with(Box::new(ActivationLayer::relu("fc1", &[16])))
            .with(Box::new(Linear::new(16, 4, &mut rng))),
    )
}

/// A network exercising both Bottleneck variants (identity and projection
/// shortcut), GlobalAvgPool and nested Sequential containers.
fn resnet_ish() -> Network {
    let mut rng = StdRng::seed_from_u64(6);
    let trunk = Sequential::new()
        .with(Box::new(Conv2d::new(3, 8, 3, 1, 1, &mut rng)))
        .with(Box::new(ActivationLayer::relu("stem", &[8, 6, 6])));
    Network::new(
        "resnet-ish",
        Sequential::new()
            .with(Box::new(trunk))
            .with(Box::new(
                Bottleneck::new(8, 2, 1, (6, 6), "b0", &mut rng).unwrap(),
            ))
            .with(Box::new(
                Bottleneck::new(8, 4, 2, (6, 6), "b1", &mut rng).unwrap(),
            ))
            .with(Box::new(GlobalAvgPool::new()))
            .with(Box::new(Linear::new(16, 3, &mut rng))),
    )
}

fn eval_input(net: &str) -> Tensor {
    let mut rng = StdRng::seed_from_u64(99);
    match net {
        "cnn" => init::uniform(&[4, 3, 8, 8], -1.0, 1.0, &mut rng),
        _ => init::uniform(&[4, 3, 6, 6], -1.0, 1.0, &mut rng),
    }
}

fn assert_bit_identical(original: &mut Network, reloaded: &mut Network, x: &Tensor, what: &str) {
    let want = original.forward(x, Mode::Eval).unwrap();
    let got = reloaded.forward(x, Mode::Eval).unwrap();
    assert_eq!(want.dims(), got.dims(), "{what}: output shape");
    for (i, (a, b)) in want.as_slice().iter().zip(got.as_slice()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: output element {i} differs: {a} vs {b}"
        );
    }
}

const ALL_SCHEMES: [ProtectionScheme; 6] = [
    ProtectionScheme::Unprotected,
    ProtectionScheme::Ranger,
    ProtectionScheme::ClipAct,
    ProtectionScheme::ClipActPerChannel,
    ProtectionScheme::FitAct { slope: 8.0 },
    ProtectionScheme::FitActNaive,
];

/// Every layer type × every protection scheme: capture → bytes → decode →
/// instantiate reproduces eval-mode forward passes bit-identically, with the
/// protection state intact.
#[test]
fn every_layer_and_scheme_round_trips_bit_identically() {
    for (name, base) in [("cnn", cnn()), ("resnet-ish", resnet_ish())] {
        let mut base = base;
        let x = eval_input(name);
        let calib = eval_input(name);
        let profile = ActivationProfiler::new(2)
            .unwrap()
            .profile(&mut base, &calib)
            .unwrap();
        for scheme in ALL_SCHEMES {
            let mut protected = base.clone();
            apply_protection(&mut protected, &profile, scheme).unwrap();
            let artifact =
                ModelArtifact::capture_protected(&protected, Some(&profile), Some(scheme)).unwrap();
            let decoded = ModelArtifact::from_bytes(&artifact.to_bytes()).unwrap();
            assert_eq!(decoded, artifact, "{name}/{scheme}: binary round trip");
            assert_eq!(decoded.scheme, Some(scheme));
            assert_eq!(decoded.profile.as_ref(), Some(&profile));
            let mut reloaded = decoded.instantiate().unwrap();
            // Parameters (including per-neuron λ bounds) are bit-equal.
            for (a, b) in protected.params().iter().zip(reloaded.params()) {
                assert_eq!(a.data(), b.data(), "{name}/{scheme}: param values");
                assert_eq!(
                    a.trainable(),
                    b.trainable(),
                    "{name}/{scheme}: trainable flag of `{}`",
                    a.name()
                );
            }
            // Activation slots carry the same implementations.
            let names: Vec<String> = reloaded
                .activation_slots()
                .iter()
                .map(|s| s.activation().name().to_owned())
                .collect();
            let want_names: Vec<String> = protected
                .activation_slots()
                .iter()
                .map(|s| s.activation().name().to_owned())
                .collect();
            assert_eq!(names, want_names, "{name}/{scheme}: activations");
            assert_bit_identical(
                &mut protected,
                &mut reloaded,
                &x,
                &format!("{name}/{scheme}"),
            );
        }
    }
}

/// Quantized parameters (the campaign arithmetic grid) round-trip bit-exactly
/// too — the artifact stores raw f32 bit patterns.
#[test]
fn quantized_networks_round_trip_bit_identically() {
    let mut net = cnn();
    fitact_faults::quantize_network(&mut net);
    let artifact = ModelArtifact::capture(&net).unwrap();
    let mut reloaded = ModelArtifact::from_bytes(&artifact.to_bytes())
        .unwrap()
        .instantiate()
        .unwrap();
    assert_bit_identical(&mut net, &mut reloaded, &eval_input("cnn"), "quantized cnn");
}

/// Truncating a valid artifact at any byte boundary yields a typed error.
#[test]
fn truncation_yields_typed_errors_everywhere() {
    let bytes = ModelArtifact::capture(&resnet_ish()).unwrap().to_bytes();
    for cut in 0..bytes.len() {
        match ModelArtifact::from_bytes(&bytes[..cut]) {
            Err(IoError::Truncated { .. }) | Err(IoError::BadMagic) => {}
            other => panic!("cut at {cut}: expected a typed truncation error, got {other:?}"),
        }
    }
}

#[test]
fn bad_magic_and_unsupported_version_are_typed() {
    let bytes = ModelArtifact::capture(&cnn()).unwrap().to_bytes();
    let mut bad_magic = bytes.clone();
    bad_magic[3] = b'X';
    assert!(matches!(
        ModelArtifact::from_bytes(&bad_magic),
        Err(IoError::BadMagic)
    ));
    let mut future = bytes;
    future[8..12].copy_from_slice(&9u32.to_le_bytes());
    assert!(matches!(
        ModelArtifact::from_bytes(&future),
        Err(IoError::UnsupportedVersion(9))
    ));
}

/// The legacy v1 encoding (inline parameter values) still decodes to the
/// same artifact — downgrade interchange with older readers keeps working.
#[test]
fn v1_downgrade_encoding_still_decodes() {
    let mut base = cnn();
    let calib = eval_input("cnn");
    let profile = ActivationProfiler::new(2)
        .unwrap()
        .profile(&mut base, &calib)
        .unwrap();
    let scheme = ProtectionScheme::FitAct { slope: 8.0 };
    apply_protection(&mut base, &profile, scheme).unwrap();
    let artifact = ModelArtifact::capture_protected(&base, Some(&profile), Some(scheme)).unwrap();
    let v1 = artifact.to_bytes_v1();
    let v2 = artifact.to_bytes();
    assert_ne!(v1, v2, "the two encodings are distinct layouts");
    assert_eq!(ModelArtifact::from_bytes(&v1).unwrap(), artifact);
    assert_eq!(ModelArtifact::from_bytes(&v2).unwrap(), artifact);
}

/// An artifact whose spec was tampered with (layer shape no longer matches
/// the parameter list) is rejected with a mismatch error, not a panic.
#[test]
fn tampered_topology_is_a_mismatch() {
    let mut artifact = ModelArtifact::capture(&cnn()).unwrap();
    if let fitact_nn::LayerSpec::Conv2d { out_channels, .. } = &mut artifact.layers[0] {
        *out_channels += 1;
    } else {
        panic!("expected the conv layer first");
    }
    assert!(matches!(artifact.instantiate(), Err(IoError::Mismatch(_))));
}

/// Native parameter payloads (f16 words, int8 values/scales/zero-points)
/// of two networks are bit-for-bit equal, and f32 parameters bit-equal.
fn assert_native_bit_equal(a: &Network, b: &Network, what: &str) {
    for (pa, pb) in a.params().iter().zip(b.params()) {
        match (pa.native(), pb.native()) {
            (None, None) => assert_eq!(pa.data(), pb.data(), "{what}: f32 param `{}`", pa.name()),
            (Some(NativeParam::F16(x)), Some(NativeParam::F16(y))) => {
                assert_eq!(x.words(), y.words(), "{what}: f16 words of `{}`", pa.name());
            }
            (Some(NativeParam::Int8(x)), Some(NativeParam::Int8(y))) => {
                assert_eq!(x.q(), y.q(), "{what}: int8 values of `{}`", pa.name());
                let sx: Vec<u32> = x.scales().iter().map(|s| s.to_bits()).collect();
                let sy: Vec<u32> = y.scales().iter().map(|s| s.to_bits()).collect();
                assert_eq!(sx, sy, "{what}: int8 scales of `{}`", pa.name());
                assert_eq!(
                    x.zero_points(),
                    y.zero_points(),
                    "{what}: int8 zero points of `{}`",
                    pa.name()
                );
            }
            _ => panic!(
                "{what}: precision of `{}` differs between networks",
                pa.name()
            ),
        }
    }
}

/// Every layer type × every precision: a quantized network re-encodes
/// **bit-identically** — capture → bytes → decode → re-encode reproduces the
/// same bytes, the reloaded network carries the same native payloads, and
/// eval-mode forward passes match bit-for-bit.
#[test]
fn every_layer_and_precision_re_encodes_bit_identically() {
    for (name, base) in [("cnn", cnn()), ("resnet-ish", resnet_ish())] {
        let mut sizes = Vec::new();
        for precision in [Precision::F32, Precision::F16, Precision::Int8] {
            let mut net = base.clone();
            net.quantize_to(precision);
            assert_eq!(
                net.precision(),
                precision,
                "{name}: quantize_to took effect"
            );
            let artifact = ModelArtifact::capture(&net).unwrap();
            let want_version = if precision == Precision::F32 { 2 } else { 3 };
            assert_eq!(
                artifact.format_version(),
                want_version,
                "{name}/{precision}: version stamp"
            );
            let bytes = artifact.to_bytes();
            sizes.push(bytes.len());
            let decoded = ModelArtifact::from_bytes(&bytes).unwrap();
            assert_eq!(
                decoded, artifact,
                "{name}/{precision}: structural round trip"
            );
            assert_eq!(
                decoded.to_bytes(),
                bytes,
                "{name}/{precision}: re-encode is bit-identical"
            );
            let mut reloaded = decoded.instantiate().unwrap();
            assert_eq!(reloaded.precision(), precision);
            assert_native_bit_equal(&net, &reloaded, &format!("{name}/{precision}"));
            assert_bit_identical(
                &mut net,
                &mut reloaded,
                &eval_input(name),
                &format!("{name}/{precision}"),
            );
        }
        // Reduced-precision artifacts really are smaller on the wire.
        assert!(
            sizes[1] < sizes[0] && sizes[2] < sizes[1],
            "{name}: artifact bytes must shrink with precision, got {sizes:?}"
        );
    }
}

/// Truncating a v3 (native-precision) artifact at any byte boundary yields a
/// typed error, for both native encodings.
#[test]
fn native_truncation_yields_typed_errors_everywhere() {
    for precision in [Precision::F16, Precision::Int8] {
        let mut net = cnn();
        net.quantize_to(precision);
        let bytes = ModelArtifact::capture(&net).unwrap().to_bytes();
        for cut in 0..bytes.len() {
            match ModelArtifact::from_bytes(&bytes[..cut]) {
                Err(IoError::Truncated { .. }) | Err(IoError::BadMagic) => {}
                other => panic!(
                    "{precision}, cut at {cut}: expected a typed truncation error, got {other:?}"
                ),
            }
        }
    }
}

/// A native-precision artifact downgrades to the v1 encoding by storing the
/// dequantized f32 values — older readers keep working, losing only the
/// native storage (not the values it decodes to).
#[test]
fn native_artifacts_downgrade_to_v1_as_f32() {
    for precision in [Precision::F16, Precision::Int8] {
        let mut net = cnn();
        net.quantize_to(precision);
        let artifact = ModelArtifact::capture(&net).unwrap();
        let v1 = ModelArtifact::from_bytes(&artifact.to_bytes_v1()).unwrap();
        assert_eq!(v1.format_version(), 2, "{precision}: v1 decode is all-f32");
        let reloaded = v1.instantiate().unwrap();
        net.quantize_to(Precision::F32);
        for (a, b) in net.params().iter().zip(reloaded.params()) {
            assert_eq!(
                a.data(),
                b.data(),
                "{precision}: dequantized `{}` via v1",
                a.name()
            );
        }
    }
}

/// All-f32 artifacts still encode as format version 2 and the exact v2 byte
/// stream is pinned: old files decode unchanged, and new all-f32 files are
/// byte-identical to what the pre-v3 writer produced.
#[test]
fn all_f32_artifacts_keep_the_v2_encoding_byte_identical() {
    let bytes = ModelArtifact::capture(&cnn()).unwrap().to_bytes();
    assert_eq!(&bytes[8..12], &2u32.to_le_bytes(), "version stamp is 2");
    // FNV-1a over the deterministic (seeded) artifact pins the exact wire
    // bytes — any change to the v2 encoding, intended or not, fails here.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &bytes {
        hash = (hash ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    assert_eq!(
        hash,
        PINNED_V2_FNV1A,
        "the all-f32 v2 wire format changed ({} bytes)",
        bytes.len()
    );
    let decoded = ModelArtifact::from_bytes(&bytes).unwrap();
    assert!(
        decoded.params.iter().all(|p| p.native.is_none()),
        "v2 decode must not invent native payloads"
    );
}

/// See [`all_f32_artifacts_keep_the_v2_encoding_byte_identical`].
const PINNED_V2_FNV1A: u64 = 5_815_570_999_583_705_985;

proptest! {
    /// Arbitrary bytes never panic the decoder: anything that is not a valid
    /// artifact fails with a typed error. The first 8 bytes are sometimes
    /// forced to the real magic so decoding gets past the header check.
    #[test]
    fn arbitrary_bytes_never_panic(seed in any::<u64>(), len in 0usize..256, with_magic in any::<bool>()) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        if with_magic && bytes.len() >= 8 {
            bytes[..8].copy_from_slice(&fitact_io::MAGIC);
        }
        let _ = ModelArtifact::from_bytes(&bytes);
    }

    /// Flipping one byte of a valid artifact either still decodes (the flip
    /// hit a value, not structure) or fails with a typed error — never a
    /// panic, never an abort.
    #[test]
    fn single_byte_corruption_never_panics(offset in 0usize..4096, flip in 1u8..=255) {
        let mut bytes = ModelArtifact::capture(&cnn()).unwrap().to_bytes();
        let offset = offset % bytes.len();
        bytes[offset] ^= flip;
        let _ = ModelArtifact::from_bytes(&bytes);
    }
}
