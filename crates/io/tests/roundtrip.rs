//! Artifact round-trip suite: every layer type × every protection scheme
//! serializes and reloads **bit-identically**, and malformed artifacts fail
//! with typed errors, never panics.

use fitact::{apply_protection, ActivationProfiler, ProtectionScheme};
use fitact_io::{IoError, ModelArtifact};
use fitact_nn::layers::{
    ActivationLayer, BatchNorm2d, Bottleneck, Conv2d, Dropout, Flatten, GlobalAvgPool, Linear,
    MaxPool2d, Sequential,
};
use fitact_nn::{Mode, Network};
use fitact_tensor::{init, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A network exercising Conv2d, BatchNorm2d, ActivationLayer, MaxPool2d,
/// Dropout, Flatten and Linear.
fn cnn() -> Network {
    let mut rng = StdRng::seed_from_u64(5);
    Network::new(
        "cnn",
        Sequential::new()
            .with(Box::new(Conv2d::new(3, 8, 3, 1, 1, &mut rng)))
            .with(Box::new(BatchNorm2d::new(8)))
            .with(Box::new(ActivationLayer::relu("conv1", &[8, 8, 8])))
            .with(Box::new(MaxPool2d::new(2, 2)))
            .with(Box::new(Dropout::new(0.25, 11).unwrap()))
            .with(Box::new(Flatten::new()))
            .with(Box::new(Linear::new(8 * 4 * 4, 16, &mut rng)))
            .with(Box::new(ActivationLayer::relu("fc1", &[16])))
            .with(Box::new(Linear::new(16, 4, &mut rng))),
    )
}

/// A network exercising both Bottleneck variants (identity and projection
/// shortcut), GlobalAvgPool and nested Sequential containers.
fn resnet_ish() -> Network {
    let mut rng = StdRng::seed_from_u64(6);
    let trunk = Sequential::new()
        .with(Box::new(Conv2d::new(3, 8, 3, 1, 1, &mut rng)))
        .with(Box::new(ActivationLayer::relu("stem", &[8, 6, 6])));
    Network::new(
        "resnet-ish",
        Sequential::new()
            .with(Box::new(trunk))
            .with(Box::new(
                Bottleneck::new(8, 2, 1, (6, 6), "b0", &mut rng).unwrap(),
            ))
            .with(Box::new(
                Bottleneck::new(8, 4, 2, (6, 6), "b1", &mut rng).unwrap(),
            ))
            .with(Box::new(GlobalAvgPool::new()))
            .with(Box::new(Linear::new(16, 3, &mut rng))),
    )
}

fn eval_input(net: &str) -> Tensor {
    let mut rng = StdRng::seed_from_u64(99);
    match net {
        "cnn" => init::uniform(&[4, 3, 8, 8], -1.0, 1.0, &mut rng),
        _ => init::uniform(&[4, 3, 6, 6], -1.0, 1.0, &mut rng),
    }
}

fn assert_bit_identical(original: &mut Network, reloaded: &mut Network, x: &Tensor, what: &str) {
    let want = original.forward(x, Mode::Eval).unwrap();
    let got = reloaded.forward(x, Mode::Eval).unwrap();
    assert_eq!(want.dims(), got.dims(), "{what}: output shape");
    for (i, (a, b)) in want.as_slice().iter().zip(got.as_slice()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: output element {i} differs: {a} vs {b}"
        );
    }
}

const ALL_SCHEMES: [ProtectionScheme; 6] = [
    ProtectionScheme::Unprotected,
    ProtectionScheme::Ranger,
    ProtectionScheme::ClipAct,
    ProtectionScheme::ClipActPerChannel,
    ProtectionScheme::FitAct { slope: 8.0 },
    ProtectionScheme::FitActNaive,
];

/// Every layer type × every protection scheme: capture → bytes → decode →
/// instantiate reproduces eval-mode forward passes bit-identically, with the
/// protection state intact.
#[test]
fn every_layer_and_scheme_round_trips_bit_identically() {
    for (name, base) in [("cnn", cnn()), ("resnet-ish", resnet_ish())] {
        let mut base = base;
        let x = eval_input(name);
        let calib = eval_input(name);
        let profile = ActivationProfiler::new(2)
            .unwrap()
            .profile(&mut base, &calib)
            .unwrap();
        for scheme in ALL_SCHEMES {
            let mut protected = base.clone();
            apply_protection(&mut protected, &profile, scheme).unwrap();
            let artifact =
                ModelArtifact::capture_protected(&protected, Some(&profile), Some(scheme)).unwrap();
            let decoded = ModelArtifact::from_bytes(&artifact.to_bytes()).unwrap();
            assert_eq!(decoded, artifact, "{name}/{scheme}: binary round trip");
            assert_eq!(decoded.scheme, Some(scheme));
            assert_eq!(decoded.profile.as_ref(), Some(&profile));
            let mut reloaded = decoded.instantiate().unwrap();
            // Parameters (including per-neuron λ bounds) are bit-equal.
            for (a, b) in protected.params().iter().zip(reloaded.params()) {
                assert_eq!(a.data(), b.data(), "{name}/{scheme}: param values");
                assert_eq!(
                    a.trainable(),
                    b.trainable(),
                    "{name}/{scheme}: trainable flag of `{}`",
                    a.name()
                );
            }
            // Activation slots carry the same implementations.
            let names: Vec<String> = reloaded
                .activation_slots()
                .iter()
                .map(|s| s.activation().name().to_owned())
                .collect();
            let want_names: Vec<String> = protected
                .activation_slots()
                .iter()
                .map(|s| s.activation().name().to_owned())
                .collect();
            assert_eq!(names, want_names, "{name}/{scheme}: activations");
            assert_bit_identical(
                &mut protected,
                &mut reloaded,
                &x,
                &format!("{name}/{scheme}"),
            );
        }
    }
}

/// Quantized parameters (the campaign arithmetic grid) round-trip bit-exactly
/// too — the artifact stores raw f32 bit patterns.
#[test]
fn quantized_networks_round_trip_bit_identically() {
    let mut net = cnn();
    fitact_faults::quantize_network(&mut net);
    let artifact = ModelArtifact::capture(&net).unwrap();
    let mut reloaded = ModelArtifact::from_bytes(&artifact.to_bytes())
        .unwrap()
        .instantiate()
        .unwrap();
    assert_bit_identical(&mut net, &mut reloaded, &eval_input("cnn"), "quantized cnn");
}

/// Truncating a valid artifact at any byte boundary yields a typed error.
#[test]
fn truncation_yields_typed_errors_everywhere() {
    let bytes = ModelArtifact::capture(&resnet_ish()).unwrap().to_bytes();
    for cut in 0..bytes.len() {
        match ModelArtifact::from_bytes(&bytes[..cut]) {
            Err(IoError::Truncated { .. }) | Err(IoError::BadMagic) => {}
            other => panic!("cut at {cut}: expected a typed truncation error, got {other:?}"),
        }
    }
}

#[test]
fn bad_magic_and_unsupported_version_are_typed() {
    let bytes = ModelArtifact::capture(&cnn()).unwrap().to_bytes();
    let mut bad_magic = bytes.clone();
    bad_magic[3] = b'X';
    assert!(matches!(
        ModelArtifact::from_bytes(&bad_magic),
        Err(IoError::BadMagic)
    ));
    let mut future = bytes;
    future[8..12].copy_from_slice(&9u32.to_le_bytes());
    assert!(matches!(
        ModelArtifact::from_bytes(&future),
        Err(IoError::UnsupportedVersion(9))
    ));
}

/// The legacy v1 encoding (inline parameter values) still decodes to the
/// same artifact — downgrade interchange with older readers keeps working.
#[test]
fn v1_downgrade_encoding_still_decodes() {
    let mut base = cnn();
    let calib = eval_input("cnn");
    let profile = ActivationProfiler::new(2)
        .unwrap()
        .profile(&mut base, &calib)
        .unwrap();
    let scheme = ProtectionScheme::FitAct { slope: 8.0 };
    apply_protection(&mut base, &profile, scheme).unwrap();
    let artifact = ModelArtifact::capture_protected(&base, Some(&profile), Some(scheme)).unwrap();
    let v1 = artifact.to_bytes_v1();
    let v2 = artifact.to_bytes();
    assert_ne!(v1, v2, "the two encodings are distinct layouts");
    assert_eq!(ModelArtifact::from_bytes(&v1).unwrap(), artifact);
    assert_eq!(ModelArtifact::from_bytes(&v2).unwrap(), artifact);
}

/// An artifact whose spec was tampered with (layer shape no longer matches
/// the parameter list) is rejected with a mismatch error, not a panic.
#[test]
fn tampered_topology_is_a_mismatch() {
    let mut artifact = ModelArtifact::capture(&cnn()).unwrap();
    if let fitact_nn::LayerSpec::Conv2d { out_channels, .. } = &mut artifact.layers[0] {
        *out_channels += 1;
    } else {
        panic!("expected the conv layer first");
    }
    assert!(matches!(artifact.instantiate(), Err(IoError::Mismatch(_))));
}

proptest! {
    /// Arbitrary bytes never panic the decoder: anything that is not a valid
    /// artifact fails with a typed error. The first 8 bytes are sometimes
    /// forced to the real magic so decoding gets past the header check.
    #[test]
    fn arbitrary_bytes_never_panic(seed in any::<u64>(), len in 0usize..256, with_magic in any::<bool>()) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        if with_magic && bytes.len() >= 8 {
            bytes[..8].copy_from_slice(&fitact_io::MAGIC);
        }
        let _ = ModelArtifact::from_bytes(&bytes);
    }

    /// Flipping one byte of a valid artifact either still decodes (the flip
    /// hit a value, not structure) or fails with a typed error — never a
    /// panic, never an abort.
    #[test]
    fn single_byte_corruption_never_panics(offset in 0usize..4096, flip in 1u8..=255) {
        let mut bytes = ModelArtifact::capture(&cnn()).unwrap().to_bytes();
        let offset = offset % bytes.len();
        bytes[offset] ^= flip;
        let _ = ModelArtifact::from_bytes(&bytes);
    }
}
