//! The zero-copy loading contract: one read-only mapping serves every
//! network instantiated from a [`MappedArtifact`] (no per-worker parameter
//! copy), mutation is copy-on-write, v1 artifacts fall back to owned
//! buffers, and both paths stay bit-identical to the in-memory decode.

use fitact::{apply_protection, ActivationProfiler, ProtectionScheme};
use fitact_io::{IoError, MappedArtifact, ModelArtifact};
use fitact_nn::layers::{ActivationLayer, Conv2d, Flatten, Linear, MaxPool2d, Sequential};
use fitact_nn::{Mode, Network};
use fitact_tensor::{init, NativeParam, Precision, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn cnn() -> Network {
    let mut rng = StdRng::seed_from_u64(17);
    Network::new(
        "cnn",
        Sequential::new()
            .with(Box::new(Conv2d::new(3, 4, 3, 1, 1, &mut rng)))
            .with(Box::new(ActivationLayer::relu("conv1", &[4, 8, 8])))
            .with(Box::new(MaxPool2d::new(2, 2)))
            .with(Box::new(Flatten::new()))
            .with(Box::new(Linear::new(4 * 4 * 4, 6, &mut rng)))
            .with(Box::new(ActivationLayer::relu("fc1", &[6])))
            .with(Box::new(Linear::new(6, 3, &mut rng))),
    )
}

fn protected_artifact() -> ModelArtifact {
    let mut net = cnn();
    let mut rng = StdRng::seed_from_u64(18);
    let calib = init::uniform(&[4, 3, 8, 8], -1.0, 1.0, &mut rng);
    let profile = ActivationProfiler::new(2)
        .unwrap()
        .profile(&mut net, &calib)
        .unwrap();
    let scheme = ProtectionScheme::FitAct { slope: 8.0 };
    apply_protection(&mut net, &profile, scheme).unwrap();
    ModelArtifact::capture_protected(&net, Some(&profile), Some(scheme)).unwrap()
}

fn tmp_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fitact_mapped_{label}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// On platforms with mmap support, all instantiations of a mapped v2
/// artifact alias the exact same parameter memory — the acceptance
/// criterion "no per-worker parameter copy", asserted by pointer equality.
#[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
#[test]
fn workers_share_one_parameter_mapping() {
    let dir = tmp_dir("share");
    let path = dir.join("model.fitact");
    let artifact = protected_artifact();
    artifact.save(&path).unwrap();

    let mapped = MappedArtifact::open(&path).unwrap();
    assert!(mapped.is_mapped(), "v2 artifact on unix must map");
    assert_eq!(mapped.name(), artifact.name);
    assert_eq!(mapped.num_parameters(), artifact.num_parameters());
    assert_eq!(mapped.scheme(), artifact.scheme);

    let worker_a = mapped.instantiate().unwrap();
    let worker_b = mapped.instantiate().unwrap();
    for (a, b) in worker_a.params().iter().zip(worker_b.params()) {
        assert!(
            a.data().is_shared(),
            "`{}` must borrow the mapping, not own a copy",
            a.name()
        );
        let pa = a.data().as_slice().as_ptr();
        let pb = b.data().as_slice().as_ptr();
        assert_eq!(
            pa,
            pb,
            "`{}` must alias the same mapped bytes in every worker",
            a.name()
        );
    }
    drop(worker_a);

    // The mapped network computes bit-identically to the owned decode.
    let mut owned = artifact.instantiate().unwrap();
    let mut shared = worker_b;
    let mut rng = StdRng::seed_from_u64(19);
    let x = init::uniform(&[2, 3, 8, 8], -1.0, 1.0, &mut rng);
    assert_eq!(
        shared.forward(&x, Mode::Eval).unwrap(),
        owned.forward(&x, Mode::Eval).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Writing to a shared parameter materialises a private copy (CoW) — the
/// mapping itself, and therefore every other worker, never sees the write.
#[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
#[test]
fn mutation_is_copy_on_write_and_invisible_to_other_workers() {
    let dir = tmp_dir("cow");
    let path = dir.join("model.fitact");
    protected_artifact().save(&path).unwrap();
    let mapped = MappedArtifact::open(&path).unwrap();
    assert!(mapped.is_mapped());

    let mut victim = mapped.instantiate().unwrap();
    let observer = mapped.instantiate().unwrap();
    let before: Vec<f32> = observer.params()[0].data().as_slice().to_vec();

    let p = &mut victim.params_mut()[0];
    p.data_mut().as_mut_slice()[0] = f32::NAN; // a canary-style fault
    assert!(
        !p.data().is_shared(),
        "a written tensor must have detached from the mapping"
    );
    assert_eq!(
        observer.params()[0].data().as_slice(),
        before.as_slice(),
        "the fault must be private to the writer"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// v1 artifacts are not mappable and load through the owned-buffer
/// fallback, bit-identically.
#[test]
fn v1_artifacts_fall_back_to_owned_buffers() {
    let dir = tmp_dir("v1");
    let path = dir.join("model_v1.fitact");
    let artifact = protected_artifact();
    std::fs::write(&path, artifact.to_bytes_v1()).unwrap();

    let fallback = MappedArtifact::open(&path).unwrap();
    assert!(!fallback.is_mapped(), "v1 must take the owned path");
    assert_eq!(fallback.name(), artifact.name);
    assert_eq!(fallback.num_parameters(), artifact.num_parameters());

    let mut owned = artifact.instantiate().unwrap();
    let mut reloaded = fallback.instantiate().unwrap();
    let mut rng = StdRng::seed_from_u64(20);
    let x = init::uniform(&[2, 3, 8, 8], -1.0, 1.0, &mut rng);
    assert_eq!(
        reloaded.forward(&x, Mode::Eval).unwrap(),
        owned.forward(&x, Mode::Eval).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Corrupt or missing files fail with the same typed errors as the owned
/// loader — mapping must never turn corruption into a panic or a silent
/// fallback succeeding.
#[test]
fn corrupt_and_missing_files_are_typed_errors() {
    let dir = tmp_dir("corrupt");
    let path = dir.join("model.fitact");
    let mut bytes = protected_artifact().to_bytes();
    // Truncate mid-blob: both loaders must report Truncated.
    bytes.truncate(bytes.len() - 10);
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        MappedArtifact::open(&path),
        Err(IoError::Truncated { .. })
    ));
    assert!(matches!(
        ModelArtifact::load(&path),
        Err(IoError::Truncated { .. })
    ));
    assert!(matches!(
        MappedArtifact::open(dir.join("missing.fitact")),
        Err(IoError::Io(_))
    ));
    // An empty file is short input, not a crash.
    let empty = dir.join("empty.fitact");
    std::fs::write(&empty, []).unwrap();
    assert!(matches!(
        MappedArtifact::open(&empty),
        Err(IoError::Truncated { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

/// A v3 f16 artifact maps zero-copy: every instantiation borrows its f16
/// words from the one shared mapping (pointer-equal across workers), f32
/// side parameters (biases, λ bounds) stay shared too, and the mapped
/// network computes bit-identically to the owned decode.
#[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
#[test]
fn f16_workers_share_one_native_word_mapping() {
    let dir = tmp_dir("f16_share");
    let path = dir.join("model.fitact");
    let mut net = cnn();
    net.quantize_to(Precision::F16);
    let artifact = ModelArtifact::capture(&net).unwrap();
    artifact.save(&path).unwrap();

    let mapped = MappedArtifact::open(&path).unwrap();
    assert!(mapped.is_mapped(), "v3 artifact on unix must map");

    let worker_a = mapped.instantiate().unwrap();
    let worker_b = mapped.instantiate().unwrap();
    assert_eq!(worker_a.precision(), Precision::F16);
    let mut quantized = 0;
    for (a, b) in worker_a.params().iter().zip(worker_b.params()) {
        match (a.native(), b.native()) {
            (Some(NativeParam::F16(x)), Some(NativeParam::F16(y))) => {
                quantized += 1;
                assert!(
                    x.is_shared(),
                    "`{}` words must borrow the mapping, not own a copy",
                    a.name()
                );
                assert_eq!(
                    x.words().as_ptr(),
                    y.words().as_ptr(),
                    "`{}` must alias the same mapped words in every worker",
                    a.name()
                );
            }
            (None, None) => assert!(
                a.data().is_shared(),
                "f32 sidecar `{}` must stay mapped too",
                a.name()
            ),
            _ => panic!("`{}`: unexpected precision mix", a.name()),
        }
    }
    assert!(quantized >= 3, "the cnn has at least 3 matrix params");
    drop(worker_a);

    let mut owned = artifact.instantiate().unwrap();
    let mut shared = worker_b;
    let mut rng = StdRng::seed_from_u64(21);
    let x = init::uniform(&[2, 3, 8, 8], -1.0, 1.0, &mut rng);
    assert_eq!(
        shared.forward(&x, Mode::Eval).unwrap(),
        owned.forward(&x, Mode::Eval).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Writing to mapped f16 words is copy-on-write: the writer detaches to a
/// private buffer and other workers never observe the flip — the invariant
/// a fault campaign over a mapped quantized model relies on.
#[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
#[test]
fn f16_word_mutation_is_copy_on_write() {
    let dir = tmp_dir("f16_cow");
    let path = dir.join("model.fitact");
    let mut net = cnn();
    net.quantize_to(Precision::F16);
    ModelArtifact::capture(&net).unwrap().save(&path).unwrap();
    let mapped = MappedArtifact::open(&path).unwrap();
    assert!(mapped.is_mapped());

    let mut victim = mapped.instantiate().unwrap();
    let observer = mapped.instantiate().unwrap();
    let observe = |net: &Network| -> Vec<u16> {
        match net.params()[0].native() {
            Some(NativeParam::F16(w)) => w.words().to_vec(),
            _ => panic!("conv weight must be f16"),
        }
    };
    let before = observe(&observer);

    match victim.params_mut()[0].native_mut() {
        Some(NativeParam::F16(w)) => {
            w.words_mut()[0] ^= 1 << 15; // a sign-bit fault
            assert!(
                !w.is_shared(),
                "a written param must detach from the mapping"
            );
        }
        _ => panic!("conv weight must be f16"),
    }
    assert_eq!(observe(&observer), before, "the fault must stay private");
    std::fs::remove_dir_all(&dir).ok();
}

/// Int8 blobs interleave values/scales/zero-points, so they decode owned —
/// but the artifact still maps, instantiates, and computes bit-identically
/// to the owned decode.
#[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
#[test]
fn int8_mapped_artifacts_instantiate_and_match_owned() {
    let dir = tmp_dir("int8");
    let path = dir.join("model.fitact");
    let mut net = cnn();
    net.quantize_to(Precision::Int8);
    let artifact = ModelArtifact::capture(&net).unwrap();
    artifact.save(&path).unwrap();

    let mapped = MappedArtifact::open(&path).unwrap();
    assert!(mapped.is_mapped(), "v3 int8 artifact on unix must map");
    assert_eq!(mapped.num_parameters(), artifact.num_parameters());

    let mut from_map = mapped.instantiate().unwrap();
    assert_eq!(from_map.precision(), Precision::Int8);
    let mut owned = artifact.instantiate().unwrap();
    let mut rng = StdRng::seed_from_u64(22);
    let x = init::uniform(&[2, 3, 8, 8], -1.0, 1.0, &mut rng);
    assert_eq!(
        from_map.forward(&x, Mode::Eval).unwrap(),
        owned.forward(&x, Mode::Eval).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `Tensor::clone` of a shared tensor is an alias, not a copy — the cheap
/// clone the serving tier relies on when a worker hands tensors around.
#[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
#[test]
fn cloning_shared_tensors_aliases_the_mapping() {
    let dir = tmp_dir("clone");
    let path = dir.join("model.fitact");
    protected_artifact().save(&path).unwrap();
    let mapped = MappedArtifact::open(&path).unwrap();
    let net = mapped.instantiate().unwrap();
    let original: &Tensor = net.params()[0].data();
    let clone = original.clone();
    assert!(clone.is_shared());
    assert_eq!(clone.as_slice().as_ptr(), original.as_slice().as_ptr());
    std::fs::remove_dir_all(&dir).ok();
}
