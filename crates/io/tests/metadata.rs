//! Metadata edge cases of the artifact wire format — the cases a serving
//! deployment actually hits: artifacts with no provenance at all, artifacts
//! mangled by foreign writers, and artifacts from a newer format revision
//! with protection tags this build does not know.

use fitact::ProtectionScheme;
use fitact_io::{IoError, ModelArtifact};
use fitact_nn::layers::{Linear, Sequential};
use fitact_nn::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny() -> ModelArtifact {
    let mut rng = StdRng::seed_from_u64(5);
    let net = Network::new(
        "tiny",
        Sequential::new().with(Box::new(Linear::new(3, 2, &mut rng))),
    );
    ModelArtifact::capture(&net).unwrap()
}

#[test]
fn empty_metadata_map_round_trips() {
    let artifact = tiny();
    assert!(artifact.meta.is_empty());
    let decoded = ModelArtifact::from_bytes(&artifact.to_bytes()).unwrap();
    assert!(decoded.meta.is_empty());
    assert_eq!(decoded.meta("anything"), None);
    assert_eq!(decoded, artifact);
    // And it still instantiates (serving infers the input shape from the
    // topology when no dataset metadata is present).
    assert!(decoded.instantiate().is_ok());
}

#[test]
fn duplicate_metadata_keys_are_rejected_with_a_typed_error() {
    // `set_meta` replaces, so a duplicate can only come from a foreign
    // writer — emulate one by editing the meta vec directly.
    let mut artifact = tiny();
    artifact.meta = vec![
        ("stage".into(), "trained".into()),
        ("stage".into(), "protected".into()),
    ];
    match ModelArtifact::from_bytes(&artifact.to_bytes()) {
        Err(IoError::Corrupt(msg)) => {
            assert!(msg.contains("duplicate metadata key `stage`"), "{msg}")
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    // Distinct keys are of course fine, in order.
    let mut artifact = tiny();
    artifact.set_meta("stage", "trained");
    artifact.set_meta("stage", "protected"); // replace, not duplicate
    artifact.set_meta("arch", "mlp");
    let decoded = ModelArtifact::from_bytes(&artifact.to_bytes()).unwrap();
    assert_eq!(decoded.meta("stage"), Some("protected"));
    assert_eq!(decoded.meta.len(), 2);
}

/// The serve-relevant case: an artifact carrying a protection-scheme tag
/// from a newer build must fail to load with [`IoError::Corrupt`] — never a
/// panic — so `fitact serve` refuses it with a clean error message
/// (`crates/serve/tests/server_http.rs` pins the server side of this).
#[test]
fn unknown_protection_tag_is_corrupt_not_a_panic() {
    let artifact = tiny().with_scheme(ProtectionScheme::Ranger);
    let mut bytes = artifact.to_bytes();
    // Scheme trailer: [present u8 = 1, tag u8, slope f32] — the last 6
    // bytes of the v2 head, which spans bytes 32 .. 32 + head_len (header
    // bytes 24..32 hold head_len).
    let head_len = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
    let head_end = 32 + head_len;
    assert_eq!(bytes[head_end - 6], 1, "scheme-present marker");
    bytes[head_end - 5] = 250;
    match ModelArtifact::from_bytes(&bytes) {
        Err(IoError::Corrupt(msg)) => {
            assert!(msg.contains("protection-scheme tag 250"), "{msg}")
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}
