//! Crash-safety pins for campaign checkpoints.
//!
//! A campaign can die at any instant — mid-write, mid-rename, or while a
//! stale temp file lingers next to a good checkpoint. Resume must then either
//! find a valid checkpoint or fail with a typed [`IoError`] — never panic,
//! and never decode a silently wrong pool.

use fitact_faults::{BitClass, StatCampaignConfig, StratumPool, StratumSpec, TrialPoint};
use fitact_io::{CampaignCheckpoint, IoError};

fn sample_checkpoint() -> CampaignCheckpoint {
    let config = StatCampaignConfig {
        seed: 42,
        strata: vec![
            StratumSpec {
                label: "lin0/exponent".into(),
                bit_classes: vec![BitClass::Exponent],
                path_prefix: Some("0/".into()),
            },
            StratumSpec::all(),
        ],
        ..Default::default()
    };
    let mut pools = vec![StratumPool::new(); config.strata.len()];
    for (stratum, pool) in pools.iter_mut().enumerate() {
        for index in 0..5u64 {
            pool.insert(
                index,
                TrialPoint {
                    accuracy: (stratum as f32 + 1.0) / (index as f32 + 2.0),
                    faults: index + stratum as u64,
                },
            )
            .unwrap();
        }
    }
    CampaignCheckpoint::new(
        config,
        "bitflip",
        "mlp",
        0x1234_5678,
        0.9,
        pools,
        vec![3, 7, 9],
    )
}

/// A crash can tear the file at ANY byte. Every prefix must decode to a
/// typed `Truncated` (or `BadMagic` for prefixes inside the magic), and the
/// full encoding must round-trip — no panics, no silent acceptance.
#[test]
fn every_truncation_point_is_a_typed_error() {
    let ck = sample_checkpoint();
    let bytes = ck.to_bytes();
    for cut in 0..bytes.len() {
        match CampaignCheckpoint::from_bytes(&bytes[..cut]) {
            Err(IoError::Truncated { needed, remaining }) => {
                assert!(needed > remaining, "cut {cut}: vacuous truncation error")
            }
            Err(IoError::BadMagic) => {
                assert!(cut < 8, "cut {cut}: BadMagic past the magic prefix")
            }
            Err(other) => panic!("cut {cut}: expected Truncated/BadMagic, got {other}"),
            Ok(_) => panic!("cut {cut}: truncated checkpoint decoded successfully"),
        }
    }
    assert_eq!(CampaignCheckpoint::from_bytes(&bytes).unwrap(), ck);
}

/// Single-byte corruption anywhere must never panic; it either surfaces a
/// typed error or decodes to a *different* value a resuming campaign will
/// reject through `validate_against` / pool-shape validation. (Flips inside
/// pool payload bytes are indistinguishable from legitimate data — those are
/// caught by the fingerprint/config checks, not the codec.)
#[test]
fn bit_flips_never_panic() {
    let ck = sample_checkpoint();
    let bytes = ck.to_bytes();
    for pos in 0..bytes.len() {
        let mut dented = bytes.clone();
        dented[pos] ^= 0x80;
        let _ = CampaignCheckpoint::from_bytes(&dented);
    }
}

#[test]
fn save_replaces_previous_checkpoint_atomically() {
    let dir = std::env::temp_dir().join(format!("fitact_ckpt_atomic_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("campaign.ckpt");

    let mut first = sample_checkpoint();
    first.save(&path).unwrap();
    // Second save over the same path: readers must see old-or-new, and after
    // the call returns, exactly the new state.
    first.completed_units.push(11);
    first.save(&path).unwrap();
    assert_eq!(CampaignCheckpoint::load(&path).unwrap(), first);

    std::fs::remove_dir_all(&dir).unwrap();
}

/// A crash between temp-write and rename leaves a torn temp file next to a
/// good checkpoint. Resume reads the real path (fine) and decoding the torn
/// temp itself is a typed error, not a panic.
#[test]
fn torn_temp_file_mid_rename_is_recoverable() {
    let dir = std::env::temp_dir().join(format!("fitact_ckpt_torn_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("campaign.ckpt");

    let ck = sample_checkpoint();
    ck.save(&path).unwrap();

    // Simulate the crashed writer: a half-written temp sibling.
    let bytes = ck.to_bytes();
    let torn = dir.join(".campaign.ckpt.99999.tmp");
    std::fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();

    assert_eq!(CampaignCheckpoint::load(&path).unwrap(), ck);
    assert!(matches!(
        CampaignCheckpoint::load(&torn),
        Err(IoError::Truncated { .. })
    ));
    // Missing checkpoint (first run) is a typed Io error, not a panic.
    assert!(matches!(
        CampaignCheckpoint::load(&dir.join("absent.ckpt")),
        Err(IoError::Io(_))
    ));

    std::fs::remove_dir_all(&dir).unwrap();
}
