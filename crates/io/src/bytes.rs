//! Endian-pinned binary encoding primitives.
//!
//! Every multi-byte value in a FitAct artifact is **little-endian**,
//! regardless of the host: artifacts written on any machine load on any
//! other. `f32` values travel as their raw IEEE-754 bit patterns
//! ([`f32::to_bits`] / [`f32::from_bits`]), so parameter tensors and
//! configuration scalars round-trip **bit-exactly** — including negative
//! zero, subnormals and any NaN payload a fault campaign may have left
//! behind.
//!
//! The reader is defensive: every read is bounds-checked against the
//! remaining input ([`IoError::Truncated`]), and length-prefixed sequences
//! verify that the declared element count fits in the remaining bytes
//! *before* allocating, so a corrupt length cannot trigger an
//! out-of-memory abort.

use crate::IoError;

/// An append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes verbatim.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64` little-endian.
    pub fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f32` as its raw bit pattern (bit-exact round-trip).
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Appends an `f64` as its raw bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `f32` slice (bit patterns).
    pub fn f32_slice(&mut self, values: &[f32]) {
        self.len(values.len());
        for &v in values {
            self.f32(v);
        }
    }

    /// Appends a length-prefixed `usize` slice (as `u64`s).
    pub fn usize_slice(&mut self, values: &[usize]) {
        self.len(values.len());
        for &v in values {
            self.u64(v as u64);
        }
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn u64_slice(&mut self, values: &[u64]) {
        self.len(values.len());
        for &v in values {
            self.u64(v);
        }
    }
}

/// A bounds-checked little-endian decoder over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns `true` once every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], IoError> {
        if self.remaining() < n {
            return Err(IoError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Truncated`] if fewer than `n` bytes remain.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], IoError> {
        self.take(n)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, IoError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Truncated`] if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, IoError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Truncated`] if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, IoError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `u64` length prefix and validates that `elem_size × len` more
    /// bytes could possibly follow, guarding allocations against corrupt
    /// counts.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Truncated`] for counts larger than the remaining
    /// input, [`IoError::Corrupt`] for counts beyond the address space.
    pub fn len(&mut self, elem_size: usize) -> Result<usize, IoError> {
        let raw = self.u64()?;
        let len = usize::try_from(raw)
            .map_err(|_| IoError::Corrupt(format!("length {raw} exceeds the address space")))?;
        let needed = len.checked_mul(elem_size.max(1)).ok_or_else(|| {
            IoError::Corrupt(format!("length {len} × {elem_size} bytes overflows"))
        })?;
        if self.remaining() < needed {
            return Err(IoError::Truncated {
                needed,
                remaining: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Reads an `f32` from its raw bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Truncated`] if fewer than 4 bytes remain.
    pub fn f32(&mut self) -> Result<f32, IoError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads an `f64` from its raw bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Truncated`] if fewer than 8 bytes remain.
    pub fn f64(&mut self) -> Result<f64, IoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Truncated`] on short input or [`IoError::Corrupt`]
    /// for invalid UTF-8.
    pub fn string(&mut self) -> Result<String, IoError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| IoError::Corrupt("string is not valid UTF-8".into()))
    }

    /// Reads a length-prefixed `f32` vector.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Truncated`] / [`IoError::Corrupt`] as for
    /// [`ByteReader::len`].
    pub fn f32_vec(&mut self) -> Result<Vec<f32>, IoError> {
        let len = self.len(4)?;
        (0..len).map(|_| self.f32()).collect()
    }

    /// Reads a length-prefixed `usize` vector (stored as `u64`s).
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Corrupt`] if any element exceeds the address space.
    pub fn usize_vec(&mut self) -> Result<Vec<usize>, IoError> {
        let len = self.len(8)?;
        (0..len)
            .map(|_| {
                let raw = self.u64()?;
                usize::try_from(raw)
                    .map_err(|_| IoError::Corrupt(format!("value {raw} exceeds the address space")))
            })
            .collect()
    }

    /// Reads a length-prefixed `u64` vector.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Truncated`] / [`IoError::Corrupt`] as for
    /// [`ByteReader::len`].
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, IoError> {
        let len = self.len(8)?;
        (0..len).map(|_| self.u64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f32(-0.0);
        w.f32(f32::from_bits(0x7FC0_1234)); // NaN with payload
        w.f64(1.0 / 3.0);
        w.string("λ-bounds");
        w.f32_slice(&[1.5, -2.25]);
        w.usize_slice(&[3, 0, 9]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.f32().unwrap().to_bits(), 0x7FC0_1234);
        assert_eq!(r.f64().unwrap(), 1.0 / 3.0);
        assert_eq!(r.string().unwrap(), "λ-bounds");
        assert_eq!(r.f32_vec().unwrap(), vec![1.5, -2.25]);
        assert_eq!(r.usize_vec().unwrap(), vec![3, 0, 9]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_are_typed() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(r.u32(), Err(IoError::Truncated { .. })));
        assert_eq!(r.remaining(), 2, "a failed read consumes nothing");
    }

    #[test]
    fn corrupt_length_does_not_allocate() {
        // A declared count of 2^60 f32s must fail before allocation.
        let mut w = ByteWriter::new();
        w.u64(1u64 << 60);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.f32_vec(), Err(IoError::Truncated { .. })));
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut w = ByteWriter::new();
        w.u32(2);
        w.raw(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.string(), Err(IoError::Corrupt(_))));
    }
}
