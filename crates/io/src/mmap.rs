//! A minimal read-only file mapping, `libc`-crate-free.
//!
//! The serving tier maps `.fitact` artifacts so every worker shares one
//! physical copy of the parameter blobs. Only the two syscalls actually
//! needed are declared here (`mmap` / `munmap`, via the platform C ABI);
//! the mapping is private and read-only, so writes through other handles
//! never fault this process and this process can never dirty the page
//! cache.
//!
//! Compiled only on 64-bit little-endian Unix — the cfg mirrors
//! [`crate::mapped`], which falls back to an owned in-memory decode
//! everywhere else.

use std::fs::File;
use std::io;
use std::os::fd::AsRawFd;
use std::os::raw::{c_int, c_void};
use std::ptr::NonNull;

const PROT_READ: c_int = 1;
const MAP_PRIVATE: c_int = 2;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> c_int;
}

/// A read-only, private memory mapping of an entire file.
///
/// The mapping lives until drop; [`Mapping::bytes`] borrows it, so the
/// usual lifetime rules keep views from outliving the pages.
pub(crate) struct Mapping {
    ptr: NonNull<c_void>,
    len: usize,
}

// The mapping is read-only and owned: sharing the view across threads is
// no different from sharing a `&[u8]` into a leaked allocation.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `file` read-only in its entirety.
    ///
    /// Fails on empty files (zero-length mappings are invalid) and
    /// propagates the OS error when the kernel refuses the mapping.
    pub(crate) fn map_readonly(file: &File) -> io::Result<Mapping> {
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::other("file exceeds the address space"))?;
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot map an empty file",
            ));
        }
        // SAFETY: a fresh PROT_READ + MAP_PRIVATE mapping of `len` bytes
        // backed by an open fd; a MAP_FAILED return is checked below and
        // the pointer is never used for writes.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as usize == usize::MAX {
            return Err(io::Error::last_os_error());
        }
        let ptr = NonNull::new(ptr).ok_or_else(|| io::Error::other("mmap returned null"))?;
        Ok(Mapping { ptr, len })
    }

    /// The mapped file contents.
    pub(crate) fn bytes(&self) -> &[u8] {
        // SAFETY: the pointer covers exactly `len` readable bytes for the
        // lifetime of `self`, and nothing in this process writes them.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr().cast::<u8>(), self.len) }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` are the exact values a successful mmap
        // returned, unmapped exactly once.
        unsafe {
            munmap(self.ptr.as_ptr(), self.len);
        }
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapping").field("len", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_whole_file_and_rejects_empty() {
        let dir = std::env::temp_dir().join(format!("fitact_mmap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.bin");
        std::fs::write(&path, [1u8, 2, 3, 4, 5]).unwrap();
        let map = Mapping::map_readonly(&File::open(&path).unwrap()).unwrap();
        assert_eq!(map.bytes(), &[1, 2, 3, 4, 5]);
        assert!(!format!("{map:?}").is_empty());
        drop(map);

        let empty = dir.join("empty.bin");
        std::fs::write(&empty, []).unwrap();
        assert!(Mapping::map_readonly(&File::open(&empty).unwrap()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
