//! Minimal JSON tree: parse, query and emit.
//!
//! The CI gates (`fitact diff-report`, `fitact bench-gate`) must *read* the
//! machine-readable reports the pipeline emits, and the build environment is
//! offline (no serde). This module implements the small JSON subset those
//! reports use: objects, arrays, strings, finite numbers, booleans and
//! null — which is all of standard JSON except exotic escapes (`\uXXXX` is
//! supported).
//!
//! Numbers parse into `f64`, matching how the reports are produced (Rust's
//! shortest-round-trip float formatting), so a value survives an emit →
//! parse cycle exactly.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, preserving key order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error, with
    /// its byte offset.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Looks up a key of an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Descends through a chain of object keys.
    pub fn path(&self, keys: &[&str]) -> Option<&JsonValue> {
        let mut current = self;
        for key in keys {
            current = current.get(key)?;
        }
        Some(current)
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(v) => f.write_str(&format_f64(*v)),
            JsonValue::String(s) => f.write_str(&escape_json_string(s)),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", escape_json_string(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Formats an `f64` for JSON: shortest round-trip decimal; non-finite values
/// (illegal in JSON) become `null`.
pub fn format_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Escapes and quotes a string for JSON output.
pub fn escape_json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Maximum container nesting the parser accepts. The recursive-descent
/// `value → array/object → value` cycle consumes stack per level, and parse
/// input is not always trusted (`fitact serve` feeds request bodies here),
/// so depth must be bounded the same way the artifact decoder bounds its
/// spec tree — a typed error, never a stack overflow.
const MAX_JSON_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(open @ (b'{' | b'[')) => {
                if self.depth >= MAX_JSON_DEPTH {
                    return Err(format!(
                        "nesting deeper than {MAX_JSON_DEPTH} at byte {}",
                        self.pos
                    ));
                }
                self.depth += 1;
                let value = if open == b'{' {
                    self.object()
                } else {
                    self.array()
                };
                self.depth -= 1;
                value
            }
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid \\u code point".to_string())?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_emit_round_trip() {
        let doc = r#"{"a": 1.5, "b": [true, false, null], "s": "x\"y\n", "nested": {"k": -3e-2}}"#;
        let value = JsonValue::parse(doc).unwrap();
        assert_eq!(value.path(&["nested", "k"]).unwrap().as_f64(), Some(-0.03));
        assert_eq!(value.get("s").unwrap().as_str(), Some("x\"y\n"));
        assert_eq!(value.get("b").unwrap().as_array().unwrap().len(), 3);
        // Emit → parse is stable.
        let emitted = value.to_string();
        assert_eq!(JsonValue::parse(&emitted).unwrap(), value);
    }

    #[test]
    fn numbers_survive_shortest_roundtrip_formatting() {
        for v in [0.123456789012345_f64, 4.871, 1e-6, -0.0, 1.0 / 3.0] {
            let text = format_f64(v);
            let parsed = JsonValue::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn syntax_errors_are_reported() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1..2"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn hostile_nesting_is_a_typed_error_not_a_stack_overflow() {
        // Depth just under the cap parses; just past it fails cleanly.
        let ok = format!(
            "{}0{}",
            "[".repeat(MAX_JSON_DEPTH),
            "]".repeat(MAX_JSON_DEPTH)
        );
        assert!(JsonValue::parse(&ok).is_ok());
        let deep = format!(
            "{}0{}",
            "[".repeat(MAX_JSON_DEPTH + 1),
            "]".repeat(MAX_JSON_DEPTH + 1)
        );
        let err = JsonValue::parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // A network-scale bracket bomb (the /predict attack shape) must
        // error, not blow the connection thread's stack.
        let bomb = "[".repeat(200_000);
        assert!(JsonValue::parse(&bomb).is_err());
        let object_bomb = "{\"k\":".repeat(200_000);
        assert!(JsonValue::parse(&object_bomb).is_err());
    }

    #[test]
    fn unicode_escape_and_control_escaping() {
        let value = JsonValue::parse(r#""éA""#).unwrap();
        assert_eq!(value.as_str(), Some("éA"));
        let emitted = JsonValue::String("a\u{1}b".into()).to_string();
        assert_eq!(emitted, "\"a\\u0001b\"");
        assert_eq!(
            JsonValue::parse(&emitted).unwrap().as_str(),
            Some("a\u{1}b")
        );
    }
}
