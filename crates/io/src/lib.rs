//! Versioned on-disk model artifacts for the FitAct reproduction.
//!
//! The paper's workflow is two-phase — train once, then calibrate / protect /
//! campaign many times — and this crate supplies the missing substrate: a
//! binary [`ModelArtifact`] that persists a [`fitact_nn::Network`]'s topology
//! and parameters **plus** the FitAct protection state (the calibrated
//! [`fitact::ActivationProfile`], the applied [`fitact::ProtectionScheme`]
//! and, through the parameter tensors, every per-neuron FitReLU bound λ).
//!
//! The format is endian-pinned (everything little-endian) and carries `f32`
//! values as raw bit patterns, so a saved-then-loaded model reproduces the
//! original's eval-mode forward passes, accuracy numbers and fault-campaign
//! reports **bit-identically** — pinned by this crate's round-trip suites
//! and the workspace `artifact_identity` test.
//!
//! Components:
//!
//! * [`ModelArtifact`] — capture / instantiate / save / load ([`artifact`]
//!   documents the byte layout and versioning policy),
//! * [`MappedArtifact`] — zero-copy loading: v2 artifacts are mapped
//!   read-only, and every network instantiated from one shares a single
//!   parameter mapping ([`mapped`] documents the fallback ladder and the
//!   atomic-rename deployment contract),
//! * [`bytes`] — the endian-pinned encoding primitives with typed,
//!   allocation-guarded decoding errors,
//! * [`CampaignCheckpoint`] — resumable campaign-state snapshots
//!   (atomic-rename publication, typed torn-file errors; [`campaign_state`]
//!   documents the crash-safety contract),
//! * [`json`] — a minimal JSON parse/emit tree for the machine-readable
//!   reports the `fitact` CLI exchanges with CI gates,
//! * [`golden`] — train-once/load-forever artifact caching for tests,
//!   examples and benches.
//!
//! # Example
//!
//! ```
//! use fitact_io::ModelArtifact;
//! use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
//! use fitact_nn::{Mode, Network};
//! use fitact_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = Network::new(
//!     "mlp",
//!     Sequential::new()
//!         .with(Box::new(Linear::new(4, 8, &mut rng)))
//!         .with(Box::new(ActivationLayer::relu("h", &[8])))
//!         .with(Box::new(Linear::new(8, 3, &mut rng))),
//! );
//! let artifact = ModelArtifact::capture(&net)?;
//! let mut reloaded = ModelArtifact::from_bytes(&artifact.to_bytes())?.instantiate()?;
//! let x = Tensor::ones(&[2, 4]);
//! assert_eq!(reloaded.forward(&x, Mode::Eval)?, net.forward(&x, Mode::Eval)?);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod artifact;
pub mod bytes;
pub mod campaign_state;
pub mod golden;
pub mod json;
pub mod mapped;
#[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
mod mmap;

pub use artifact::{
    ModelArtifact, SavedNative, SavedParam, BLOB_ALIGN, FILE_EXTENSION, FORMAT_VERSION,
    FORMAT_VERSION_NATIVE, MAGIC,
};
pub use campaign_state::{
    fingerprint_bytes, CampaignCheckpoint, CampaignSpec, CAMPAIGN_SPEC_MAGIC, CAMPAIGN_STATE_MAGIC,
    CAMPAIGN_STATE_MIN_VERSION, CAMPAIGN_STATE_VERSION,
};
pub use json::JsonValue;
pub use mapped::MappedArtifact;

use std::error::Error;
use std::fmt;

/// Errors produced while encoding, decoding or instantiating artifacts.
#[derive(Debug)]
pub enum IoError {
    /// The input does not start with the artifact magic.
    BadMagic,
    /// The artifact was written by an incompatible format revision.
    UnsupportedVersion(u32),
    /// The input ended before a value could be read.
    Truncated {
        /// Bytes the pending read required.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The input is structurally invalid (unknown tag, bad UTF-8, shape/data
    /// disagreement, trailing garbage).
    Corrupt(String),
    /// A filesystem operation failed.
    Io(std::io::Error),
    /// The network rejected the topology or does not support serialisation.
    Nn(fitact_nn::NnError),
    /// The saved parameter list does not line up with the rebuilt network.
    Mismatch(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::BadMagic => write!(f, "not a FitAct artifact (bad magic)"),
            IoError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported artifact format version {v} (this build reads versions 1 through {FORMAT_VERSION_NATIVE})"
                )
            }
            IoError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "artifact truncated: needed {needed} more bytes, {remaining} remaining"
                )
            }
            IoError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
            IoError::Io(e) => write!(f, "artifact i/o failed: {e}"),
            IoError::Nn(e) => write!(f, "network reconstruction failed: {e}"),
            IoError::Mismatch(msg) => {
                write!(f, "artifact does not match its own topology: {msg}")
            }
        }
    }
}

impl Error for IoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<fitact_nn::NnError> for IoError {
    fn from(e: fitact_nn::NnError) -> Self {
        IoError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        assert!(!IoError::BadMagic.to_string().is_empty());
        assert!(IoError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(IoError::Truncated {
            needed: 8,
            remaining: 3
        }
        .to_string()
        .contains('8'));
        assert!(!IoError::Corrupt("x".into()).to_string().is_empty());
        assert!(!IoError::Mismatch("y".into()).to_string().is_empty());
        let e = IoError::from(std::io::Error::other("disk on fire"));
        assert!(Error::source(&e).is_some());
        let e = IoError::from(fitact_nn::NnError::InvalidConfig("z".into()));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&IoError::BadMagic).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IoError>();
    }
}
