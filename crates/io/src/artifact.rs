//! The versioned model artifact: topology + parameters + protection state.
//!
//! # Layout (format version 2, all values little-endian)
//!
//! ```text
//! header     32 bytes, fixed:
//!   magic      8 × u8   = "FITACTRS"
//!   version    u32      = 2
//!   align      u32      = 64          (blob alignment, power of two)
//!   total_len  u64                    (exact file size in bytes)
//!   head_len   u64                    (head size in bytes, starts at 32)
//! head       head_len bytes:
//!   name       string                 (network name, e.g. "mlp")
//!   meta       u32 count, count × (string key, string value)
//!                                     (keys must be unique; duplicates are
//!                                      rejected as Corrupt)
//!   topology   u32 count, count × LayerSpec   (tagged, recursive)
//!   params     u32 count, count × { string path; u8 trainable; u64[] dims;
//!                                   u64 blob_offset; u64 blob_len }
//!                                     (blob_offset = absolute byte offset,
//!                                      a multiple of align; blob_len =
//!                                      element count, so the blob spans
//!                                      4 × blob_len bytes)
//!   profile    u8 present, [ u32 slots × { string label; u64[] feature_shape;
//!                                          f32 layer_max; f32[] per_neuron_max } ]
//!   scheme     u8 present, [ u8 tag; f32 slope ]
//! padding    zero bytes up to the first blob offset
//! blobs      raw little-endian f32 values, each blob align-padded
//! ```
//!
//! Parameter values live in alignment-padded blobs *after* the head instead
//! of inline, so a v2 file can be mapped read-only and every blob viewed as
//! an aligned `&[f32]` without copying — see [`crate::MappedArtifact`]. The
//! file ends exactly at `total_len`; shorter input is
//! [`IoError::Truncated`], longer input is [`IoError::Corrupt`].
//!
//! # Format version 3 — native reduced-precision blobs
//!
//! Version 3 is the v2 layout with one change: each param record carries a
//! `dtype` tag (`u8`, between `trainable` and `dims`) selecting the blob
//! encoding, plus a `u32` channel count for int8 records:
//!
//! ```text
//!   dtype 0  f32   blob = numel × 4 bytes, little-endian IEEE-754
//!   dtype 1  f16   blob = numel × 2 bytes, raw binary16 words
//!   dtype 2  int8  blob = numel × 1 byte (quantised values, two's
//!                  complement), then channels × 4 bytes (f32 scales), then
//!                  channels × 1 byte (i8 zero-points)
//! ```
//!
//! `blob_len` stays the *element count* in every encoding; the byte span is
//! derived from the dtype. A writer only stamps version 3 when some
//! parameter actually uses a native encoding — an all-f32 artifact encodes
//! byte-identically to format version 2, so v2 readers and goldens are
//! unaffected. f16 blobs keep the 64-byte alignment and can be viewed
//! zero-copy as `&[u16]` from a mapping; int8 blobs are decoded owned.
//!
//! Format version 1 (the previous revision, parameters inline as `f32[]`
//! directly in the param records, no fixed header) is still decoded by
//! [`ModelArtifact::from_bytes`] and can be written with
//! [`ModelArtifact::to_bytes_v1`] for downgrade interchange (native params
//! are downgraded to their exact f32 decode).
//!
//! `string` = `u32` length + UTF-8 bytes; `T[]` = `u64` length + elements;
//! `f32` values are raw IEEE-754 bit patterns (see [`crate::bytes`]).
//!
//! # Versioning policy
//!
//! The format version is bumped whenever the layout changes incompatibly;
//! loaders reject any version they were not built for with
//! [`IoError::UnsupportedVersion`] rather than guessing. Tag spaces (layer
//! specs, activation kinds, protection schemes) are append-only, so adding a
//! new layer type does *not* bump the version — old readers fail on the
//! unknown tag with a typed [`IoError::Corrupt`].
//!
//! # Fidelity contract
//!
//! [`ModelArtifact::capture`] followed by [`ModelArtifact::instantiate`]
//! yields a network whose eval-mode [`Network::forward`] outputs — and
//! therefore accuracy numbers and fault-campaign reports — are
//! **bit-identical** to the original's, for protected and unprotected
//! models alike. This is pinned by the round-trip test suites.

use crate::bytes::{ByteReader, ByteWriter};
use crate::IoError;
use fitact::calibration::{ActivationProfile, SlotProfile};
use fitact::{ProtectedActivations, ProtectionScheme};
use fitact_nn::spec::{ActivationSpec, LayerSpec};
use fitact_nn::Network;
use fitact_tensor::Tensor;
use std::path::Path;

/// The artifact file magic.
pub const MAGIC: [u8; 8] = *b"FITACTRS";

/// The artifact format version this build writes for all-f32 models (it
/// reads versions 1, 2 and 3).
pub const FORMAT_VERSION: u32 = 2;

/// The artifact format version stamped when any parameter is stored in a
/// native reduced-precision encoding (f16 / int8 blobs).
pub const FORMAT_VERSION_NATIVE: u32 = 3;

// Param-record dtype tags (format version 3; append-only).
const DTYPE_F32: u8 = 0;
const DTYPE_F16: u8 = 1;
const DTYPE_INT8: u8 = 2;

/// Byte alignment of every parameter blob in a v2 artifact.
///
/// 64 covers the widest SIMD lanes and cache lines in common use, and —
/// because mappings are page-aligned — guarantees every blob is a validly
/// aligned `&[f32]` view into the mapped file.
pub const BLOB_ALIGN: usize = 64;

/// Size in bytes of the fixed v2 header (magic, version, align, `total_len`,
/// `head_len`).
pub(crate) const V2_HEADER_LEN: usize = 32;

/// Rounds `n` up to the next multiple of `align` (a power of two).
fn align_up(n: usize, align: usize) -> usize {
    (n + align - 1) & !(align - 1)
}

/// Conventional file extension for artifacts (`model.fitact`).
pub const FILE_EXTENSION: &str = "fitact";

/// A parameter's native reduced-precision payload (format version 3).
#[derive(Debug, Clone, PartialEq)]
pub enum SavedNative {
    /// Raw IEEE-754 binary16 words, row-major.
    F16(Vec<u16>),
    /// Per-channel affine int8 quantisation (channel = leading dim).
    Int8 {
        /// Quantised values, row-major.
        q: Vec<i8>,
        /// One decode scale per channel.
        scales: Vec<f32>,
        /// One zero-point per channel.
        zero_points: Vec<i8>,
    },
}

/// One parameter tensor, keyed by its deterministic traversal path.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedParam {
    /// Slash-separated traversal path (e.g. `"0/weight"`).
    pub path: String,
    /// Whether the optimiser may update the parameter.
    pub trainable: bool,
    /// Tensor shape.
    pub dims: Vec<usize>,
    /// Row-major values. Empty when the parameter is stored natively in
    /// `native` instead.
    pub data: Vec<f32>,
    /// Reduced-precision payload; `None` for ordinary f32 parameters.
    pub native: Option<SavedNative>,
}

impl SavedParam {
    /// Logical number of scalar values, regardless of storage encoding.
    pub fn numel(&self) -> usize {
        match &self.native {
            Some(SavedNative::F16(words)) => words.len(),
            Some(SavedNative::Int8 { q, .. }) => q.len(),
            None => self.data.len(),
        }
    }

    /// The v3 dtype tag of this parameter's blob.
    fn dtype_tag(&self) -> u8 {
        match &self.native {
            None => DTYPE_F32,
            Some(SavedNative::F16(_)) => DTYPE_F16,
            Some(SavedNative::Int8 { .. }) => DTYPE_INT8,
        }
    }

    /// Exact byte span of this parameter's blob on disk.
    fn blob_byte_len(&self) -> usize {
        match &self.native {
            None => 4 * self.data.len(),
            Some(SavedNative::F16(words)) => 2 * words.len(),
            Some(SavedNative::Int8 { q, scales, .. }) => q.len() + 5 * scales.len(),
        }
    }

    /// The parameter values decoded to f32 (exact kernel arithmetic for
    /// native encodings).
    pub fn f32_values(&self) -> Vec<f32> {
        match &self.native {
            None => self.data.clone(),
            Some(SavedNative::F16(words)) => fitact_tensor::half::decode_f16_slice(words),
            Some(SavedNative::Int8 {
                q,
                scales,
                zero_points,
            }) => fitact_tensor::Int8Param::from_parts(
                q.clone(),
                scales.clone(),
                zero_points.clone(),
                &self.dims,
            )
            .expect("validated on capture/decode")
            .dequantize(),
        }
    }
}

/// A complete serializable model: topology, parameters and the FitAct
/// protection state (calibration profile + scheme), plus free-form metadata
/// (dataset provenance, pipeline stage, …).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArtifact {
    /// The network's name.
    pub name: String,
    /// Free-form key/value metadata, preserved in insertion order.
    pub meta: Vec<(String, String)>,
    /// Topology descriptors of the top-level layers.
    pub layers: Vec<LayerSpec>,
    /// Every parameter tensor, in traversal order.
    pub params: Vec<SavedParam>,
    /// The calibrated activation profile, once the calibrate stage has run.
    pub profile: Option<ActivationProfile>,
    /// The applied protection scheme, once the protect stage has run.
    pub scheme: Option<ProtectionScheme>,
}

impl ModelArtifact {
    /// Captures a network's topology and parameters.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Nn`] if any layer or activation does not support
    /// serialisation (ephemeral wrappers installed by profiling or fault
    /// injection).
    pub fn capture(network: &Network) -> Result<Self, IoError> {
        let layers = network.to_spec()?;
        let mut params = Vec::new();
        network.visit_params(&mut |path, p| {
            let native = p.native().map(|n| match n {
                fitact_tensor::NativeParam::F16(w) => SavedNative::F16(w.words().to_vec()),
                fitact_tensor::NativeParam::Int8(w) => SavedNative::Int8 {
                    q: w.q().to_vec(),
                    scales: w.scales().to_vec(),
                    zero_points: w.zero_points().to_vec(),
                },
            });
            params.push(SavedParam {
                path: path.to_owned(),
                trainable: p.trainable(),
                dims: p.dims(),
                data: if native.is_some() {
                    Vec::new()
                } else {
                    p.data().as_slice().to_vec()
                },
                native,
            });
        });
        Ok(ModelArtifact {
            name: network.name().to_owned(),
            meta: Vec::new(),
            layers,
            params,
            profile: None,
            scheme: None,
        })
    }

    /// Builder-style attachment of a calibration profile.
    #[must_use]
    pub fn with_profile(mut self, profile: ActivationProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Builder-style attachment of the applied protection scheme.
    #[must_use]
    pub fn with_scheme(mut self, scheme: ProtectionScheme) -> Self {
        self.scheme = Some(scheme);
        self
    }

    /// Sets (or replaces) a metadata key.
    pub fn set_meta(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        let value = value.into();
        match self.meta.iter_mut().find(|(k, _)| *k == key) {
            Some(entry) => entry.1 = value,
            None => self.meta.push((key, value)),
        }
    }

    /// Looks up a metadata key.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Total number of scalar parameter values (logical count, independent
    /// of the storage encoding).
    pub fn num_parameters(&self) -> usize {
        self.params.iter().map(SavedParam::numel).sum()
    }

    /// The format version [`ModelArtifact::to_bytes`] will stamp: 2 for an
    /// all-f32 model (byte-identical to the previous revision), 3 when any
    /// parameter is stored in a native reduced-precision encoding.
    pub fn format_version(&self) -> u32 {
        if self.params.iter().any(|p| p.native.is_some()) {
            FORMAT_VERSION_NATIVE
        } else {
            FORMAT_VERSION
        }
    }

    /// Rebuilds the network: topology from the specs, then every parameter
    /// tensor restored bit-exactly in traversal order.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Nn`] for unreconstructible topology and
    /// [`IoError::Mismatch`] when the saved parameter list does not line up
    /// with the rebuilt network (wrong count, path or shape) — which means
    /// the artifact was hand-edited or the format contract was broken.
    pub fn instantiate(&self) -> Result<Network, IoError> {
        instantiate_with(&self.name, &self.layers, self)
    }

    /// Encodes the artifact into its binary form: head followed by
    /// alignment-padded parameter blobs. All-f32 models encode as format
    /// version 2 (byte-identical to the previous revision); models with
    /// native f16/int8 parameters encode as version 3 (see the module docs).
    pub fn to_bytes(&self) -> Vec<u8> {
        let version = self.format_version();
        // Two-pass: encode the head once with placeholder offsets to learn
        // its length (offsets are fixed-width `u64`s, so the real head is
        // byte-for-byte the same size), then lay the blobs out after it.
        let placeholder = vec![0u64; self.params.len()];
        let head_len = self.encode_blob_head(&placeholder, version).len();
        let mut offsets = Vec::with_capacity(self.params.len());
        let mut cursor = V2_HEADER_LEN + head_len;
        for p in &self.params {
            let offset = align_up(cursor, BLOB_ALIGN);
            offsets.push(offset as u64);
            cursor = offset + p.blob_byte_len();
        }
        let total_len = cursor;
        let head = self.encode_blob_head(&offsets, version);
        debug_assert_eq!(head.len(), head_len);
        let mut out = Vec::with_capacity(total_len);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&(BLOB_ALIGN as u32).to_le_bytes());
        out.extend_from_slice(&(total_len as u64).to_le_bytes());
        out.extend_from_slice(&(head_len as u64).to_le_bytes());
        out.extend_from_slice(&head);
        for (p, &offset) in self.params.iter().zip(&offsets) {
            out.resize(offset as usize, 0); // zero padding up to the blob
            match &p.native {
                None => {
                    for v in &p.data {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
                Some(SavedNative::F16(words)) => {
                    for w in words {
                        out.extend_from_slice(&w.to_le_bytes());
                    }
                }
                Some(SavedNative::Int8 {
                    q,
                    scales,
                    zero_points,
                }) => {
                    out.extend(q.iter().map(|&v| v as u8));
                    for s in scales {
                        out.extend_from_slice(&s.to_le_bytes());
                    }
                    out.extend(zero_points.iter().map(|&v| v as u8));
                }
            }
        }
        debug_assert_eq!(out.len(), total_len);
        out
    }

    /// Encodes the v2/v3 head (everything between the fixed header and the
    /// first blob) with the given per-parameter blob offsets. Version 3
    /// inserts a dtype tag (and an int8 channel count) per param record;
    /// version 2 is the tag-free legacy layout.
    fn encode_blob_head(&self, offsets: &[u64], version: u32) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.write_head_prefix(&mut w);
        w.u32(self.params.len() as u32);
        for (p, &offset) in self.params.iter().zip(offsets) {
            w.string(&p.path);
            w.u8(u8::from(p.trainable));
            if version >= FORMAT_VERSION_NATIVE {
                w.u8(p.dtype_tag());
                if let Some(SavedNative::Int8 { scales, .. }) = &p.native {
                    w.u32(scales.len() as u32);
                }
            }
            w.usize_slice(&p.dims);
            w.u64(offset);
            w.u64(p.numel() as u64);
        }
        self.write_head_trailer(&mut w);
        w.into_bytes()
    }

    /// Encodes the artifact in the legacy v1 layout (parameter values inline
    /// in the param records, no fixed header), for downgrade interchange
    /// with older readers. [`ModelArtifact::from_bytes`] decodes both.
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.raw(&MAGIC);
        w.u32(1);
        self.write_head_prefix(&mut w);
        w.u32(self.params.len() as u32);
        for p in &self.params {
            w.string(&p.path);
            w.u8(u8::from(p.trainable));
            w.usize_slice(&p.dims);
            // v1 is f32-only: native params downgrade to their exact decode.
            match &p.native {
                None => w.f32_slice(&p.data),
                Some(_) => w.f32_slice(&p.f32_values()),
            }
        }
        self.write_head_trailer(&mut w);
        w.into_bytes()
    }

    /// Writes the head sections shared by v1 and v2: name, metadata and
    /// topology.
    fn write_head_prefix(&self, w: &mut ByteWriter) {
        w.string(&self.name);
        w.u32(self.meta.len() as u32);
        for (k, v) in &self.meta {
            w.string(k);
            w.string(v);
        }
        w.u32(self.layers.len() as u32);
        for layer in &self.layers {
            write_layer_spec(w, layer);
        }
    }

    /// Writes the head sections shared by v1 and v2: calibration profile
    /// and protection scheme.
    fn write_head_trailer(&self, w: &mut ByteWriter) {
        match &self.profile {
            Some(profile) => {
                w.u8(1);
                w.u32(profile.slots.len() as u32);
                for slot in &profile.slots {
                    w.string(&slot.label);
                    w.usize_slice(&slot.feature_shape);
                    w.f32(slot.layer_max);
                    w.f32_slice(&slot.per_neuron_max);
                }
            }
            None => w.u8(0),
        }
        match &self.scheme {
            Some(scheme) => {
                let (tag, slope) = scheme.to_tag();
                w.u8(1);
                w.u8(tag);
                w.f32(slope);
            }
            None => w.u8(0),
        }
    }

    /// Decodes an artifact from its binary form (format version 1 or 2).
    ///
    /// # Errors
    ///
    /// Returns [`IoError::BadMagic`] for non-artifact input,
    /// [`IoError::UnsupportedVersion`] for artifacts from an incompatible
    /// format revision, [`IoError::Truncated`] for short input and
    /// [`IoError::Corrupt`] for structurally invalid content (unknown tags,
    /// shape/data disagreements, trailing garbage).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IoError> {
        let mut r = ByteReader::new(bytes);
        if r.raw(8)? != MAGIC {
            return Err(IoError::BadMagic);
        }
        match r.u32()? {
            1 => Self::from_bytes_v1(r),
            2 | 3 => {
                let head = decode_v2(bytes)?;
                // Copy every blob out into an owned buffer, byte-wise so the
                // owned decode path stays endian-correct everywhere.
                let params = head
                    .params
                    .into_iter()
                    .map(|p| {
                        let raw = &bytes[p.byte_offset..p.byte_offset + p.byte_len()];
                        let (data, native) = match p.encoding {
                            BlobEncoding::F32 => (
                                raw.chunks_exact(4)
                                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                                    .collect(),
                                None,
                            ),
                            BlobEncoding::F16 => (
                                Vec::new(),
                                Some(SavedNative::F16(
                                    raw.chunks_exact(2)
                                        .map(|c| u16::from_le_bytes([c[0], c[1]]))
                                        .collect(),
                                )),
                            ),
                            BlobEncoding::Int8 { channels } => {
                                let (qraw, rest) = raw.split_at(p.numel);
                                let (sraw, zraw) = rest.split_at(4 * channels);
                                (
                                    Vec::new(),
                                    Some(SavedNative::Int8 {
                                        q: qraw.iter().map(|&b| b as i8).collect(),
                                        scales: sraw
                                            .chunks_exact(4)
                                            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                                            .collect(),
                                        zero_points: zraw.iter().map(|&b| b as i8).collect(),
                                    }),
                                )
                            }
                        };
                        SavedParam {
                            path: p.path,
                            trainable: p.trainable,
                            dims: p.dims,
                            data,
                            native,
                        }
                    })
                    .collect();
                Ok(ModelArtifact {
                    name: head.name,
                    meta: head.meta,
                    layers: head.layers,
                    params,
                    profile: head.profile,
                    scheme: head.scheme,
                })
            }
            other => Err(IoError::UnsupportedVersion(other)),
        }
    }

    /// Decodes the legacy v1 body; `r` is positioned just past the version.
    fn from_bytes_v1(mut r: ByteReader<'_>) -> Result<Self, IoError> {
        let name = r.string()?;
        let meta = read_meta(&mut r)?;
        let layers = read_layer_list(&mut r)?;
        let param_count = r.u32()? as usize;
        let mut params = Vec::with_capacity(param_count.min(1024));
        for _ in 0..param_count {
            let path = r.string()?;
            let trainable = r.u8()? != 0;
            let dims = r.usize_vec()?;
            let data = r.f32_vec()?;
            // Checked: dims are untrusted values (the length guards above
            // only bound element *counts*), so the product must not be
            // allowed to overflow-panic or wrap.
            let numel = checked_numel(&path, &dims)?;
            if numel != data.len() {
                return Err(IoError::Corrupt(format!(
                    "parameter `{path}` declares shape {dims:?} ({numel} values) but carries {}",
                    data.len()
                )));
            }
            params.push(SavedParam {
                path,
                trainable,
                dims,
                data,
                native: None,
            });
        }
        let profile = read_profile(&mut r)?;
        let scheme = read_scheme(&mut r)?;
        if !r.is_exhausted() {
            return Err(IoError::Corrupt(format!(
                "{} trailing bytes after the artifact",
                r.remaining()
            )));
        }
        Ok(ModelArtifact {
            name,
            meta,
            layers,
            params,
            profile,
            scheme,
        })
    }

    /// Writes the artifact to a file.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), IoError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads an artifact from a file.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Io`] on filesystem failure, plus every
    /// [`ModelArtifact::from_bytes`] decoding error.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, IoError> {
        let bytes = std::fs::read(path)?;
        ModelArtifact::from_bytes(&bytes)
    }

    /// Convenience: captures `network` together with its protection state.
    ///
    /// # Errors
    ///
    /// As for [`ModelArtifact::capture`].
    pub fn capture_protected(
        network: &Network,
        profile: Option<&ActivationProfile>,
        scheme: Option<ProtectionScheme>,
    ) -> Result<Self, IoError> {
        let mut artifact = ModelArtifact::capture(network)?;
        artifact.profile = profile.cloned();
        artifact.scheme = scheme;
        Ok(artifact)
    }
}

/// The number of scalar parameter values the layer built from `spec` will
/// allocate, with checked arithmetic (`None` on overflow).
///
/// Must agree exactly with what each constructor allocates — the match is
/// exhaustive, so adding a [`LayerSpec`] variant forces an update here, and
/// the round-trip suites fail loudly if the count drifts.
fn spec_param_numel(spec: &LayerSpec) -> Option<u128> {
    let mul = |a: usize, b: usize| (a as u128).checked_mul(b as u128);
    match spec {
        LayerSpec::Linear {
            in_features,
            out_features,
        } => {
            // weight [out, in] + bias [out]
            mul(*out_features, *in_features)?.checked_add(*out_features as u128)
        }
        LayerSpec::Conv2d {
            in_channels,
            out_channels,
            kernel,
            ..
        } => {
            // weight [oc, ic, k, k] + bias [oc]
            mul(*in_channels, *kernel)?
                .checked_mul(*kernel as u128)?
                .checked_mul(*out_channels as u128)?
                .checked_add(*out_channels as u128)
        }
        // gamma + beta + running mean + running var
        LayerSpec::BatchNorm2d { channels } => mul(*channels, 4),
        LayerSpec::Activation { activation, .. } => match activation.kind.as_str() {
            // One λ word per neuron / channel; the counts are the builder's
            // ints[0] payload (validated again at construction).
            "fitrelu" | "fitrelu_naive" | "channel_relu" => {
                Some(activation.ints.first().copied().unwrap_or(0) as u128)
            }
            _ => Some(0),
        },
        LayerSpec::Dropout { .. }
        | LayerSpec::Flatten
        | LayerSpec::MaxPool2d { .. }
        | LayerSpec::GlobalAvgPool => Some(0),
        LayerSpec::Sequential(children) => children
            .iter()
            .try_fold(0u128, |acc, c| acc.checked_add(spec_param_numel(c)?)),
        LayerSpec::Bottleneck {
            main,
            shortcut,
            final_act,
        } => {
            let mut total = main
                .iter()
                .try_fold(0u128, |acc, c| acc.checked_add(spec_param_numel(c)?))?;
            if let Some(children) = shortcut {
                for c in children {
                    total = total.checked_add(spec_param_numel(c)?)?;
                }
            }
            total.checked_add(spec_param_numel(final_act)?)
        }
    }
}

/// Restores a parameter snapshot-compatible tensor from a [`SavedParam`].
pub fn saved_param_tensor(p: &SavedParam) -> Result<Tensor, IoError> {
    Tensor::from_vec(p.data.clone(), &p.dims)
        .map_err(|e| IoError::Corrupt(format!("parameter `{}` is not a tensor: {e}", p.path)))
}

/// The checked product of untrusted dims (the length guards in
/// [`ByteReader`] only bound element *counts*, so the product must not be
/// allowed to overflow-panic or wrap).
fn checked_numel(path: &str, dims: &[usize]) -> Result<usize, IoError> {
    dims.iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or_else(|| {
            IoError::Corrupt(format!(
                "parameter `{path}` declares an overflowing shape {dims:?}"
            ))
        })
}

fn read_meta(r: &mut ByteReader<'_>) -> Result<Vec<(String, String)>, IoError> {
    let meta_count = r.u32()? as usize;
    let mut meta = Vec::with_capacity(meta_count.min(1024));
    for _ in 0..meta_count {
        let k = r.string()?;
        let v = r.string()?;
        // Keys are unique by construction ([`ModelArtifact::set_meta`]
        // replaces); duplicates in the wire format mean the artifact was
        // produced by something else, and silently keeping one of the
        // two values would make `meta()` lookups writer-dependent.
        if meta
            .iter()
            .any(|(existing, _): &(String, String)| *existing == k)
        {
            return Err(IoError::Corrupt(format!("duplicate metadata key `{k}`")));
        }
        meta.push((k, v));
    }
    Ok(meta)
}

fn read_layer_list(r: &mut ByteReader<'_>) -> Result<Vec<LayerSpec>, IoError> {
    let layer_count = r.u32()? as usize;
    let mut layers = Vec::with_capacity(layer_count.min(1024));
    for _ in 0..layer_count {
        layers.push(read_layer_spec(r, 0)?);
    }
    Ok(layers)
}

fn read_profile(r: &mut ByteReader<'_>) -> Result<Option<ActivationProfile>, IoError> {
    if r.u8()? == 0 {
        return Ok(None);
    }
    let slot_count = r.u32()? as usize;
    let mut slots = Vec::with_capacity(slot_count.min(1024));
    for _ in 0..slot_count {
        let label = r.string()?;
        let feature_shape = r.usize_vec()?;
        let layer_max = r.f32()?;
        let per_neuron_max = r.f32_vec()?;
        slots.push(SlotProfile {
            label,
            feature_shape,
            per_neuron_max,
            layer_max,
        });
    }
    Ok(Some(ActivationProfile { slots }))
}

fn read_scheme(r: &mut ByteReader<'_>) -> Result<Option<ProtectionScheme>, IoError> {
    if r.u8()? == 0 {
        return Ok(None);
    }
    let tag = r.u8()?;
    let slope = r.f32()?;
    ProtectionScheme::from_tag(tag, slope)
        .map(Some)
        .ok_or_else(|| IoError::Corrupt(format!("unknown protection-scheme tag {tag}")))
}

/// Blob storage encoding of one v2/v3 parameter record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlobEncoding {
    /// 4 bytes per element, little-endian IEEE-754 binary32.
    F32,
    /// 2 bytes per element, raw binary16 words.
    F16,
    /// 1 byte per element plus `channels` trailing (f32 scale, i8 zero-point)
    /// pairs.
    Int8 {
        /// Quantisation channel count (= leading dim).
        channels: usize,
    },
}

impl BlobEncoding {
    /// Exact byte span of a blob holding `numel` elements.
    pub(crate) fn byte_len(self, numel: usize) -> Option<usize> {
        match self {
            BlobEncoding::F32 => numel.checked_mul(4),
            BlobEncoding::F16 => numel.checked_mul(2),
            BlobEncoding::Int8 { channels } => numel.checked_add(channels.checked_mul(5)?),
        }
    }
}

/// One parameter record of a decoded v2/v3 head: shape plus the location of
/// its blob inside the file, with the values themselves left in place.
#[derive(Debug, Clone)]
pub(crate) struct V2Param {
    pub(crate) path: String,
    pub(crate) trainable: bool,
    pub(crate) dims: Vec<usize>,
    /// Blob storage encoding ([`BlobEncoding::F32`] in every v2 file).
    pub(crate) encoding: BlobEncoding,
    /// Absolute byte offset of the blob, a multiple of the file's alignment.
    pub(crate) byte_offset: usize,
    /// Logical element count of the blob (the byte span depends on the
    /// encoding; see [`V2Param::byte_len`]).
    pub(crate) numel: usize,
}

impl V2Param {
    /// Exact byte span of this record's blob (validated in-bounds by
    /// [`decode_v2`]).
    pub(crate) fn byte_len(&self) -> usize {
        self.encoding
            .byte_len(self.numel)
            .expect("validated by decode_v2")
    }
}

/// A fully validated v2 head: everything in the artifact except the
/// parameter values, which stay in the caller's byte buffer at the offsets
/// recorded in [`V2Param`].
#[derive(Debug)]
pub(crate) struct V2Artifact {
    pub(crate) name: String,
    pub(crate) meta: Vec<(String, String)>,
    pub(crate) layers: Vec<LayerSpec>,
    pub(crate) params: Vec<V2Param>,
    pub(crate) profile: Option<ActivationProfile>,
    pub(crate) scheme: Option<ProtectionScheme>,
}

/// Decodes and validates a v2 artifact head against the full file contents
/// (owned bytes or a read-only mapping), without copying any blob.
///
/// On success every recorded blob span is alignment-checked and in-bounds:
/// `byte_offset % align == 0` and
/// `head_end <= byte_offset <= byte_offset + 4 * numel <= bytes.len()`,
/// with `bytes.len() == total_len` exactly.
pub(crate) fn decode_v2(bytes: &[u8]) -> Result<V2Artifact, IoError> {
    let mut header = ByteReader::new(bytes);
    if header.raw(8)? != MAGIC {
        return Err(IoError::BadMagic);
    }
    let version = header.u32()?;
    if version != 2 && version != 3 {
        return Err(IoError::UnsupportedVersion(version));
    }
    let align = header.u32()? as usize;
    if !align.is_power_of_two() || !(4..=65536).contains(&align) {
        return Err(IoError::Corrupt(format!("invalid blob alignment {align}")));
    }
    let total_len = read_usize_from(header.u64()?)?;
    let head_len = read_usize_from(header.u64()?)?;
    if bytes.len() < total_len {
        return Err(IoError::Truncated {
            needed: total_len,
            remaining: bytes.len(),
        });
    }
    if bytes.len() > total_len {
        return Err(IoError::Corrupt(format!(
            "{} trailing bytes after the artifact",
            bytes.len() - total_len
        )));
    }
    let head_end = V2_HEADER_LEN
        .checked_add(head_len)
        .filter(|&end| end <= total_len)
        .ok_or_else(|| {
            IoError::Corrupt(format!(
                "head length {head_len} does not fit in the file ({total_len} bytes)"
            ))
        })?;
    let mut r = ByteReader::new(&bytes[V2_HEADER_LEN..head_end]);
    let name = r.string()?;
    let meta = read_meta(&mut r)?;
    let layers = read_layer_list(&mut r)?;
    let param_count = r.u32()? as usize;
    let mut params = Vec::with_capacity(param_count.min(1024));
    for _ in 0..param_count {
        let path = r.string()?;
        let trainable = r.u8()? != 0;
        let encoding = if version >= 3 {
            match r.u8()? {
                DTYPE_F32 => BlobEncoding::F32,
                DTYPE_F16 => BlobEncoding::F16,
                DTYPE_INT8 => BlobEncoding::Int8 {
                    channels: r.u32()? as usize,
                },
                other => {
                    return Err(IoError::Corrupt(format!(
                        "parameter `{path}` has unknown dtype tag {other}"
                    )))
                }
            }
        } else {
            BlobEncoding::F32
        };
        let dims = r.usize_vec()?;
        let byte_offset = read_usize_from(r.u64()?)?;
        let numel = read_usize_from(r.u64()?)?;
        let implied = checked_numel(&path, &dims)?;
        if implied != numel {
            return Err(IoError::Corrupt(format!(
                "parameter `{path}` declares shape {dims:?} ({implied} values) but carries {numel}"
            )));
        }
        if let BlobEncoding::Int8 { channels } = encoding {
            // The quantisation channel is the leading dim; a disagreeing
            // count means the artifact was hand-edited.
            if dims.first().copied().unwrap_or(0) != channels {
                return Err(IoError::Corrupt(format!(
                    "parameter `{path}` declares {channels} int8 channels but its \
                     leading dim is {:?}",
                    dims.first()
                )));
            }
        }
        if byte_offset % align != 0 {
            return Err(IoError::Corrupt(format!(
                "parameter `{path}` blob offset {byte_offset} is not {align}-aligned"
            )));
        }
        let end = encoding
            .byte_len(numel)
            .and_then(|len| byte_offset.checked_add(len))
            .filter(|&end| byte_offset >= head_end && end <= total_len)
            .ok_or_else(|| {
                IoError::Corrupt(format!(
                    "parameter `{path}` blob [{byte_offset}, +{numel} values) escapes the file"
                ))
            })?;
        debug_assert!(end <= bytes.len());
        params.push(V2Param {
            path,
            trainable,
            dims,
            encoding,
            byte_offset,
            numel,
        });
    }
    let profile = read_profile(&mut r)?;
    let scheme = read_scheme(&mut r)?;
    if !r.is_exhausted() {
        return Err(IoError::Corrupt(format!(
            "{} trailing bytes after the artifact head",
            r.remaining()
        )));
    }
    Ok(V2Artifact {
        name,
        meta,
        layers,
        params,
        profile,
        scheme,
    })
}

fn read_usize_from(raw: u64) -> Result<usize, IoError> {
    usize::try_from(raw)
        .map_err(|_| IoError::Corrupt(format!("value {raw} exceeds the address space")))
}

/// An ordered parameter list a network can be instantiated from: the
/// in-memory [`ModelArtifact`] (owned values) and the mmap-backed
/// [`crate::MappedArtifact`] (tensors borrowing the shared mapping) both
/// implement it, so restore semantics — and every error message — stay
/// identical across the two load paths.
pub(crate) trait ParamSource {
    /// Number of parameter records.
    fn count(&self) -> usize;
    /// Total scalar values across all records (overflow-proof).
    fn total_values(&self) -> u128;
    /// Traversal path of record `i`.
    fn path(&self, i: usize) -> &str;
    /// Whether record `i` is optimiser-visible.
    fn trainable(&self, i: usize) -> bool;
    /// Shape of record `i`.
    fn dims(&self, i: usize) -> &[usize];
    /// Materialises record `i` as a tensor (owned or shared-storage).
    fn tensor(&self, i: usize) -> Result<Tensor, IoError>;
    /// Materialises record `i`'s native reduced-precision storage, when it
    /// has one (f16 words may borrow a shared mapping). `Ok(None)` for
    /// ordinary f32 records.
    fn native(&self, _i: usize) -> Result<Option<fitact_tensor::NativeParam>, IoError> {
        Ok(None)
    }
}

impl ParamSource for ModelArtifact {
    fn count(&self) -> usize {
        self.params.len()
    }
    fn total_values(&self) -> u128 {
        self.params.iter().map(|p| p.numel() as u128).sum()
    }
    fn path(&self, i: usize) -> &str {
        &self.params[i].path
    }
    fn trainable(&self, i: usize) -> bool {
        self.params[i].trainable
    }
    fn dims(&self, i: usize) -> &[usize] {
        &self.params[i].dims
    }
    fn tensor(&self, i: usize) -> Result<Tensor, IoError> {
        saved_param_tensor(&self.params[i])
    }
    fn native(&self, i: usize) -> Result<Option<fitact_tensor::NativeParam>, IoError> {
        let p = &self.params[i];
        let corrupt = |e: fitact_tensor::TensorError| {
            IoError::Corrupt(format!("parameter `{}` native payload: {e}", p.path))
        };
        match &p.native {
            None => Ok(None),
            Some(SavedNative::F16(words)) => {
                fitact_tensor::F16Param::from_words(words.clone(), &p.dims)
                    .map(|w| Some(fitact_tensor::NativeParam::F16(w)))
                    .map_err(corrupt)
            }
            Some(SavedNative::Int8 {
                q,
                scales,
                zero_points,
            }) => fitact_tensor::Int8Param::from_parts(
                q.clone(),
                scales.clone(),
                zero_points.clone(),
                &p.dims,
            )
            .map(|w| Some(fitact_tensor::NativeParam::Int8(w)))
            .map_err(corrupt),
        }
    }
}

/// Rebuilds a network from topology specs plus a parameter source; see
/// [`ModelArtifact::instantiate`] for the contract.
pub(crate) fn instantiate_with(
    name: &str,
    layers: &[LayerSpec],
    source: &dyn ParamSource,
) -> Result<Network, IoError> {
    // Allocation guard: layer constructors allocate the parameter
    // tensors the specs imply, and the specs are untrusted — a crafted
    // `Linear { 1<<30, 1<<30 }` would abort the process on allocation
    // failure before the parameter-list check below could reject it.
    // The implied parameter count must equal the saved one exactly (the
    // restore is 1:1), so mismatches are caught here, pre-allocation.
    let implied = layers
        .iter()
        .try_fold(0u128, |acc, spec| Some(acc + spec_param_numel(spec)?))
        .ok_or_else(|| {
            IoError::Mismatch("topology implies an overflowing parameter count".into())
        })?;
    if implied != source.total_values() {
        return Err(IoError::Mismatch(format!(
            "topology implies {implied} parameter values but the artifact carries {}",
            source.total_values()
        )));
    }
    let mut network = Network::from_spec(name, layers, &ProtectedActivations)?;
    let mut index = 0usize;
    let mut failure: Option<IoError> = None;
    network.visit_params_mut(&mut |path, p| {
        if failure.is_some() {
            return;
        }
        if index >= source.count() {
            failure = Some(IoError::Mismatch(format!(
                "network has more parameters than the artifact ({} saved); first extra: `{path}`",
                source.count()
            )));
            return;
        }
        if source.path(index) != path {
            failure = Some(IoError::Mismatch(format!(
                "parameter #{index} path mismatch: artifact has `{}`, network has `{path}`",
                source.path(index)
            )));
            return;
        }
        if p.data().dims() != source.dims(index) {
            failure = Some(IoError::Mismatch(format!(
                "parameter `{path}` shape mismatch: artifact has {:?}, network has {:?}",
                source.dims(index),
                p.data().dims()
            )));
            return;
        }
        match source.native(index) {
            // Native records move the parameter into reduced-precision
            // storage (freezing it); `set_native` cannot panic because the
            // shape was just checked and the source validated its payload.
            Ok(Some(native)) => p.set_native(native),
            Ok(None) => match source.tensor(index) {
                // Replace the constructor-allocated tensor outright (the
                // shape was just checked) so a shared-storage tensor stays
                // shared instead of being copied element-wise.
                Ok(tensor) => *p.data_mut() = tensor,
                Err(e) => {
                    failure = Some(e);
                    return;
                }
            },
            Err(e) => {
                failure = Some(e);
                return;
            }
        }
        if source.trainable(index) {
            p.unfreeze();
        } else {
            p.freeze();
        }
        index += 1;
    });
    if let Some(err) = failure {
        return Err(err);
    }
    if index != source.count() {
        return Err(IoError::Mismatch(format!(
            "artifact has {} parameters but the network consumed only {index}",
            source.count()
        )));
    }
    Ok(network)
}

// Layer-spec tags are append-only (see the module docs' versioning policy).
const TAG_LINEAR: u8 = 0;
const TAG_CONV2D: u8 = 1;
const TAG_BATCHNORM2D: u8 = 2;
const TAG_ACTIVATION: u8 = 3;
const TAG_DROPOUT: u8 = 4;
const TAG_FLATTEN: u8 = 5;
const TAG_MAXPOOL2D: u8 = 6;
const TAG_GLOBAL_AVG_POOL: u8 = 7;
const TAG_SEQUENTIAL: u8 = 8;
const TAG_BOTTLENECK: u8 = 9;

/// Maximum spec-tree nesting the reader accepts (defence against crafted
/// deeply-recursive input overflowing the stack).
const MAX_SPEC_DEPTH: usize = 64;

fn write_layer_spec(w: &mut ByteWriter, spec: &LayerSpec) {
    match spec {
        LayerSpec::Linear {
            in_features,
            out_features,
        } => {
            w.u8(TAG_LINEAR);
            w.len(*in_features);
            w.len(*out_features);
        }
        LayerSpec::Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
        } => {
            w.u8(TAG_CONV2D);
            w.len(*in_channels);
            w.len(*out_channels);
            w.len(*kernel);
            w.len(*stride);
            w.len(*padding);
        }
        LayerSpec::BatchNorm2d { channels } => {
            w.u8(TAG_BATCHNORM2D);
            w.len(*channels);
        }
        LayerSpec::Activation {
            label,
            feature_shape,
            activation,
        } => {
            w.u8(TAG_ACTIVATION);
            w.string(label);
            w.usize_slice(feature_shape);
            w.string(&activation.kind);
            w.f32_slice(&activation.floats);
            w.u64_slice(&activation.ints);
        }
        LayerSpec::Dropout { p, seed } => {
            w.u8(TAG_DROPOUT);
            w.f32(*p);
            w.u64(*seed);
        }
        LayerSpec::Flatten => w.u8(TAG_FLATTEN),
        LayerSpec::MaxPool2d { kernel, stride } => {
            w.u8(TAG_MAXPOOL2D);
            w.len(*kernel);
            w.len(*stride);
        }
        LayerSpec::GlobalAvgPool => w.u8(TAG_GLOBAL_AVG_POOL),
        LayerSpec::Sequential(children) => {
            w.u8(TAG_SEQUENTIAL);
            w.u32(children.len() as u32);
            for child in children {
                write_layer_spec(w, child);
            }
        }
        LayerSpec::Bottleneck {
            main,
            shortcut,
            final_act,
        } => {
            w.u8(TAG_BOTTLENECK);
            w.u32(main.len() as u32);
            for child in main {
                write_layer_spec(w, child);
            }
            match shortcut {
                Some(children) => {
                    w.u8(1);
                    w.u32(children.len() as u32);
                    for child in children {
                        write_layer_spec(w, child);
                    }
                }
                None => w.u8(0),
            }
            write_layer_spec(w, final_act);
        }
    }
}

fn read_usize(r: &mut ByteReader<'_>) -> Result<usize, IoError> {
    let raw = r.u64()?;
    usize::try_from(raw)
        .map_err(|_| IoError::Corrupt(format!("value {raw} exceeds the address space")))
}

fn read_layer_spec(r: &mut ByteReader<'_>, depth: usize) -> Result<LayerSpec, IoError> {
    if depth > MAX_SPEC_DEPTH {
        return Err(IoError::Corrupt(format!(
            "layer-spec tree deeper than {MAX_SPEC_DEPTH}"
        )));
    }
    let tag = r.u8()?;
    match tag {
        TAG_LINEAR => Ok(LayerSpec::Linear {
            in_features: read_usize(r)?,
            out_features: read_usize(r)?,
        }),
        TAG_CONV2D => Ok(LayerSpec::Conv2d {
            in_channels: read_usize(r)?,
            out_channels: read_usize(r)?,
            kernel: read_usize(r)?,
            stride: read_usize(r)?,
            padding: read_usize(r)?,
        }),
        TAG_BATCHNORM2D => Ok(LayerSpec::BatchNorm2d {
            channels: read_usize(r)?,
        }),
        TAG_ACTIVATION => Ok(LayerSpec::Activation {
            label: r.string()?,
            feature_shape: r.usize_vec()?,
            activation: ActivationSpec {
                kind: r.string()?,
                floats: r.f32_vec()?,
                ints: r.u64_vec()?,
            },
        }),
        TAG_DROPOUT => Ok(LayerSpec::Dropout {
            p: r.f32()?,
            seed: r.u64()?,
        }),
        TAG_FLATTEN => Ok(LayerSpec::Flatten),
        TAG_MAXPOOL2D => Ok(LayerSpec::MaxPool2d {
            kernel: read_usize(r)?,
            stride: read_usize(r)?,
        }),
        TAG_GLOBAL_AVG_POOL => Ok(LayerSpec::GlobalAvgPool),
        TAG_SEQUENTIAL => {
            let count = r.u32()? as usize;
            let mut children = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                children.push(read_layer_spec(r, depth + 1)?);
            }
            Ok(LayerSpec::Sequential(children))
        }
        TAG_BOTTLENECK => {
            let main_count = r.u32()? as usize;
            let mut main = Vec::with_capacity(main_count.min(1024));
            for _ in 0..main_count {
                main.push(read_layer_spec(r, depth + 1)?);
            }
            let shortcut = if r.u8()? != 0 {
                let count = r.u32()? as usize;
                let mut children = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    children.push(read_layer_spec(r, depth + 1)?);
                }
                Some(children)
            } else {
                None
            };
            let final_act = read_layer_spec(r, depth + 1)?;
            if !matches!(final_act, LayerSpec::Activation { .. }) {
                return Err(IoError::Corrupt(
                    "bottleneck final activation is not an activation slot".into(),
                ));
            }
            Ok(LayerSpec::Bottleneck {
                main,
                shortcut,
                final_act: Box::new(final_act),
            })
        }
        other => Err(IoError::Corrupt(format!("unknown layer-spec tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp() -> Network {
        let mut rng = StdRng::seed_from_u64(1);
        Network::new(
            "mlp",
            Sequential::new()
                .with(Box::new(Linear::new(4, 6, &mut rng)))
                .with(Box::new(ActivationLayer::relu("h", &[6])))
                .with(Box::new(Linear::new(6, 2, &mut rng))),
        )
    }

    #[test]
    fn capture_encode_decode_instantiate_is_bit_exact() {
        let net = mlp();
        let artifact = ModelArtifact::capture(&net).unwrap();
        let bytes = artifact.to_bytes();
        let decoded = ModelArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, artifact);
        let rebuilt = decoded.instantiate().unwrap();
        assert_eq!(rebuilt.name(), "mlp");
        for (a, b) in net.params().iter().zip(rebuilt.params()) {
            assert_eq!(a.data(), b.data());
            assert_eq!(a.trainable(), b.trainable());
        }
    }

    #[test]
    fn metadata_round_trips_in_order() {
        let mut artifact = ModelArtifact::capture(&mlp()).unwrap();
        artifact.set_meta("dataset", "blobs");
        artifact.set_meta("seed", "7");
        artifact.set_meta("dataset", "synthetic-cifar"); // replace
        let decoded = ModelArtifact::from_bytes(&artifact.to_bytes()).unwrap();
        assert_eq!(decoded.meta("dataset"), Some("synthetic-cifar"));
        assert_eq!(decoded.meta("seed"), Some("7"));
        assert_eq!(decoded.meta("missing"), None);
    }

    #[test]
    fn bad_magic_wrong_version_truncation_trailing() {
        let bytes = ModelArtifact::capture(&mlp()).unwrap().to_bytes();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            ModelArtifact::from_bytes(&bad),
            Err(IoError::BadMagic)
        ));
        // Wrong version.
        let mut wrong = bytes.clone();
        wrong[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            ModelArtifact::from_bytes(&wrong),
            Err(IoError::UnsupportedVersion(99))
        ));
        // Every truncation point fails with a typed error, never a panic.
        for cut in 0..bytes.len() {
            let err = ModelArtifact::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, IoError::Truncated { .. } | IoError::BadMagic),
                "cut at {cut}: {err:?}"
            );
        }
        // Trailing garbage is rejected.
        let mut trailing = bytes;
        trailing.push(0);
        assert!(matches!(
            ModelArtifact::from_bytes(&trailing),
            Err(IoError::Corrupt(_))
        ));
    }

    #[test]
    fn mismatched_parameter_lists_are_rejected() {
        let mut artifact = ModelArtifact::capture(&mlp()).unwrap();
        artifact.params.pop();
        assert!(matches!(artifact.instantiate(), Err(IoError::Mismatch(_))));
        let mut artifact = ModelArtifact::capture(&mlp()).unwrap();
        artifact.params[0].path = "not/the/weight".into();
        assert!(matches!(artifact.instantiate(), Err(IoError::Mismatch(_))));
    }

    #[test]
    fn hostile_topology_is_rejected_before_allocation() {
        let mut artifact = ModelArtifact::capture(&mlp()).unwrap();
        // 2^60 weight elements: must fail with a typed error before the
        // constructor tries (and fails) to allocate them.
        artifact.layers[0] = LayerSpec::Linear {
            in_features: 1 << 30,
            out_features: 1 << 30,
        };
        assert!(matches!(artifact.instantiate(), Err(IoError::Mismatch(_))));
        // Same via a hostile activation spec.
        let mut artifact = ModelArtifact::capture(&mlp()).unwrap();
        artifact.layers[1] = LayerSpec::Activation {
            label: "h".into(),
            feature_shape: vec![6],
            activation: ActivationSpec {
                kind: "fitrelu".into(),
                floats: vec![8.0],
                ints: vec![u64::MAX],
            },
        };
        assert!(matches!(artifact.instantiate(), Err(IoError::Mismatch(_))));
    }

    #[test]
    fn overflowing_parameter_shape_is_corrupt() {
        let mut artifact = ModelArtifact::capture(&mlp()).unwrap();
        // dims whose product overflows usize: the decoder must reject the
        // artifact with a typed error, not panic or wrap.
        artifact.params[0].dims = vec![1 << 62, 1 << 62];
        assert!(matches!(
            ModelArtifact::from_bytes(&artifact.to_bytes()),
            Err(IoError::Corrupt(_))
        ));
    }

    #[test]
    fn v2_layout_is_aligned_and_exactly_sized() {
        let artifact = ModelArtifact::capture(&mlp()).unwrap();
        let bytes = artifact.to_bytes();
        let total_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        let head_len = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
        assert_eq!(bytes.len(), total_len, "file ends exactly at total_len");
        assert_eq!(
            u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize,
            BLOB_ALIGN
        );
        let head = decode_v2(&bytes).unwrap();
        assert_eq!(head.params.len(), artifact.params.len());
        for (decoded, original) in head.params.iter().zip(&artifact.params) {
            assert_eq!(decoded.byte_offset % BLOB_ALIGN, 0, "blob alignment");
            assert!(decoded.byte_offset >= V2_HEADER_LEN + head_len);
            assert_eq!(decoded.numel, original.data.len());
        }
    }

    #[test]
    fn v1_encoding_round_trips_through_the_dispatching_reader() {
        let mut artifact = ModelArtifact::capture(&mlp()).unwrap();
        artifact.set_meta("stage", "trained");
        let v1 = artifact.to_bytes_v1();
        assert_eq!(&v1[8..12], &1u32.to_le_bytes(), "v1 stamps version 1");
        assert_eq!(ModelArtifact::from_bytes(&v1).unwrap(), artifact);
    }

    #[test]
    fn v2_rejects_misaligned_and_escaping_blob_offsets() {
        let artifact = ModelArtifact::capture(&mlp()).unwrap();
        let bytes = artifact.to_bytes();
        let head_len = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
        // The first param record sits after name/meta/topology; find its
        // blob_offset field by re-encoding the head with a sentinel to
        // locate the offset bytes, then corrupt them in place.
        let offset_pos = {
            let head = &bytes[V2_HEADER_LEN..V2_HEADER_LEN + head_len];
            let first_offset = decode_v2(&bytes).unwrap().params[0].byte_offset as u64;
            let needle = first_offset.to_le_bytes();
            V2_HEADER_LEN
                + head
                    .windows(8)
                    .position(|w| w == needle)
                    .expect("offset bytes present in the head")
        };
        // Misaligned: offset + 1.
        let mut misaligned = bytes.clone();
        let first = u64::from_le_bytes(misaligned[offset_pos..offset_pos + 8].try_into().unwrap());
        misaligned[offset_pos..offset_pos + 8].copy_from_slice(&(first + 1).to_le_bytes());
        match ModelArtifact::from_bytes(&misaligned) {
            Err(IoError::Corrupt(msg)) => assert!(msg.contains("aligned"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // Escaping: an aligned offset pointing past the end of the file.
        let mut escaping = bytes.clone();
        let far = align_up(bytes.len() + 1, BLOB_ALIGN) as u64;
        escaping[offset_pos..offset_pos + 8].copy_from_slice(&far.to_le_bytes());
        match ModelArtifact::from_bytes(&escaping) {
            Err(IoError::Corrupt(msg)) => assert!(msg.contains("escapes"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn save_load_file_round_trip() {
        let dir = std::env::temp_dir().join("fitact_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mlp.fitact");
        let artifact = ModelArtifact::capture(&mlp()).unwrap();
        artifact.save(&path).unwrap();
        assert_eq!(ModelArtifact::load(&path).unwrap(), artifact);
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(ModelArtifact::load(&path), Err(IoError::Io(_))));
    }
}
