//! Resumable campaign-state checkpoints.
//!
//! A statistical fault campaign — single-process or distributed — persists
//! its partial state as a versioned, endian-pinned binary artifact so that
//! `SIGTERM`, a crash or a coordinator restart resumes from the last
//! checkpoint instead of discarding hours of trials. A checkpoint carries:
//!
//! * the full [`StatCampaignConfig`] it was written under (resume with a
//!   different configuration is a typed [`IoError::Mismatch`], never a
//!   silently skewed report),
//! * the fault-model name, the network name and a fingerprint of the exact
//!   artifact bytes the campaign ran against,
//! * the RNG-stream provenance tag
//!   ([`fitact_faults::TRIAL_STREAM_PROVENANCE`]) — state written by a build
//!   with a different per-trial stream derivation must not be extended,
//! * the fault-free baseline accuracy (bit-exact),
//! * one [`StratumPool`] of completed trials per stratum (bit-exact
//!   accuracies, keyed by trial index), and
//! * the ids of completed work units (distributed campaigns only; empty for
//!   single-process checkpoints).
//!
//! # Crash safety
//!
//! [`CampaignCheckpoint::save`] writes to a hidden sibling temp file and
//! atomically renames it over the destination, so readers observe either the
//! previous checkpoint or the new one — never a torn file. If a crash does
//! leave a truncated file behind (e.g. mid-write to the temp path that was
//! then mistaken for a checkpoint), decoding fails with the typed
//! [`IoError::Truncated`] / [`IoError::Corrupt`] errors, never a panic or a
//! silently wrong pool — pinned by the `campaign_state` crash-safety suite.

use crate::bytes::{ByteReader, ByteWriter};
use crate::IoError;
use fitact_faults::{
    AllocationPolicy, BitClass, StatCampaignConfig, StratumPool, StratumSpec, TrialPoint,
    TRIAL_STREAM_PROVENANCE,
};
use std::path::Path;

/// Magic prefix of a campaign-state checkpoint file.
pub const CAMPAIGN_STATE_MAGIC: &[u8; 8] = b"FITCAMPS";

/// Format revision this build writes.
///
/// Version history:
/// * **1** — original format; campaigns are implicitly `equal`-allocated
///   with a floor of one trial per stratum per round.
/// * **2** — the config block carries the allocation policy tag and the
///   per-stratum floor after `max_trials` (adaptive Neyman allocation).
pub const CAMPAIGN_STATE_VERSION: u32 = 2;

/// Oldest format revision this build still decodes. Version-1 state decodes
/// with [`AllocationPolicy::Equal`] and a floor of 1 implied — exactly the
/// semantics the writing build ran under, so resume stays bit-identical.
pub const CAMPAIGN_STATE_MIN_VERSION: u32 = 1;

/// A resumable snapshot of a statistical campaign's partial state.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheckpoint {
    /// The configuration the campaign runs under.
    pub config: StatCampaignConfig,
    /// Name of the injected fault model.
    pub model: String,
    /// Name of the network under test.
    pub network: String,
    /// Fingerprint ([`fingerprint_bytes`]) of the artifact bytes the campaign
    /// evaluates — resuming against different parameters would merge
    /// incompatible trials.
    pub artifact_fingerprint: u64,
    /// RNG-stream derivation tag of the writing build.
    pub provenance: String,
    /// The fault-free baseline accuracy (bit-exact).
    pub fault_free_accuracy: f32,
    /// One pool of completed trials per stratum, in configured order.
    pub pools: Vec<StratumPool>,
    /// Ids of fully merged work units, ascending (distributed campaigns;
    /// empty for single-process checkpoints).
    pub completed_units: Vec<u64>,
}

impl CampaignCheckpoint {
    /// Assembles a checkpoint stamped with this build's provenance tag.
    pub fn new(
        config: StatCampaignConfig,
        model: impl Into<String>,
        network: impl Into<String>,
        artifact_fingerprint: u64,
        fault_free_accuracy: f32,
        pools: Vec<StratumPool>,
        completed_units: Vec<u64>,
    ) -> Self {
        CampaignCheckpoint {
            config,
            model: model.into(),
            network: network.into(),
            artifact_fingerprint,
            provenance: TRIAL_STREAM_PROVENANCE.to_owned(),
            fault_free_accuracy,
            pools,
            completed_units,
        }
    }

    /// Total completed trials across all strata.
    pub fn total_trials(&self) -> usize {
        self.pools.iter().map(StratumPool::len).sum()
    }

    /// Encodes the checkpoint (little-endian, `f32` as raw bit patterns).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_at(CAMPAIGN_STATE_VERSION)
    }

    /// Encodes the checkpoint in the **version-1** layout, dropping the
    /// allocation policy and floor from the config block.
    ///
    /// This is a lossy downgrade — meaningful only for campaigns whose
    /// config matches the v1 implied semantics (`equal` allocation, floor
    /// 1). It exists so compatibility tests can fabricate genuine old-format
    /// state without keeping binary fixtures around.
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        self.to_bytes_at(1)
    }

    fn to_bytes_at(&self, version: u32) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.raw(CAMPAIGN_STATE_MAGIC);
        w.u32(version);
        encode_config(&mut w, &self.config, version);
        w.string(&self.model);
        w.string(&self.network);
        w.u64(self.artifact_fingerprint);
        w.string(&self.provenance);
        w.f32(self.fault_free_accuracy);
        w.len(self.pools.len());
        for pool in &self.pools {
            w.len(pool.len());
            for (index, point) in pool.iter() {
                w.u64(index);
                w.f32(point.accuracy);
                w.u64(point.faults);
            }
        }
        w.u64_slice(&self.completed_units);
        w.into_bytes()
    }

    /// Decodes a checkpoint.
    ///
    /// # Errors
    ///
    /// [`IoError::BadMagic`] / [`IoError::UnsupportedVersion`] for foreign
    /// files, [`IoError::Truncated`] for torn files and [`IoError::Corrupt`]
    /// for structural damage (duplicate trial indexes, unknown bit-class
    /// tags, pool/strata count disagreement, trailing bytes, …).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IoError> {
        let mut r = ByteReader::new(bytes);
        if r.raw(CAMPAIGN_STATE_MAGIC.len())? != CAMPAIGN_STATE_MAGIC {
            return Err(IoError::BadMagic);
        }
        let version = r.u32()?;
        if !(CAMPAIGN_STATE_MIN_VERSION..=CAMPAIGN_STATE_VERSION).contains(&version) {
            return Err(IoError::UnsupportedVersion(version));
        }
        let config = decode_config(&mut r, version)?;
        let model = r.string()?;
        let network = r.string()?;
        let artifact_fingerprint = r.u64()?;
        let provenance = r.string()?;
        let fault_free_accuracy = r.f32()?;
        let num_pools = r.len(8)?;
        if num_pools != config.strata.len() {
            return Err(IoError::Corrupt(format!(
                "checkpoint has {num_pools} pools for {} strata",
                config.strata.len()
            )));
        }
        let mut pools = Vec::with_capacity(num_pools);
        for stratum in 0..num_pools {
            // index (8) + accuracy (4) + faults (8) per point.
            let points = r.len(20)?;
            let mut pool = StratumPool::new();
            for _ in 0..points {
                let index = r.u64()?;
                let point = TrialPoint {
                    accuracy: r.f32()?,
                    faults: r.u64()?,
                };
                match pool.insert(index, point) {
                    Ok(true) => {}
                    _ => {
                        return Err(IoError::Corrupt(format!(
                            "duplicate trial index {index} in stratum {stratum}"
                        )))
                    }
                }
            }
            pools.push(pool);
        }
        let completed_units = r.u64_vec()?;
        if completed_units.windows(2).any(|w| w[0] >= w[1]) {
            return Err(IoError::Corrupt(
                "completed-unit ids are not strictly ascending".into(),
            ));
        }
        if !r.is_exhausted() {
            return Err(IoError::Corrupt(format!(
                "{} trailing bytes after the checkpoint",
                r.remaining()
            )));
        }
        Ok(CampaignCheckpoint {
            config,
            model,
            network,
            artifact_fingerprint,
            provenance,
            fault_free_accuracy,
            pools,
            completed_units,
        })
    }

    /// Atomically publishes the checkpoint at `path`: the bytes are written
    /// to a hidden sibling temp file and renamed into place, so a concurrent
    /// reader (or a crash between the two steps) observes either the old
    /// checkpoint or the new one, never a torn file.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Io`] for filesystem failures.
    pub fn save(&self, path: &Path) -> Result<(), IoError> {
        let name = path
            .file_name()
            .ok_or_else(|| IoError::Io(std::io::Error::other("checkpoint path has no file name")))?
            .to_string_lossy()
            .into_owned();
        let tmp = path.with_file_name(format!(".{name}.{}.tmp", std::process::id()));
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads and decodes a checkpoint file.
    ///
    /// # Errors
    ///
    /// As [`CampaignCheckpoint::from_bytes`], plus [`IoError::Io`] for
    /// filesystem failures.
    pub fn load(path: &Path) -> Result<Self, IoError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }

    /// Verifies the checkpoint belongs to the campaign about to resume:
    /// same configuration, same fault model, same artifact bytes and a
    /// stream-derivation tag this build reproduces.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::Mismatch`] naming the first disagreeing field.
    pub fn validate_against(
        &self,
        config: &StatCampaignConfig,
        model: &str,
        artifact_fingerprint: u64,
    ) -> Result<(), IoError> {
        if self.provenance != TRIAL_STREAM_PROVENANCE {
            return Err(IoError::Mismatch(format!(
                "checkpoint was written under RNG provenance `{}`, this build derives `{}`",
                self.provenance, TRIAL_STREAM_PROVENANCE
            )));
        }
        if &self.config != config {
            return Err(IoError::Mismatch(
                "checkpoint was written under a different campaign configuration".into(),
            ));
        }
        if self.model != model {
            return Err(IoError::Mismatch(format!(
                "checkpoint was written for fault model `{}`, campaign runs `{model}`",
                self.model
            )));
        }
        if self.artifact_fingerprint != artifact_fingerprint {
            return Err(IoError::Mismatch(format!(
                "checkpoint fingerprint {:#018x} does not match the artifact ({:#018x})",
                self.artifact_fingerprint, artifact_fingerprint
            )));
        }
        Ok(())
    }
}

/// Magic prefix of a serialized campaign spec (the coordinator→worker wire
/// form of a campaign's identity).
pub const CAMPAIGN_SPEC_MAGIC: &[u8; 8] = b"FITCSPEC";

/// A distributed campaign's identity, served by the coordinator to joining
/// workers. Everything a worker needs to re-derive the campaign bit-exactly:
/// the configuration (binary, because JSON text would not round-trip `f64`
/// seeds and rates exactly), the fault-model name, the dataset provenance
/// pairs (`DataSpec::to_meta` form, with coordinator-side overrides already
/// applied), the artifact fingerprint and the coordinator's fault-free
/// baseline — which the worker recomputes and compares bit-exactly before
/// accepting any work.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// The campaign configuration.
    pub config: StatCampaignConfig,
    /// Fault-model name (`"bitflip"`, …).
    pub model: String,
    /// Name of the network under test.
    pub network: String,
    /// Fingerprint ([`fingerprint_bytes`]) of the artifact bytes served at
    /// the coordinator's model endpoint.
    pub artifact_fingerprint: u64,
    /// RNG-stream derivation tag of the coordinator's build.
    pub provenance: String,
    /// The coordinator's fault-free baseline accuracy (bit-exact).
    pub fault_free_accuracy: f32,
    /// Trials per work unit.
    pub unit_trials: u32,
    /// Dataset provenance key/value pairs (final, overrides applied).
    pub data_meta: Vec<(String, String)>,
}

impl CampaignSpec {
    /// Encodes the spec (little-endian, `f32`/`f64` as raw bit patterns).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_at(CAMPAIGN_STATE_VERSION)
    }

    /// Encodes the spec in the version-1 layout (see
    /// [`CampaignCheckpoint::to_bytes_v1`]).
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        self.to_bytes_at(1)
    }

    fn to_bytes_at(&self, version: u32) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.raw(CAMPAIGN_SPEC_MAGIC);
        w.u32(version);
        encode_config(&mut w, &self.config, version);
        w.string(&self.model);
        w.string(&self.network);
        w.u64(self.artifact_fingerprint);
        w.string(&self.provenance);
        w.f32(self.fault_free_accuracy);
        w.u32(self.unit_trials);
        w.len(self.data_meta.len());
        for (key, value) in &self.data_meta {
            w.string(key);
            w.string(value);
        }
        w.into_bytes()
    }

    /// Decodes a spec.
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`CampaignCheckpoint::from_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IoError> {
        let mut r = ByteReader::new(bytes);
        if r.raw(CAMPAIGN_SPEC_MAGIC.len())? != CAMPAIGN_SPEC_MAGIC {
            return Err(IoError::BadMagic);
        }
        let version = r.u32()?;
        if !(CAMPAIGN_STATE_MIN_VERSION..=CAMPAIGN_STATE_VERSION).contains(&version) {
            return Err(IoError::UnsupportedVersion(version));
        }
        let config = decode_config(&mut r, version)?;
        let model = r.string()?;
        let network = r.string()?;
        let artifact_fingerprint = r.u64()?;
        let provenance = r.string()?;
        let fault_free_accuracy = r.f32()?;
        let unit_trials = r.u32()?;
        let pairs = r.len(8)?;
        let mut data_meta = Vec::with_capacity(pairs);
        for _ in 0..pairs {
            let key = r.string()?;
            let value = r.string()?;
            data_meta.push((key, value));
        }
        if !r.is_exhausted() {
            return Err(IoError::Corrupt(format!(
                "{} trailing bytes after the campaign spec",
                r.remaining()
            )));
        }
        Ok(CampaignSpec {
            config,
            model,
            network,
            artifact_fingerprint,
            provenance,
            fault_free_accuracy,
            unit_trials,
            data_meta,
        })
    }
}

/// FNV-1a fingerprint of a byte string — stable across builds and platforms,
/// used to pin a checkpoint to the exact artifact bytes it was computed
/// against (not cryptographic; it guards against mistakes, not adversaries).
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn encode_config(w: &mut ByteWriter, config: &StatCampaignConfig, version: u32) {
    w.f64(config.fault_rate);
    w.u64(config.batch_size as u64);
    w.u64(config.seed);
    w.f64(config.epsilon);
    w.f64(config.confidence);
    w.f32(config.critical_threshold);
    w.u64(config.round_trials as u64);
    w.u64(config.min_trials as u64);
    w.u64(config.max_trials as u64);
    if version >= 2 {
        w.u8(match config.allocation {
            AllocationPolicy::Equal => 0,
            AllocationPolicy::Neyman => 1,
        });
        w.u64(config.floor_trials as u64);
    }
    w.len(config.strata.len());
    for spec in &config.strata {
        w.string(&spec.label);
        w.len(spec.bit_classes.len());
        for &class in &spec.bit_classes {
            w.u8(match class {
                BitClass::Sign => 0,
                BitClass::Exponent => 1,
                BitClass::Mantissa => 2,
            });
        }
        match &spec.path_prefix {
            None => w.u8(0),
            Some(prefix) => {
                w.u8(1);
                w.string(prefix);
            }
        }
    }
}

fn read_usize(r: &mut ByteReader<'_>, what: &str) -> Result<usize, IoError> {
    let raw = r.u64()?;
    usize::try_from(raw)
        .map_err(|_| IoError::Corrupt(format!("{what} {raw} exceeds the address space")))
}

fn decode_config(r: &mut ByteReader<'_>, version: u32) -> Result<StatCampaignConfig, IoError> {
    let fault_rate = r.f64()?;
    let batch_size = read_usize(r, "batch_size")?;
    let seed = r.u64()?;
    let epsilon = r.f64()?;
    let confidence = r.f64()?;
    let critical_threshold = r.f32()?;
    let round_trials = read_usize(r, "round_trials")?;
    let min_trials = read_usize(r, "min_trials")?;
    let max_trials = read_usize(r, "max_trials")?;
    // Version-1 state predates allocation policies: those campaigns ran
    // fixed equal allocation with an implicit floor of one, so decoding to
    // exactly that keeps resumed replay bit-identical.
    let (allocation, floor_trials) = if version >= 2 {
        let allocation = match r.u8()? {
            0 => AllocationPolicy::Equal,
            1 => AllocationPolicy::Neyman,
            tag => return Err(IoError::Corrupt(format!("unknown allocation tag {tag}"))),
        };
        (allocation, read_usize(r, "floor_trials")?)
    } else {
        (AllocationPolicy::Equal, 1)
    };
    let num_strata = r.len(1)?;
    let mut strata = Vec::with_capacity(num_strata);
    for _ in 0..num_strata {
        let label = r.string()?;
        let num_classes = r.len(1)?;
        let mut bit_classes = Vec::with_capacity(num_classes);
        for _ in 0..num_classes {
            bit_classes.push(match r.u8()? {
                0 => BitClass::Sign,
                1 => BitClass::Exponent,
                2 => BitClass::Mantissa,
                tag => return Err(IoError::Corrupt(format!("unknown bit-class tag {tag}"))),
            });
        }
        let path_prefix = match r.u8()? {
            0 => None,
            1 => Some(r.string()?),
            tag => return Err(IoError::Corrupt(format!("unknown path-prefix tag {tag}"))),
        };
        strata.push(StratumSpec {
            label,
            bit_classes,
            path_prefix,
        });
    }
    Ok(StatCampaignConfig {
        fault_rate,
        batch_size,
        seed,
        epsilon,
        confidence,
        critical_threshold,
        round_trials,
        min_trials,
        max_trials,
        allocation,
        floor_trials,
        strata,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> CampaignCheckpoint {
        let mut pools = vec![StratumPool::new(); 3];
        for (stratum, pool) in pools.iter_mut().enumerate() {
            for index in 0..(stratum + 2) as u64 {
                pool.insert(
                    index,
                    TrialPoint {
                        accuracy: 0.5 + stratum as f32 / 10.0 + index as f32 / 100.0,
                        faults: index * 3,
                    },
                )
                .unwrap();
            }
        }
        CampaignCheckpoint::new(
            StatCampaignConfig::default(),
            "bitflip",
            "mlp",
            0xDEAD_BEEF_0BAD_F00D,
            0.875,
            pools,
            vec![0, 1, 4],
        )
    }

    #[test]
    fn round_trips_bit_exactly() {
        let ck = sample_checkpoint();
        let decoded = CampaignCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(decoded, ck);
        assert_eq!(decoded.total_trials(), 2 + 3 + 4);
        assert_eq!(decoded.provenance, TRIAL_STREAM_PROVENANCE);
    }

    #[test]
    fn foreign_files_are_typed_errors() {
        assert!(matches!(
            CampaignCheckpoint::from_bytes(b"NOTACKPT........"),
            Err(IoError::BadMagic)
        ));
        let mut bytes = sample_checkpoint().to_bytes();
        bytes[8] = 99; // version field
        assert!(matches!(
            CampaignCheckpoint::from_bytes(&bytes),
            Err(IoError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut bytes = sample_checkpoint().to_bytes();
        bytes.push(0);
        assert!(matches!(
            CampaignCheckpoint::from_bytes(&bytes),
            Err(IoError::Corrupt(_))
        ));
    }

    #[test]
    fn validation_pins_config_model_and_fingerprint() {
        let ck = sample_checkpoint();
        assert!(ck
            .validate_against(&ck.config, "bitflip", ck.artifact_fingerprint)
            .is_ok());
        let other = StatCampaignConfig {
            seed: 999,
            ..ck.config.clone()
        };
        assert!(matches!(
            ck.validate_against(&other, "bitflip", ck.artifact_fingerprint),
            Err(IoError::Mismatch(_))
        ));
        assert!(matches!(
            ck.validate_against(&ck.config, "burst", ck.artifact_fingerprint),
            Err(IoError::Mismatch(_))
        ));
        assert!(matches!(
            ck.validate_against(&ck.config, "bitflip", 1),
            Err(IoError::Mismatch(_))
        ));
        let mut stale = ck.clone();
        stale.provenance = "splitmix64 v0".into();
        assert!(matches!(
            stale.validate_against(&ck.config, "bitflip", ck.artifact_fingerprint),
            Err(IoError::Mismatch(_))
        ));
    }

    #[test]
    fn save_is_atomic_and_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("fitact_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.ckpt");
        let ck = sample_checkpoint();
        ck.save(&path).unwrap();
        // No temp residue: the rename consumed the hidden sibling.
        let residue: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(residue.is_empty(), "temp files left behind: {residue:?}");
        assert_eq!(CampaignCheckpoint::load(&path).unwrap(), ck);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spec_round_trips_and_rejects_foreign_bytes() {
        let spec = CampaignSpec {
            config: StatCampaignConfig::default(),
            model: "bitflip".into(),
            network: "mlp".into(),
            artifact_fingerprint: 7,
            provenance: TRIAL_STREAM_PROVENANCE.into(),
            fault_free_accuracy: 0.75,
            unit_trials: 4,
            data_meta: vec![("data.kind".into(), "blobs".into())],
        };
        let decoded = CampaignSpec::from_bytes(&spec.to_bytes()).unwrap();
        assert_eq!(decoded, spec);
        assert!(matches!(
            CampaignSpec::from_bytes(&sample_checkpoint().to_bytes()),
            Err(IoError::BadMagic)
        ));
        let mut bytes = spec.to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(matches!(
            CampaignSpec::from_bytes(&bytes),
            Err(IoError::Truncated { .. })
        ));
    }

    #[test]
    fn v2_round_trips_nondefault_allocation() {
        let mut ck = sample_checkpoint();
        ck.config.allocation = AllocationPolicy::Neyman;
        ck.config.floor_trials = 3;
        let decoded = CampaignCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(decoded, ck);
        assert_eq!(decoded.config.allocation, AllocationPolicy::Neyman);
        assert_eq!(decoded.config.floor_trials, 3);
    }

    #[test]
    fn v1_checkpoints_decode_with_equal_policy_implied() {
        let ck = sample_checkpoint();
        let v1_bytes = ck.to_bytes_v1();
        assert_ne!(v1_bytes, ck.to_bytes(), "v1 layout must differ from v2");
        let decoded = CampaignCheckpoint::from_bytes(&v1_bytes).unwrap();
        assert_eq!(decoded.config.allocation, AllocationPolicy::Equal);
        assert_eq!(decoded.config.floor_trials, 1);
        // Everything else — pools, baseline, provenance — survives intact,
        // and since the defaults match the v1 implied semantics the decoded
        // checkpoint equals the original.
        assert_eq!(decoded, ck);
    }

    #[test]
    fn v1_specs_decode_with_equal_policy_implied() {
        let spec = CampaignSpec {
            config: StatCampaignConfig::default(),
            model: "bitflip".into(),
            network: "mlp".into(),
            artifact_fingerprint: 7,
            provenance: TRIAL_STREAM_PROVENANCE.into(),
            fault_free_accuracy: 0.75,
            unit_trials: 4,
            data_meta: vec![("data.kind".into(), "blobs".into())],
        };
        let decoded = CampaignSpec::from_bytes(&spec.to_bytes_v1()).unwrap();
        assert_eq!(decoded.config.allocation, AllocationPolicy::Equal);
        assert_eq!(decoded.config.floor_trials, 1);
        assert_eq!(decoded, spec);
    }

    #[test]
    fn unknown_allocation_tag_is_corrupt() {
        let mut ck = sample_checkpoint();
        ck.config.allocation = AllocationPolicy::Neyman;
        let mut bytes = ck.to_bytes();
        // The allocation tag follows the header and the fixed-width config
        // scalars: magic (8) + version (4) + eight 8-byte fields (fault_rate,
        // batch_size, seed, epsilon, confidence, round/min/max_trials) +
        // critical_threshold (4).
        let tag_offset = 8 + 4 + 8 * 8 + 4;
        assert_eq!(bytes[tag_offset], 1, "expected the neyman tag here");
        bytes[tag_offset] = 7;
        match CampaignCheckpoint::from_bytes(&bytes) {
            Err(IoError::Corrupt(msg)) => assert!(msg.contains("allocation tag")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_bitflipped_v2_state_never_panics() {
        let mut ck = sample_checkpoint();
        ck.config.allocation = AllocationPolicy::Neyman;
        ck.config.floor_trials = 2;
        let bytes = ck.to_bytes();
        // Every prefix decodes to a typed error, never a panic.
        for cut in 0..bytes.len() {
            assert!(
                CampaignCheckpoint::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} bytes must fail"
            );
        }
        // Single-bit corruption anywhere yields Ok (bit landed in a
        // don't-care position such as a float payload) or a typed error —
        // decoding must never panic or loop.
        for byte in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 0x01;
            let _ = CampaignCheckpoint::from_bytes(&corrupt);
        }
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        assert_eq!(fingerprint_bytes(b""), 0xCBF2_9CE4_8422_2325);
        assert_ne!(fingerprint_bytes(b"a"), fingerprint_bytes(b"b"));
        assert_eq!(fingerprint_bytes(b"fitact"), fingerprint_bytes(b"fitact"));
    }
}
