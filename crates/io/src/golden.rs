//! Golden-artifact caching for tests, examples and benches.
//!
//! The FitAct workflow is two-phase: a network is trained once, then
//! calibrated / protected / campaigned many times. Before the artifact
//! format existed, every test and example re-paid the training cost; with
//! it, the first caller trains and saves, every later caller loads.
//!
//! [`load_or_build`] is safe under concurrent test binaries: builders write
//! to a process-unique temporary file and publish it with an atomic rename,
//! so two racing processes at worst both train once — a reader can never
//! observe a half-written artifact. Determinism makes the race harmless:
//! both processes produce bit-identical artifacts.

use crate::{IoError, ModelArtifact};
use std::path::{Path, PathBuf};

/// The canonical golden-artifact directory for a crate: `target/golden`
/// under the given manifest directory's workspace target.
pub fn golden_dir(manifest_dir: &str) -> PathBuf {
    Path::new(manifest_dir).join("target").join("golden")
}

/// Loads the artifact cached as `<dir>/<name>.fitact`, or builds, publishes
/// and returns it.
///
/// A cached artifact that fails to decode (format bump, truncated write by a
/// killed process) **or** fails to instantiate (the topology-building code
/// changed since the cache was written) is treated as absent and rebuilt.
///
/// Cache keys are names: include everything that determines the built
/// artifact — architecture, seeds, epochs, dataset spec — in `name`, or a
/// config change will silently keep serving the stale model (the
/// instantiate check only catches *structural* drift, not retuned
/// hyperparameters).
///
/// # Example
///
/// ```
/// use fitact_io::{golden, ModelArtifact};
/// use fitact_nn::layers::{Linear, Sequential};
/// use fitact_nn::Network;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), fitact_io::IoError> {
/// let dir = std::env::temp_dir().join("fitact_golden_doctest");
/// let build = || {
///     let mut rng = StdRng::seed_from_u64(0);
///     let net = Network::new(
///         "tiny",
///         Sequential::new().with(Box::new(Linear::new(2, 2, &mut rng))),
///     );
///     ModelArtifact::capture(&net)
/// };
/// let first = golden::load_or_build(&dir, "tiny-doc", build)?;
/// // The second call loads the published cache; its builder never runs.
/// let second = golden::load_or_build(&dir, "tiny-doc", || unreachable!("cache hit"))?;
/// assert_eq!(first, second);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates builder errors and filesystem failures from publishing.
pub fn load_or_build<F>(dir: &Path, name: &str, build: F) -> Result<ModelArtifact, IoError>
where
    F: FnOnce() -> Result<ModelArtifact, IoError>,
{
    let path = dir.join(format!("{name}.{}", crate::FILE_EXTENSION));
    if let Ok(artifact) = ModelArtifact::load(&path) {
        if artifact.instantiate().is_ok() {
            return Ok(artifact);
        }
    }
    let artifact = build()?;
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(".{name}.{}.tmp", std::process::id()));
    artifact.save(&tmp)?;
    // Atomic publish: concurrent builders race benignly — last rename wins
    // and every rename installs a complete, bit-identical file.
    std::fs::rename(&tmp, &path)?;
    Ok(artifact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fitact_nn::layers::{Linear, Sequential};
    use fitact_nn::Network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> ModelArtifact {
        let mut rng = StdRng::seed_from_u64(3);
        let net = Network::new(
            "tiny",
            Sequential::new().with(Box::new(Linear::new(2, 2, &mut rng))),
        );
        ModelArtifact::capture(&net).unwrap()
    }

    #[test]
    fn builds_once_then_loads() {
        let dir = std::env::temp_dir().join(format!("fitact_golden_{}", std::process::id()));
        let mut builds = 0;
        let first = load_or_build(&dir, "tiny", || {
            builds += 1;
            Ok(tiny())
        })
        .unwrap();
        let second = load_or_build(&dir, "tiny", || {
            builds += 1;
            Ok(tiny())
        })
        .unwrap();
        assert_eq!(builds, 1, "second call must load the cache");
        assert_eq!(first, second);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_cache_is_rebuilt() {
        let dir = std::env::temp_dir().join(format!("fitact_golden_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("tiny.fitact"), b"not an artifact").unwrap();
        let artifact = load_or_build(&dir, "tiny", || Ok(tiny())).unwrap();
        assert_eq!(artifact.name, "tiny");
        // The cache now holds the repaired artifact.
        assert_eq!(
            ModelArtifact::load(dir.join("tiny.fitact")).unwrap(),
            artifact
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_that_no_longer_instantiates_is_rebuilt() {
        let dir = std::env::temp_dir().join(format!("fitact_golden_drift_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Simulate topology drift: the cached artifact decodes but its spec
        // no longer matches its parameter list.
        let mut stale = tiny();
        if let fitact_nn::LayerSpec::Linear { out_features, .. } = &mut stale.layers[0] {
            *out_features += 1;
        } else {
            panic!("expected a linear spec");
        }
        stale.save(dir.join("tiny.fitact")).unwrap();
        let repaired = load_or_build(&dir, "tiny", || Ok(tiny())).unwrap();
        assert!(repaired.instantiate().is_ok());
        assert_eq!(
            ModelArtifact::load(dir.join("tiny.fitact")).unwrap(),
            repaired,
            "the repaired artifact must replace the stale cache"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn golden_dir_is_under_target() {
        let dir = golden_dir("/some/crate");
        assert!(dir.ends_with("target/golden"));
    }
}
