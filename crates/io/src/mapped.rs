//! Zero-copy artifact loading: [`MappedArtifact`] maps a v2/v3 `.fitact`
//! file read-only and instantiates networks whose parameter tensors *borrow*
//! the mapping instead of owning copies. In a v3 file, f16 parameter words
//! are likewise borrowed zero-copy; int8 blobs decode owned (they interleave
//! values/scales/zero-points and are 4× smaller than f32 to begin with).
//!
//! Every network instantiated from one `MappedArtifact` shares the same
//! physical parameter pages — N serving workers cost one copy of the model,
//! not N. Mutation stays safe because [`fitact_tensor::Tensor`] storage is
//! copy-on-write: the first `as_mut_slice` on a shared tensor materialises a
//! private owned buffer, so a fault-injection campaign (or the canary's
//! deliberate bit flips) can never write through to the mapping other
//! workers are reading.
//!
//! Files that cannot be mapped — v1 artifacts, unsupported platforms,
//! filesystems without mmap — fall back transparently to the owned
//! [`ModelArtifact`] decode; [`MappedArtifact::is_mapped`] reports which
//! path was taken. A *corrupt* v2 file is a hard error on both paths.
//!
//! # Deployment contract
//!
//! Replacing a mapped artifact on disk must go through an **atomic rename**
//! (write to a temp file, `rename(2)` over the target). Truncating or
//! rewriting the file in place while it is mapped yields undefined reads or
//! `SIGBUS` in any process still holding the old mapping.

use crate::artifact::{decode_v2, instantiate_with, ParamSource};
#[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
use crate::artifact::{BlobEncoding, V2Artifact, MAGIC};
use crate::{IoError, ModelArtifact};
use fitact::calibration::ActivationProfile;
use fitact::ProtectionScheme;
use fitact_nn::spec::LayerSpec;
use fitact_nn::Network;
use std::path::Path;

#[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
use {
    crate::mmap::Mapping,
    fitact_tensor::{F16Param, F32Slab, Int8Param, NativeParam, Tensor, U16Slab},
    std::sync::Arc,
};

/// A loaded artifact whose parameter storage is, when possible, one shared
/// read-only file mapping (see the module docs for the exact fallback
/// ladder and mutation semantics).
#[derive(Debug)]
pub struct MappedArtifact {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
    Mapped(MappedModel),
    Owned(ModelArtifact),
}

#[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
#[derive(Debug)]
struct MappedModel {
    head: V2Artifact,
    slab: Arc<MappedSlab>,
}

/// The whole mapped file viewed as an `f32` slab; blob offsets from the
/// validated head index into it.
#[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
#[derive(Debug)]
struct MappedSlab {
    map: Mapping,
}

#[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
impl F32Slab for MappedSlab {
    fn as_f32(&self) -> &[f32] {
        let bytes = self.map.bytes();
        // SAFETY: mappings are page-aligned (so also f32-aligned), the cfg
        // restricts this code to little-endian hosts matching the wire
        // format, every bit pattern is a valid f32, and the mapping is
        // read-only for its whole lifetime.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f32>(), bytes.len() / 4) }
    }
}

#[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
impl U16Slab for MappedSlab {
    fn as_u16(&self) -> &[u16] {
        let bytes = self.map.bytes();
        // SAFETY: as for `as_f32` — page alignment covers u16, the host is
        // little-endian, every bit pattern is a valid u16, and the mapping
        // is read-only for its whole lifetime.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u16>(), bytes.len() / 2) }
    }
}

#[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
impl ParamSource for MappedModel {
    fn count(&self) -> usize {
        self.head.params.len()
    }
    fn total_values(&self) -> u128 {
        self.head.params.iter().map(|p| p.numel as u128).sum()
    }
    fn path(&self, i: usize) -> &str {
        &self.head.params[i].path
    }
    fn trainable(&self, i: usize) -> bool {
        self.head.params[i].trainable
    }
    fn dims(&self, i: usize) -> &[usize] {
        &self.head.params[i].dims
    }
    fn tensor(&self, i: usize) -> Result<Tensor, IoError> {
        let p = &self.head.params[i];
        // Blob offsets are BLOB_ALIGN-padded, hence divisible by 4; the
        // span was bounds-checked against the file by `decode_v2`.
        let slab: Arc<dyn F32Slab> = self.slab.clone();
        Tensor::from_shared(slab, p.byte_offset / 4, &p.dims)
            .map_err(|e| IoError::Corrupt(format!("parameter `{}` is not a tensor: {e}", p.path)))
    }
    fn native(&self, i: usize) -> Result<Option<NativeParam>, IoError> {
        let p = &self.head.params[i];
        let corrupt = |e: fitact_tensor::TensorError| {
            IoError::Corrupt(format!("parameter `{}` native payload: {e}", p.path))
        };
        match p.encoding {
            BlobEncoding::F32 => Ok(None),
            BlobEncoding::F16 => {
                // Zero-copy: the f16 words borrow the shared mapping (offsets
                // are BLOB_ALIGN-padded, hence u16-aligned and divisible by 2).
                let slab: Arc<dyn U16Slab> = self.slab.clone();
                F16Param::from_shared(slab, p.byte_offset / 2, &p.dims)
                    .map(|w| Some(NativeParam::F16(w)))
                    .map_err(corrupt)
            }
            BlobEncoding::Int8 { channels } => {
                // Int8 blobs interleave three spans, so they decode owned —
                // they are 4× smaller than f32 to begin with.
                let bytes = self.map_bytes();
                let blob = &bytes[p.byte_offset..p.byte_offset + p.byte_len()];
                let (qraw, rest) = blob.split_at(p.numel);
                let (sraw, zraw) = rest.split_at(4 * channels);
                Int8Param::from_parts(
                    qraw.iter().map(|&b| b as i8).collect(),
                    sraw.chunks_exact(4)
                        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                        .collect(),
                    zraw.iter().map(|&b| b as i8).collect(),
                    &p.dims,
                )
                .map(|w| Some(NativeParam::Int8(w)))
                .map_err(corrupt)
            }
        }
    }
}

#[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
impl MappedModel {
    fn map_bytes(&self) -> &[u8] {
        self.slab.map.bytes()
    }
}

impl MappedArtifact {
    /// Opens an artifact, mapping it read-only when it is a v2 file on a
    /// platform with mmap support, and falling back to a full in-memory
    /// decode otherwise (v1 files, unsupported platforms, mmap failure).
    ///
    /// # Errors
    ///
    /// Every [`ModelArtifact::load`] error; a structurally invalid v2 file
    /// is rejected (never silently re-read), with identical error values on
    /// the mapped and owned paths.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, IoError> {
        let path = path.as_ref();
        #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
        if let Some(mapped) = Self::try_map(path)? {
            return Ok(mapped);
        }
        Ok(MappedArtifact {
            inner: Inner::Owned(ModelArtifact::load(path)?),
        })
    }

    /// Maps and validates a v2 file. `Ok(None)` means "not mappable, use
    /// the owned fallback" (not v2, too short to sniff, mmap refused);
    /// corruption in a sniffed v2 file is a hard error.
    #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
    fn try_map(path: &Path) -> Result<Option<Self>, IoError> {
        use std::io::Read;
        let file = std::fs::File::open(path)?;
        let mut sniff = [0u8; 12];
        if (&file).read_exact(&mut sniff).is_err() {
            return Ok(None); // shorter than a header: owned path reports it
        }
        let version = u32::from_le_bytes([sniff[8], sniff[9], sniff[10], sniff[11]]);
        if sniff[..8] != MAGIC || !(version == 2 || version == 3) {
            return Ok(None);
        }
        let Ok(map) = Mapping::map_readonly(&file) else {
            return Ok(None); // kernel refused; plain reads may still work
        };
        let head = decode_v2(map.bytes())?;
        Ok(Some(MappedArtifact {
            inner: Inner::Mapped(MappedModel {
                head,
                slab: Arc::new(MappedSlab { map }),
            }),
        }))
    }

    /// Whether the parameter storage is a shared read-only mapping
    /// (`false` means the owned-buffer fallback decoded the file).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
            Inner::Mapped(_) => true,
            Inner::Owned(_) => false,
        }
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        match &self.inner {
            #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
            Inner::Mapped(m) => &m.head.name,
            Inner::Owned(a) => &a.name,
        }
    }

    /// Looks up a metadata key.
    pub fn meta(&self, key: &str) -> Option<&str> {
        let meta = match &self.inner {
            #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
            Inner::Mapped(m) => &m.head.meta,
            Inner::Owned(a) => &a.meta,
        };
        meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Topology descriptors of the top-level layers.
    pub fn layers(&self) -> &[LayerSpec] {
        match &self.inner {
            #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
            Inner::Mapped(m) => &m.head.layers,
            Inner::Owned(a) => &a.layers,
        }
    }

    /// The calibrated activation profile, when present.
    pub fn profile(&self) -> Option<&ActivationProfile> {
        match &self.inner {
            #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
            Inner::Mapped(m) => m.head.profile.as_ref(),
            Inner::Owned(a) => a.profile.as_ref(),
        }
    }

    /// The applied protection scheme, when present.
    pub fn scheme(&self) -> Option<ProtectionScheme> {
        match &self.inner {
            #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
            Inner::Mapped(m) => m.head.scheme,
            Inner::Owned(a) => a.scheme,
        }
    }

    /// Total number of scalar parameter values.
    pub fn num_parameters(&self) -> usize {
        match &self.inner {
            #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
            Inner::Mapped(m) => m.head.params.iter().map(|p| p.numel).sum(),
            Inner::Owned(a) => a.num_parameters(),
        }
    }

    /// Rebuilds a network exactly as [`ModelArtifact::instantiate`] does;
    /// on the mapped path every parameter tensor borrows the shared
    /// mapping (zero copies), on the owned path values are copied in.
    ///
    /// # Errors
    ///
    /// As for [`ModelArtifact::instantiate`].
    pub fn instantiate(&self) -> Result<Network, IoError> {
        match &self.inner {
            #[cfg(all(unix, target_endian = "little", target_pointer_width = "64"))]
            Inner::Mapped(m) => instantiate_with(&m.head.name, &m.head.layers, m),
            Inner::Owned(a) => instantiate_with(&a.name, &a.layers, a),
        }
    }
}
