//! Graceful SIGTERM/SIGINT handling for long-running subcommands.
//!
//! The build environment is offline (no `signal-hook`), so this is the
//! minimal async-signal-safe pattern by hand: the handler only stores into a
//! process-wide atomic flag, and the campaign loops poll that flag at round
//! boundaries. On non-Unix targets installation is a no-op and the flag
//! simply never becomes `true`.

use std::sync::atomic::AtomicBool;

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: everything else is unsafe in a handler.
        super::INTERRUPTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Installs the handlers (idempotent) and returns the interrupt flag.
pub fn install() -> &'static AtomicBool {
    #[cfg(unix)]
    imp::install();
    &INTERRUPTED
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn flag_starts_clear_and_install_is_idempotent() {
        let flag = install();
        let again = install();
        assert!(std::ptr::eq(flag, again));
        // No signal has been delivered in this test process.
        assert!(!flag.load(Ordering::SeqCst));
    }
}
