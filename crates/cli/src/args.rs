//! Minimal `--flag value` argument parsing.
//!
//! The build environment is offline, so no argument-parsing crate is
//! available; the `fitact` surface is small enough that a strict
//! `--key value` grammar with per-command allow-lists covers it. Unknown
//! flags are hard errors (typos must not silently fall back to defaults in
//! a tool that CI gates on).

use std::fmt::Display;
use std::str::FromStr;

/// Parsed `--key value` pairs for one subcommand.
#[derive(Debug, Clone, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parses raw arguments against the allowed flag names (without the
    /// leading `--`).
    ///
    /// # Errors
    ///
    /// Returns a usage message for unknown flags, missing values, repeated
    /// flags or stray positional arguments.
    pub fn parse(raw: &[String], allowed: &[&str]) -> Result<Args, String> {
        let mut pairs = Vec::new();
        let mut iter = raw.iter();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{arg}`"));
            };
            if !allowed.contains(&key) {
                return Err(format!(
                    "unknown flag `--{key}` (expected one of: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            if pairs.iter().any(|(k, _): &(String, String)| k == key) {
                return Err(format!("flag `--{key}` given twice"));
            }
            let value = iter
                .next()
                .ok_or_else(|| format!("flag `--{key}` is missing its value"))?;
            pairs.push((key.to_owned(), value.clone()));
        }
        Ok(Args { pairs })
    }

    /// The raw value of a flag, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The value of a mandatory flag.
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the missing flag.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required flag `--{key}`"))
    }

    /// Parses an optional flag, falling back to `default`.
    ///
    /// # Errors
    ///
    /// Returns a usage message when the value does not parse as `T`.
    pub fn parse_or<T>(&self, key: &str, default: T) -> Result<T, String>
    where
        T: FromStr,
        T::Err: Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(text) => text
                .parse::<T>()
                .map_err(|e| format!("flag `--{key}`: invalid value `{text}`: {e}")),
        }
    }

    /// Parses an optional flag into `Option<T>`.
    ///
    /// # Errors
    ///
    /// Returns a usage message when the value does not parse as `T`.
    pub fn parse_opt<T>(&self, key: &str) -> Result<Option<T>, String>
    where
        T: FromStr,
        T::Err: Display,
    {
        match self.get(key) {
            None => Ok(None),
            Some(text) => text
                .parse::<T>()
                .map(Some)
                .map_err(|e| format!("flag `--{key}`: invalid value `{text}`: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_allowed_pairs() {
        let args = Args::parse(
            &raw(&["--out", "m.fitact", "--epochs", "5"]),
            &["out", "epochs"],
        )
        .unwrap();
        assert_eq!(args.required("out").unwrap(), "m.fitact");
        assert_eq!(args.parse_or("epochs", 1usize).unwrap(), 5);
        assert_eq!(args.parse_or("missing", 9usize).unwrap(), 9);
        assert_eq!(args.parse_opt::<f64>("missing").unwrap(), None);
    }

    #[test]
    fn rejects_unknown_repeated_positional_and_dangling() {
        assert!(Args::parse(&raw(&["--oops", "1"]), &["out"]).is_err());
        assert!(Args::parse(&raw(&["--out", "a", "--out", "b"]), &["out"]).is_err());
        assert!(Args::parse(&raw(&["stray"]), &["out"]).is_err());
        assert!(Args::parse(&raw(&["--out"]), &["out"]).is_err());
    }

    #[test]
    fn invalid_values_name_the_flag() {
        let args = Args::parse(&raw(&["--epochs", "many"]), &["epochs"]).unwrap();
        let err = args.parse_or("epochs", 1usize).unwrap_err();
        assert!(err.contains("--epochs"));
        assert!(args.required("out").is_err());
    }
}
