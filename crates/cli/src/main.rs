//! `fitact` — the FitAct pipeline driver.
//!
//! Subcommands compose through on-disk model artifacts (see the `fitact_io`
//! crate for the format) and print one JSON object to stdout each, so
//! pipelines are scriptable and CI can gate on the reports:
//!
//! ```bash
//! fitact train     --out model.fitact --dataset blobs --epochs 25
//! fitact calibrate --model model.fitact --out calibrated.fitact
//! fitact protect   --model calibrated.fitact --scheme fitact \
//!                  --post-train-epochs 3 --out protected.fitact
//! fitact campaign  --model protected.fitact --fault-rate 1e-3 --out report.json
//! fitact inspect   --model protected.fitact
//!
//! # CI gates
//! fitact diff-report --report report.json --golden ci/golden/pipeline_golden.json
//! fitact bench-gate  --current BENCH_campaign.json --baseline ci/golden/bench_baseline.json
//! ```
//!
//! Exit codes: `0` success, `1` a regression gate failed, `2` usage or
//! runtime error.

mod args;
mod gates;
mod pipeline;

use std::process::ExitCode;

/// CLI failure modes, split by exit code.
#[derive(Debug)]
pub enum CliError {
    /// Bad flags or a failed pipeline stage (exit 2). Holds the message.
    Usage(String),
    /// A regression gate tripped (exit 1). Holds the JSON verdict.
    Gate(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::Usage(msg.into())
    }
}

const USAGE: &str = "\
fitact — FitAct pipeline driver (artifacts in, JSON reports out)

USAGE:
    fitact <COMMAND> [--flag value ...]

PIPELINE COMMANDS:
    train        Train a model on a synthetic dataset and save an artifact
                 (--out; --dataset blobs|synthetic-cifar, --arch mlp|alexnet,
                  --classes, --samples, --data-seed, --hidden, --width,
                  --epochs, --lr, --batch-size, --seed)
    calibrate    Profile activation maxima and embed them in the artifact
                 (--model; --out, --samples, --batch-size, --test-split)
    protect      Apply a protection scheme using the embedded profile
                 (--model, --out; --scheme, --slope, --post-train-epochs,
                  --zeta, --delta, --lr, --batch-size, --seed)
    campaign     Run a statistical fault campaign, emit the Wilson-CI report
                 (--model; --out, --fault-rate, --epsilon, --confidence,
                  --critical-threshold, --round-trials, --min-trials,
                  --max-trials, --seed, --samples, --batch-size, --test-split)
    inspect      Summarise an artifact without running anything (--model)

CI GATES:
    diff-report  Compare a campaign report against a golden report
                 (--report, --golden; --accuracy-tolerance, default 0 = exact):
                 accuracy exact, SDC rates CI-overlap
    bench-gate   Compare bench JSON against a baseline (--current, --baseline;
                 --max-regression, default 0.20)

Exit codes: 0 success, 1 gate failure, 2 usage/runtime error.
";

fn run(command: &str, rest: &[String]) -> Result<fitact_io::JsonValue, CliError> {
    match command {
        "train" => pipeline::train(rest),
        "calibrate" => pipeline::calibrate(rest),
        "protect" => pipeline::protect(rest),
        "campaign" => pipeline::campaign(rest),
        "inspect" => pipeline::inspect(rest),
        "diff-report" => gates::diff_report(rest),
        "bench-gate" => gates::bench_gate(rest),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if command == "--help" || command == "-h" || command == "help" {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(command, &argv[1..]) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(CliError::Gate(verdict)) => {
            // The verdict is the machine-readable output; the failure detail
            // also goes to stderr for humans reading CI logs.
            println!("{verdict}");
            eprintln!("fitact {command}: gate failed");
            ExitCode::from(1)
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("fitact {command}: {msg}");
            ExitCode::from(2)
        }
    }
}
