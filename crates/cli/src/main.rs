//! `fitact` — the FitAct pipeline driver.
//!
//! Subcommands compose through on-disk model artifacts (see the `fitact_io`
//! crate for the format) and print one JSON object to stdout each, so
//! pipelines are scriptable and CI can gate on the reports:
//!
//! ```bash
//! fitact train     --out model.fitact --dataset blobs --epochs 25
//! fitact calibrate --model model.fitact --out calibrated.fitact
//! fitact protect   --model calibrated.fitact --scheme fitact \
//!                  --post-train-epochs 3 --out protected.fitact
//! fitact campaign  --model protected.fitact --fault-rate 1e-3 --out report.json
//! fitact inspect   --model protected.fitact
//!
//! # CI gates
//! fitact diff-report --report report.json --golden ci/golden/pipeline_golden.json
//! fitact bench-gate  --current BENCH_campaign.json --baseline ci/golden/bench_baseline.json
//! ```
//!
//! Exit codes: `0` success, `1` a regression gate failed, `2` usage or
//! runtime error.

mod args;
mod gates;
mod help;
mod pipeline;
mod serve;
mod signals;

use std::process::ExitCode;

/// CLI failure modes, split by exit code.
#[derive(Debug)]
pub enum CliError {
    /// Bad flags or a failed pipeline stage (exit 2). Holds the message.
    Usage(String),
    /// A regression gate tripped (exit 1). Holds the JSON verdict.
    Gate(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::Usage(msg.into())
    }
}

const USAGE: &str = "\
fitact — FitAct pipeline driver (artifacts in, JSON reports out)

USAGE:
    fitact <COMMAND> [--flag value ...]

PIPELINE COMMANDS:
    train        Train a model on a synthetic dataset and save an artifact
                 (--out; --dataset blobs|synthetic-cifar, --arch mlp|alexnet,
                  --classes, --samples, --data-seed, --hidden, --width,
                  --epochs, --lr, --batch-size, --seed)
    calibrate    Profile activation maxima and embed them in the artifact
                 (--model; --out, --samples, --batch-size, --test-split)
    protect      Apply a protection scheme using the embedded profile
                 (--model, --out; --scheme, --slope, --post-train-epochs,
                  --zeta, --delta, --lr, --batch-size, --seed)
    campaign     Run a statistical fault campaign, emit the Wilson-CI report
                 (--model; --out, --fault-rate, --epsilon, --confidence,
                  --critical-threshold, --round-trials, --min-trials,
                  --max-trials, --seed, --samples, --batch-size, --test-split;
                  --checkpoint for resumable runs; --distributed/--listen/
                  --unit-trials/--lease-ms/--local-execute for the
                  coordinator, --worker/--coordinator/--worker-id for workers)
    inspect      Summarise an artifact without running anything (--model)

SERVING:
    serve        Micro-batched HTTP inference server over an artifact
                 (<model.fitact> or --model; --host, --port, --max-batch,
                  --max-wait-ms, --workers, --input-shape, --max-body-bytes;
                  endpoints /predict /healthz /metrics /admin/reload
                  /admin/shutdown)

CI GATES:
    diff-report  Compare a campaign report against a golden report
                 (--report, --golden; --accuracy-tolerance, default 0 = exact):
                 accuracy exact, SDC rates CI-overlap
    bench-gate   Compare bench JSON against a baseline (--current, --baseline;
                 --max-regression, default 0.20)

Run `fitact <COMMAND> --help` for the full per-command reference; the same
material lives in docs/cli.md.

Exit codes: 0 success, 1 gate failure, 2 usage/runtime error.
";

fn run(command: &str, rest: &[String]) -> Result<fitact_io::JsonValue, CliError> {
    match command {
        "train" => pipeline::train(rest),
        "calibrate" => pipeline::calibrate(rest),
        "protect" => pipeline::protect(rest),
        "campaign" => pipeline::campaign(rest),
        "inspect" => pipeline::inspect(rest),
        "serve" => serve::serve(rest),
        "diff-report" => gates::diff_report(rest),
        "bench-gate" => gates::bench_gate(rest),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if command == "--help" || command == "-h" || command == "help" {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    // `fitact <command> --help` prints the per-command reference (kept in
    // lockstep with docs/cli.md) instead of running the command.
    if argv[1..].iter().any(|a| a == "--help" || a == "-h") {
        return match help::for_command(command) {
            Some(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("fitact: unknown command `{command}`\n\n{USAGE}");
                ExitCode::from(2)
            }
        };
    }
    match run(command, &argv[1..]) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(CliError::Gate(verdict)) => {
            // The verdict is the machine-readable output; the failure detail
            // also goes to stderr for humans reading CI logs.
            println!("{verdict}");
            eprintln!("fitact {command}: gate failed");
            ExitCode::from(1)
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("fitact {command}: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full command surface: every command, with the flags its parser
    /// accepts.
    fn surface() -> Vec<(&'static str, &'static [&'static str])> {
        vec![
            ("train", pipeline::TRAIN_FLAGS),
            ("calibrate", pipeline::CALIBRATE_FLAGS),
            ("protect", pipeline::PROTECT_FLAGS),
            ("campaign", pipeline::CAMPAIGN_FLAGS),
            ("inspect", pipeline::INSPECT_FLAGS),
            ("serve", serve::SERVE_FLAGS),
            ("diff-report", gates::DIFF_REPORT_FLAGS),
            ("bench-gate", gates::BENCH_GATE_FLAGS),
        ]
    }

    /// `--help` (and docs/cli.md, which mirrors it) cannot drift from the
    /// parser: every accepted flag appears in the command's help text, and
    /// every `--flag` the help text mentions is accepted.
    #[test]
    fn help_texts_match_accepted_flags() {
        for (command, flags) in surface() {
            let text = help::for_command(command).expect("command has help");
            for flag in flags {
                assert!(
                    text.contains(&format!("--{flag}")),
                    "help for `{command}` is missing --{flag}"
                );
            }
            for word in text.split_whitespace() {
                if let Some(flag) = word.strip_prefix("--") {
                    let flag = flag.trim_end_matches([',', ')', ']', ';', '.']);
                    if !flag.is_empty() {
                        assert!(
                            flags.contains(&flag),
                            "help for `{command}` mentions unaccepted --{flag}"
                        );
                    }
                }
            }
        }
    }

    /// The top-level usage names every routable command (and only real ones
    /// are routable: `run` on an unknown command errors).
    #[test]
    fn usage_names_every_command() {
        for (command, _) in surface() {
            assert!(USAGE.contains(command), "USAGE is missing `{command}`");
        }
        assert!(matches!(
            run("frobnicate", &[]),
            Err(CliError::Usage(msg)) if msg.contains("unknown command")
        ));
    }
}
