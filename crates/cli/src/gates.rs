//! CI regression gates over machine-readable reports.
//!
//! * [`diff_report`] — compares a `fitact campaign` report against a
//!   committed golden report: fault-free accuracy must match **exactly**
//!   (the pipeline is bit-deterministic), while SDC rates — Monte-Carlo
//!   estimates — must agree up to **confidence-interval overlap**.
//! * [`bench_gate`] — compares a bench JSON's recorded speedup (the
//!   checkpoint engine in `BENCH_campaign.json`, the f16 kernel in
//!   `BENCH_matmul.json`) against a committed baseline and fails on a
//!   relative regression beyond the configured budget. `--case NAME`
//!   selects a named sub-object, so one baseline file carries every gated
//!   case.
//!
//! Both gates print a JSON verdict and signal failure through
//! [`crate::CliError::Gate`], which the driver maps to exit code 1 (reserving
//! 2 for usage/runtime errors).

use crate::args::Args;
use crate::CliError;
use fitact_io::JsonValue;

fn read_json(path: &str) -> Result<JsonValue, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::from(format!("cannot read `{path}`: {e}")))?;
    JsonValue::parse(&text).map_err(|e| CliError::from(format!("`{path}` is not valid JSON: {e}")))
}

/// Unwraps the optional `{"command":"campaign", …, "report": {…}}` envelope.
fn campaign_report(doc: &JsonValue) -> &JsonValue {
    doc.get("report").unwrap_or(doc)
}

fn f64_at(doc: &JsonValue, path: &[&str], file: &str) -> Result<f64, CliError> {
    doc.path(path).and_then(JsonValue::as_f64).ok_or_else(|| {
        CliError::from(format!(
            "`{file}` is missing numeric field {}",
            path.join(".")
        ))
    })
}

/// Whether two closed intervals intersect.
fn intervals_overlap(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 <= b.1 && b.0 <= a.1
}

fn interval(doc: &JsonValue, key: &str, file: &str) -> Result<(f64, f64), CliError> {
    Ok((
        f64_at(doc, &[key, "low"], file)?,
        f64_at(doc, &[key, "high"], file)?,
    ))
}

/// The flags `fitact diff-report` accepts (pinned against
/// `help::DIFF_REPORT`).
pub const DIFF_REPORT_FLAGS: &[&str] = &["report", "golden", "accuracy-tolerance"];

/// The flags `fitact bench-gate` accepts (pinned against
/// `help::BENCH_GATE`).
pub const BENCH_GATE_FLAGS: &[&str] = &["current", "baseline", "max-regression", "case"];

/// `fitact diff-report`: gate a campaign report against a golden report.
pub fn diff_report(raw: &[String]) -> Result<JsonValue, CliError> {
    let args = Args::parse(raw, DIFF_REPORT_FLAGS)?;
    let report_path = args.required("report")?;
    let golden_path = args.required("golden")?;
    // Default 0 = exact match: the pipeline is bit-deterministic on one
    // host. Transcendentals (exp/ln in softmax and the FitReLU sigmoid)
    // dispatch to the platform libm, so goldens regenerated on a different
    // libm can shift low bits; operators may loosen to e.g. one sample's
    // worth of accuracy rather than regenerate goldens per platform.
    let accuracy_tolerance = args.parse_or("accuracy-tolerance", 0.0f64)?;
    if !(accuracy_tolerance.is_finite() && accuracy_tolerance >= 0.0) {
        return Err(CliError::Usage(
            "--accuracy-tolerance must be a finite non-negative number".into(),
        ));
    }
    let report_doc = read_json(report_path)?;
    let golden_doc = read_json(golden_path)?;
    let report = campaign_report(&report_doc);
    let golden = campaign_report(&golden_doc);

    let mut failures: Vec<String> = Vec::new();

    // Accuracy is produced by a deterministic pipeline: exact match unless
    // the operator loosened it.
    let got_acc = f64_at(report, &["fault_free_accuracy"], report_path)?;
    let want_acc = f64_at(golden, &["fault_free_accuracy"], golden_path)?;
    if (got_acc - want_acc).abs() > accuracy_tolerance {
        failures.push(if accuracy_tolerance == 0.0 {
            format!("fault_free_accuracy {got_acc} != golden {want_acc} (exact match required)")
        } else {
            format!(
                "fault_free_accuracy {got_acc} differs from golden {want_acc} \
                 by more than the tolerance {accuracy_tolerance}"
            )
        });
    }

    // SDC rates are Monte-Carlo estimates: their confidence intervals must
    // overlap the golden run's.
    for key in ["pooled_critical", "pooled_sdc"] {
        let got = interval(report, key, report_path)?;
        let want = interval(golden, key, golden_path)?;
        if !intervals_overlap(got, want) {
            failures.push(format!(
                "{key} CI [{}, {}] does not overlap golden [{}, {}]",
                got.0, got.1, want.0, want.1
            ));
        }
    }

    let verdict = JsonValue::Object(vec![
        ("command".into(), JsonValue::String("diff-report".into())),
        ("report".into(), JsonValue::String(report_path.into())),
        ("golden".into(), JsonValue::String(golden_path.into())),
        ("match".into(), JsonValue::Bool(failures.is_empty())),
        (
            "failures".into(),
            JsonValue::Array(
                failures
                    .iter()
                    .map(|f| JsonValue::String(f.clone()))
                    .collect(),
            ),
        ),
    ]);
    if failures.is_empty() {
        Ok(verdict)
    } else {
        Err(CliError::Gate(verdict.to_string()))
    }
}

/// `fitact bench-gate`: gate a bench JSON against a committed baseline.
pub fn bench_gate(raw: &[String]) -> Result<JsonValue, CliError> {
    let args = Args::parse(raw, BENCH_GATE_FLAGS)?;
    let current_path = args.required("current")?;
    let baseline_path = args.required("baseline")?;
    let max_regression = args.parse_or("max-regression", 0.20f64)?;
    if !(0.0..1.0).contains(&max_regression) {
        return Err(CliError::Usage("--max-regression must be in [0, 1)".into()));
    }
    let case = args.get("case");
    let current_doc = read_json(current_path)?;
    let baseline_doc = read_json(baseline_path)?;
    // `--case` drills into a named sub-object; a doc that keeps the fields
    // at top level (every bench JSON does) still gates cleanly because the
    // lookup falls back to the document itself.
    let current = case
        .and_then(|n| current_doc.get(n))
        .unwrap_or(&current_doc);
    let baseline = case
        .and_then(|n| baseline_doc.get(n))
        .unwrap_or(&baseline_doc);

    // Smoke-mode bench output carries no meaningful timing; skip loudly
    // rather than gate on noise.
    if current_doc.get("smoke").and_then(JsonValue::as_bool) == Some(true) {
        return Ok(JsonValue::Object(vec![
            ("command".into(), JsonValue::String("bench-gate".into())),
            ("skipped".into(), JsonValue::Bool(true)),
            (
                "reason".into(),
                JsonValue::String("current bench JSON was produced in smoke mode".into()),
            ),
        ]));
    }

    let mut failures: Vec<String> = Vec::new();
    let got = f64_at(current, &["speedup"], current_path)?;
    let want = f64_at(baseline, &["speedup"], baseline_path)?;
    let floor = want * (1.0 - max_regression);
    if got < floor {
        failures.push(format!(
            "checkpoint-engine speedup regressed: {got:.3}× < {floor:.3}× \
             (baseline {want:.3}× − {:.0}% budget)",
            max_regression * 100.0
        ));
    }
    // Required field: a missing/renamed `bit_identical` must fail the gate,
    // not silently disable the engine-identity check.
    match current.get("bit_identical").and_then(JsonValue::as_bool) {
        Some(true) => {}
        Some(false) => failures.push("bench reports engines are no longer bit-identical".into()),
        None => failures.push(format!(
            "`{current_path}` is missing the boolean `bit_identical` field"
        )),
    }

    let verdict = JsonValue::Object(vec![
        ("command".into(), JsonValue::String("bench-gate".into())),
        ("current".into(), JsonValue::String(current_path.into())),
        ("baseline".into(), JsonValue::String(baseline_path.into())),
        (
            "case".into(),
            case.map(|c| JsonValue::String(c.into()))
                .unwrap_or(JsonValue::Null),
        ),
        ("speedup".into(), JsonValue::Number(got)),
        ("baseline_speedup".into(), JsonValue::Number(want)),
        ("floor".into(), JsonValue::Number(floor)),
        ("pass".into(), JsonValue::Bool(failures.is_empty())),
        (
            "failures".into(),
            JsonValue::Array(
                failures
                    .iter()
                    .map(|f| JsonValue::String(f.clone()))
                    .collect(),
            ),
        ),
    ]);
    if failures.is_empty() {
        Ok(verdict)
    } else {
        Err(CliError::Gate(verdict.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_overlap_cases() {
        assert!(intervals_overlap((0.0, 0.5), (0.4, 0.9)));
        assert!(intervals_overlap((0.4, 0.9), (0.0, 0.5)));
        assert!(intervals_overlap((0.0, 1.0), (0.2, 0.3)));
        assert!(!intervals_overlap((0.0, 0.1), (0.2, 0.3)));
        // Touching endpoints count as overlap (closed intervals).
        assert!(intervals_overlap((0.0, 0.2), (0.2, 0.3)));
    }
}
