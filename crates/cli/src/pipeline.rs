//! The artifact-composed pipeline stages:
//! `train → calibrate → protect → campaign`, plus `inspect`.
//!
//! Every stage reads and/or writes a [`ModelArtifact`] and prints one JSON
//! object to stdout, so stages compose through the filesystem and CI can
//! gate on the reports. Dataset provenance travels inside the artifact as
//! [`DataSpec`] metadata: a later stage rematerialises exactly the split the
//! earlier stage used, without shipping tensors.

use crate::args::Args;
use crate::signals;
use crate::CliError;
use fitact::{apply_protection, ActivationProfiler, FitAct, FitActConfig, ProtectionScheme};
use fitact_data::DataSpec;
use fitact_faults::{
    quantize_network, Campaign, CampaignControl, FaultModel, RunOutcome, StatCampaignConfig,
    TransientBitFlip,
};
use fitact_io::{fingerprint_bytes, CampaignCheckpoint, JsonValue, ModelArtifact};
use fitact_nn::layers::{ActivationLayer, Flatten, Linear, Sequential};
use fitact_nn::models::{alexnet, ModelConfig};
use fitact_nn::Network;
use fitact_serve::{Coordinator, CoordinatorConfig, WorkerConfig};
use fitact_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Metadata key recording the last pipeline stage applied to an artifact.
const META_STAGE: &str = "stage";
/// Metadata key recording the architecture name.
const META_ARCH: &str = "arch";

/// The flags `fitact train` accepts (pinned against `help::TRAIN`).
pub const TRAIN_FLAGS: &[&str] = &[
    "out",
    "dataset",
    "classes",
    "samples",
    "data-seed",
    "arch",
    "hidden",
    "width",
    "epochs",
    "lr",
    "batch-size",
    "seed",
];

/// The flags `fitact calibrate` accepts (pinned against `help::CALIBRATE`).
pub const CALIBRATE_FLAGS: &[&str] = &["model", "out", "samples", "batch-size", "test-split"];

/// The flags `fitact protect` accepts (pinned against `help::PROTECT`).
pub const PROTECT_FLAGS: &[&str] = &[
    "model",
    "out",
    "scheme",
    "slope",
    "post-train-epochs",
    "zeta",
    "delta",
    "lr",
    "batch-size",
    "samples",
    "test-split",
    "seed",
    "precision",
];

/// The flags `fitact campaign` accepts (pinned against `help::CAMPAIGN`).
pub const CAMPAIGN_FLAGS: &[&str] = &[
    "model",
    "out",
    "fault-rate",
    "epsilon",
    "confidence",
    "critical-threshold",
    "round-trials",
    "min-trials",
    "max-trials",
    "allocation",
    "floor-trials",
    "seed",
    "samples",
    "batch-size",
    "test-split",
    "checkpoint",
    "distributed",
    "listen",
    "unit-trials",
    "lease-ms",
    "local-execute",
    "worker",
    "coordinator",
    "worker-id",
];

/// The flags `fitact inspect` accepts (pinned against `help::INSPECT`).
pub const INSPECT_FLAGS: &[&str] = &["model"];

fn obj(entries: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn num(v: f64) -> JsonValue {
    JsonValue::Number(v)
}

fn text(v: impl Into<String>) -> JsonValue {
    JsonValue::String(v.into())
}

fn load_artifact(path: &str) -> Result<ModelArtifact, CliError> {
    ModelArtifact::load(path)
        .map_err(|e| CliError::from(format!("cannot load artifact `{path}`: {e}")))
}

/// Reconstructs the dataset spec from artifact metadata, with CLI overrides.
fn data_spec(artifact: &ModelArtifact, args: &Args) -> Result<DataSpec, CliError> {
    let mut spec = DataSpec::from_meta(|k| artifact.meta(k)).ok_or_else(|| {
        "artifact carries no dataset metadata; it was not produced by `fitact train`".to_string()
    })?;
    if let Some(samples) = args.parse_opt::<usize>("samples")? {
        spec = spec.with_samples(samples);
    }
    if args.parse_or("test-split", false)? {
        spec = spec.test();
    }
    Ok(spec)
}

fn materialize(spec: &DataSpec) -> Result<(Tensor, Vec<usize>), CliError> {
    spec.materialize()
        .map_err(|e| CliError::from(format!("dataset generation failed: {e}")))
}

fn parse_scheme(name: &str, slope: f32) -> Result<ProtectionScheme, CliError> {
    match name {
        "unprotected" => Ok(ProtectionScheme::Unprotected),
        "ranger" => Ok(ProtectionScheme::Ranger),
        "clipact" => Ok(ProtectionScheme::ClipAct),
        "clipact-per-channel" => Ok(ProtectionScheme::ClipActPerChannel),
        "fitact" => Ok(ProtectionScheme::FitAct { slope }),
        "fitact-naive" => Ok(ProtectionScheme::FitActNaive),
        other => Err(CliError::from(format!(
            "unknown protection scheme `{other}` (expected unprotected, ranger, clipact, \
             clipact-per-channel, fitact or fitact-naive)"
        ))),
    }
}

/// Builds the requested architecture for the dataset's input shape.
fn build_network(
    arch: &str,
    data: &DataSpec,
    hidden: usize,
    width: f32,
    seed: u64,
) -> Result<Network, CliError> {
    match arch {
        "mlp" => {
            let features: usize = data.input_shape().iter().product();
            let mut rng = StdRng::seed_from_u64(seed);
            Ok(Network::new(
                "mlp",
                Sequential::new()
                    .with(Box::new(Flatten::new()))
                    .with(Box::new(Linear::new(features, hidden, &mut rng)))
                    .with(Box::new(ActivationLayer::relu("h1", &[hidden])))
                    .with(Box::new(Linear::new(hidden, data.classes, &mut rng))),
            ))
        }
        "alexnet" => {
            if data.input_shape() != vec![3, 32, 32] {
                return Err(CliError::from(
                    "arch `alexnet` requires --dataset synthetic-cifar",
                ));
            }
            alexnet(
                &ModelConfig::new(data.classes)
                    .with_width(width)
                    .with_seed(seed),
            )
            .map_err(|e| CliError::from(format!("cannot build alexnet: {e}")))
        }
        other => Err(CliError::from(format!(
            "unknown arch `{other}` (expected mlp or alexnet)"
        ))),
    }
}

/// `fitact train`: stage-1 accuracy training on a synthetic dataset, saved
/// as a fresh artifact.
pub fn train(raw: &[String]) -> Result<JsonValue, CliError> {
    let args = Args::parse(raw, TRAIN_FLAGS)?;
    let out = args.required("out")?;
    let dataset = args.get("dataset").unwrap_or("blobs");
    let classes = args.parse_or("classes", 3usize)?;
    let samples = args.parse_or("samples", 256usize)?;
    let data_seed = args.parse_or("data-seed", 1u64)?;
    let spec = match dataset {
        "blobs" => DataSpec::blobs(classes, samples, data_seed),
        "synthetic-cifar" => DataSpec::synthetic_cifar(classes, samples, data_seed),
        other => return Err(CliError::from(format!("unknown dataset `{other}`"))),
    };
    let arch = args.get("arch").unwrap_or("mlp");
    let hidden = args.parse_or("hidden", 32usize)?;
    let width = args.parse_or("width", 0.0626f32)?;
    let epochs = args.parse_or("epochs", 15usize)?;
    let lr = args.parse_or("lr", 0.05f32)?;
    let batch_size = args.parse_or("batch-size", 32usize)?;
    let seed = args.parse_or("seed", 0u64)?;

    let (inputs, targets) = materialize(&spec)?;
    let mut network = build_network(arch, &spec, hidden, width, seed)?;
    let fitact = FitAct::new(FitActConfig {
        batch_size,
        seed,
        ..Default::default()
    });
    let report = fitact
        .train_for_accuracy(&mut network, &inputs, &targets, epochs, lr)
        .map_err(|e| format!("training failed: {e}"))?;
    let accuracy = network
        .evaluate(&inputs, &targets, batch_size)
        .map_err(|e| format!("evaluation failed: {e}"))?;

    let mut artifact = ModelArtifact::capture(&network)
        .map_err(|e| format!("cannot capture the trained network: {e}"))?;
    for (k, v) in spec.to_meta() {
        artifact.set_meta(k, v);
    }
    artifact.set_meta(META_STAGE, "trained");
    artifact.set_meta(META_ARCH, arch);
    artifact
        .save(out)
        .map_err(|e| format!("cannot save `{out}`: {e}"))?;

    Ok(obj(vec![
        ("command", text("train")),
        ("out", text(out)),
        ("arch", text(arch)),
        ("dataset", text(dataset)),
        ("epochs", num(epochs as f64)),
        ("final_loss", num(f64::from(report.final_loss))),
        ("train_accuracy", num(f64::from(accuracy))),
        ("num_parameters", num(artifact.num_parameters() as f64)),
    ]))
}

/// `fitact calibrate`: profiles per-neuron activation maxima over the
/// training split and embeds the profile in the artifact.
pub fn calibrate(raw: &[String]) -> Result<JsonValue, CliError> {
    let args = Args::parse(raw, CALIBRATE_FLAGS)?;
    let model = args.required("model")?;
    let out = args.get("out").unwrap_or(model);
    let batch_size = args.parse_or("batch-size", 32usize)?;

    let mut artifact = load_artifact(model)?;
    let spec = data_spec(&artifact, &args)?;
    let (inputs, _) = materialize(&spec)?;
    let mut network = artifact
        .instantiate()
        .map_err(|e| format!("cannot instantiate `{model}`: {e}"))?;
    let profile = ActivationProfiler::new(batch_size)
        .and_then(|p| p.profile(&mut network, &inputs))
        .map_err(|e| format!("calibration failed: {e}"))?;

    let slots: Vec<JsonValue> = profile
        .slots
        .iter()
        .map(|s| {
            obj(vec![
                ("label", text(&s.label)),
                ("neurons", num(s.num_neurons() as f64)),
                ("layer_max", num(f64::from(s.layer_max))),
            ])
        })
        .collect();
    let total_neurons = profile.total_neurons();
    artifact.profile = Some(profile);
    artifact.set_meta(META_STAGE, "calibrated");
    artifact
        .save(out)
        .map_err(|e| format!("cannot save `{out}`: {e}"))?;

    Ok(obj(vec![
        ("command", text("calibrate")),
        ("model", text(model)),
        ("out", text(out)),
        ("calibration_samples", num(spec.samples as f64)),
        ("total_neurons", num(total_neurons as f64)),
        ("slots", JsonValue::Array(slots)),
    ]))
}

/// `fitact protect`: applies a protection scheme (and optionally the FitAct
/// bound post-training stage) using the artifact's embedded profile.
pub fn protect(raw: &[String]) -> Result<JsonValue, CliError> {
    let args = Args::parse(raw, PROTECT_FLAGS)?;
    let model = args.required("model")?;
    let out = args.required("out")?;
    let slope = args.parse_or("slope", fitact::activations::DEFAULT_SLOPE)?;
    let scheme = parse_scheme(args.get("scheme").unwrap_or("fitact"), slope)?;
    let post_train_epochs = args.parse_or("post-train-epochs", 0usize)?;
    let batch_size = args.parse_or("batch-size", 32usize)?;

    let artifact = load_artifact(model)?;
    let profile = artifact.profile.clone().ok_or_else(|| {
        format!("artifact `{model}` has no calibration profile; run `fitact calibrate` first")
    })?;
    let mut network = artifact
        .instantiate()
        .map_err(|e| format!("cannot instantiate `{model}`: {e}"))?;
    apply_protection(&mut network, &profile, scheme)
        .map_err(|e| format!("cannot apply protection: {e}"))?;

    let mut post_train = JsonValue::Null;
    if post_train_epochs > 0 {
        if !matches!(scheme, ProtectionScheme::FitAct { .. }) {
            return Err("only --scheme fitact has trainable bounds to post-train".into());
        }
        let spec = data_spec(&artifact, &args)?;
        let (inputs, targets) = materialize(&spec)?;
        let fitact = FitAct::new(FitActConfig {
            slope,
            zeta: args.parse_or("zeta", 0.05f32)?,
            delta: args.parse_or("delta", 0.05f32)?,
            post_train_epochs,
            post_train_lr: args.parse_or("lr", 0.02f32)?,
            batch_size,
            seed: args.parse_or("seed", 0u64)?,
        });
        let report = fitact
            .post_train(&mut network, &inputs, &targets)
            .map_err(|e| format!("post-training failed: {e}"))?;
        post_train = obj(vec![
            ("epochs_run", num(report.epochs_run as f64)),
            ("initial_accuracy", num(f64::from(report.initial_accuracy))),
            ("final_accuracy", num(f64::from(report.final_accuracy))),
            (
                "mean_bound_before",
                num(f64::from(report.mean_bound_before)),
            ),
            ("mean_bound_after", num(f64::from(report.mean_bound_after))),
            (
                "constraint_satisfied",
                JsonValue::Bool(report.constraint_satisfied),
            ),
        ]);
    }

    // Quantisation comes last: bound post-training needs f32 gradients, and
    // the artifact then stores (and every later stage computes in) the
    // reduced encoding.
    let precision = match args.get("precision") {
        None => fitact_tensor::Precision::F32,
        Some(text) => fitact_tensor::Precision::parse(text).ok_or_else(|| {
            CliError::from(format!(
                "flag `--precision`: unknown precision `{text}` (expected f32, f16 or int8)"
            ))
        })?,
    };
    network.quantize_to(precision);

    let mut protected = ModelArtifact::capture_protected(&network, Some(&profile), Some(scheme))
        .map_err(|e| format!("cannot capture the protected network: {e}"))?;
    protected.meta = artifact.meta.clone();
    protected.set_meta(META_STAGE, "protected");
    protected.set_meta("scheme", scheme.name());
    protected.set_meta("precision", precision.name());
    protected
        .save(out)
        .map_err(|e| format!("cannot save `{out}`: {e}"))?;

    Ok(obj(vec![
        ("command", text("protect")),
        ("model", text(model)),
        ("out", text(out)),
        ("scheme", text(scheme.name())),
        ("precision", text(precision.name())),
        ("num_parameters", num(protected.num_parameters() as f64)),
        ("post_train", post_train),
    ]))
}

/// The worker-thread count for campaign execution (results are bit-identical
/// at any count; this only sets throughput).
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The statistical campaign configuration from CLI flags.
fn campaign_config(args: &Args) -> Result<StatCampaignConfig, CliError> {
    let name = args.get("allocation").unwrap_or("equal");
    let allocation = fitact_faults::AllocationPolicy::parse(name).ok_or_else(|| {
        format!("unknown allocation policy `{name}` (expected `equal` or `neyman`)")
    })?;
    Ok(StatCampaignConfig {
        fault_rate: args.parse_or("fault-rate", 1e-3f64)?,
        batch_size: args.parse_or("batch-size", 32usize)?,
        seed: args.parse_or("seed", 0u64)?,
        epsilon: args.parse_or("epsilon", 0.05f64)?,
        confidence: args.parse_or("confidence", 0.95f64)?,
        critical_threshold: args.parse_or("critical-threshold", 0.05f32)?,
        round_trials: args.parse_or("round-trials", 8usize)?,
        min_trials: args.parse_or("min-trials", 24usize)?,
        max_trials: args.parse_or("max-trials", 256usize)?,
        allocation,
        floor_trials: args.parse_or("floor-trials", 1usize)?,
        ..Default::default()
    })
}

/// The campaign result object shared by the single-process and coordinator
/// paths — identical shape so reports diff cleanly across modes.
fn campaign_result(
    args: &Args,
    model: &str,
    network_name: &str,
    scheme: Option<&'static str>,
    eval_samples: usize,
    report: &fitact_faults::CampaignReport,
) -> Result<JsonValue, CliError> {
    let report_json = JsonValue::parse(&report.to_json())
        .map_err(|e| format!("internal error: campaign report JSON did not parse: {e}"))?;
    let result = obj(vec![
        ("command", text("campaign")),
        ("model", text(model)),
        ("network", text(network_name)),
        ("scheme", scheme.map(text).unwrap_or(JsonValue::Null)),
        ("eval_samples", num(eval_samples as f64)),
        ("report", report_json),
    ]);
    if let Some(out) = args.get("out") {
        std::fs::write(out, format!("{result}\n"))
            .map_err(|e| format!("cannot write `{out}`: {e}"))?;
    }
    Ok(result)
}

/// The JSON line printed when a campaign checkpoints and exits gracefully.
fn resumable_result(checkpoint: &std::path::Path, rounds: usize, trials: usize) -> JsonValue {
    obj(vec![
        ("command", text("campaign")),
        ("status", text("resumable")),
        ("checkpoint", text(checkpoint.display().to_string())),
        ("rounds", num(rounds as f64)),
        ("trials", num(trials as f64)),
    ])
}

/// `fitact campaign`: runs the statistical fault campaign against a loaded
/// artifact and emits the full Wilson-CI report. `--distributed true` turns
/// this process into a unit-sharding coordinator, `--worker true` into a
/// worker pulling units from one; both degrade gracefully (the coordinator
/// runs solo without workers, workers retry with backoff) and both resume
/// from `--checkpoint` after SIGTERM or a crash, bit-identically.
pub fn campaign(raw: &[String]) -> Result<JsonValue, CliError> {
    let args = Args::parse(raw, CAMPAIGN_FLAGS)?;
    let worker = args.parse_or("worker", false)?;
    let distributed = args.parse_or("distributed", false)?;
    if worker && distributed {
        return Err("--worker and --distributed are mutually exclusive".into());
    }
    if worker {
        campaign_worker(&args)
    } else if distributed {
        campaign_coordinator(&args)
    } else {
        campaign_single(&args)
    }
}

/// Worker mode: everything (config, dataset provenance, model artifact)
/// comes from the coordinator, so no `--model` is needed.
fn campaign_worker(args: &Args) -> Result<JsonValue, CliError> {
    let coordinator = args.required("coordinator")?;
    let worker_id = args
        .get("worker-id")
        .map(str::to_owned)
        .unwrap_or_else(|| format!("worker-{}", std::process::id()));
    let stop = signals::install();
    let config = WorkerConfig {
        coordinator: coordinator.to_owned(),
        worker_id,
        threads: default_threads(),
        ..WorkerConfig::default()
    };
    let summary =
        fitact_serve::run_worker_until(&config, stop).map_err(|e| format!("worker failed: {e}"))?;
    Ok(obj(vec![
        ("command", text("campaign")),
        ("mode", text("worker")),
        ("coordinator", text(coordinator)),
        ("worker_id", text(summary.worker_id)),
        ("units", num(summary.units as f64)),
        ("trials", num(summary.trials as f64)),
    ]))
}

/// Coordinator mode: shards the trial space into leased work units, merges
/// worker results, checkpoints, and also executes units in-process unless
/// `--local-execute false`.
fn campaign_coordinator(args: &Args) -> Result<JsonValue, CliError> {
    let model = args.required("model")?;
    let bytes = std::fs::read(model).map_err(|e| format!("cannot read artifact `{model}`: {e}"))?;
    let artifact = ModelArtifact::from_bytes(&bytes)
        .map_err(|e| format!("cannot load artifact `{model}`: {e}"))?;
    let spec = data_spec(&artifact, args)?;
    let eval_samples = materialize(&spec)?.1.len();
    let config = campaign_config(args)?;
    let options = CoordinatorConfig {
        listen: args.get("listen").unwrap_or("127.0.0.1:0").to_owned(),
        unit_trials: args.parse_or("unit-trials", 4usize)?,
        lease: Duration::from_millis(args.parse_or("lease-ms", 30_000u64)?),
        checkpoint: args.get("checkpoint").map(PathBuf::from),
        local_execute: args.parse_or("local-execute", true)?,
        threads: default_threads(),
    };
    let coordinator =
        Coordinator::start_with_data(bytes, spec, config, Arc::new(TransientBitFlip), &options)
            .map_err(|e| format!("coordinator failed to start: {e}"))?;
    // Workers need the address before the final report exists; stdout stays
    // reserved for the one JSON result object.
    eprintln!(
        "{{\"status\":\"listening\",\"addr\":\"{}\"}}",
        coordinator.addr()
    );

    let stop = signals::install();
    let done = std::sync::atomic::AtomicBool::new(false);
    let outcome = std::thread::scope(|scope| {
        let watcher = scope.spawn(|| {
            while !done.load(Ordering::SeqCst) {
                if stop.load(Ordering::SeqCst) {
                    coordinator.stop();
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        });
        let outcome = coordinator.run_to_completion();
        done.store(true, Ordering::SeqCst);
        let _ = watcher.join();
        outcome
    });
    match outcome {
        Ok(Some(report)) => {
            let result = campaign_result(
                args,
                model,
                &artifact.name,
                artifact.scheme.map(|s| s.name()),
                eval_samples,
                &report,
            );
            coordinator.shutdown();
            result
        }
        Ok(None) => {
            let status = coordinator.status();
            coordinator.shutdown();
            let checkpoint = args.get("checkpoint").unwrap_or("(none)");
            let rounds = JsonValue::parse(&status)
                .ok()
                .and_then(|s| s.get("round").and_then(JsonValue::as_f64))
                .unwrap_or(0.0) as usize;
            let trials = JsonValue::parse(&status)
                .ok()
                .and_then(|s| s.get("total_trials").and_then(JsonValue::as_f64))
                .unwrap_or(0.0) as usize;
            Ok(resumable_result(
                std::path::Path::new(checkpoint),
                rounds,
                trials,
            ))
        }
        Err(e) => {
            coordinator.shutdown();
            Err(format!("distributed campaign failed: {e}").into())
        }
    }
}

/// Single-process mode: the original in-process campaign, optionally made
/// resumable with `--checkpoint` (graceful SIGTERM/SIGINT, crash-safe
/// per-round snapshots, bit-identical resume).
fn campaign_single(args: &Args) -> Result<JsonValue, CliError> {
    let model = args.required("model")?;
    let bytes = std::fs::read(model).map_err(|e| format!("cannot read artifact `{model}`: {e}"))?;
    let artifact = ModelArtifact::from_bytes(&bytes)
        .map_err(|e| format!("cannot load artifact `{model}`: {e}"))?;
    let spec = data_spec(&artifact, args)?;
    let (inputs, targets) = materialize(&spec)?;
    let mut network = artifact
        .instantiate()
        .map_err(|e| format!("cannot instantiate `{model}`: {e}"))?;
    let config = campaign_config(args)?;

    let report = match args.get("checkpoint").map(PathBuf::from) {
        None => {
            fitact::assess_resilience(&mut network, &inputs, &targets, &config, &TransientBitFlip)
                .map_err(|e| format!("campaign failed: {e}"))?
        }
        Some(path) => {
            let stop = signals::install();
            let fingerprint = fingerprint_bytes(&bytes);
            // `assess_resilience` quantizes before running; match it so the
            // resumable path stays bit-identical to the plain one.
            quantize_network(&mut network);
            let resume = if path.exists() {
                let checkpoint = CampaignCheckpoint::load(&path)
                    .map_err(|e| format!("cannot resume from `{}`: {e}", path.display()))?;
                checkpoint
                    .validate_against(&config, TransientBitFlip.name(), fingerprint)
                    .map_err(|e| {
                        format!("checkpoint `{}` is not resumable here: {e}", path.display())
                    })?;
                Some(checkpoint.pools)
            } else {
                None
            };
            let fault_free = network
                .evaluate(&inputs, &targets, config.batch_size)
                .map_err(|e| format!("baseline evaluation failed: {e}"))?;
            let network_name = network.name().to_owned();
            let snapshot = |pools: Vec<fitact_faults::StratumPool>| {
                CampaignCheckpoint::new(
                    config.clone(),
                    TransientBitFlip.name(),
                    network_name.clone(),
                    fingerprint,
                    fault_free,
                    pools,
                    Vec::new(),
                )
            };
            let mut save_error: Option<String> = None;
            let outcome = Campaign::new(&mut network, &inputs, &targets)
                .map_err(|e| format!("campaign failed: {e}"))?
                .run_until_resumable(
                    &config,
                    &TransientBitFlip,
                    default_threads(),
                    resume,
                    &mut |progress| {
                        if let Err(e) = snapshot(progress.pools.clone()).save(&path) {
                            save_error = Some(e.to_string());
                            return CampaignControl::Stop;
                        }
                        if stop.load(Ordering::SeqCst) {
                            CampaignControl::Stop
                        } else {
                            CampaignControl::Continue
                        }
                    },
                )
                .map_err(|e| format!("campaign failed: {e}"))?;
            if let Some(e) = save_error {
                return Err(format!("cannot write checkpoint `{}`: {e}", path.display()).into());
            }
            match outcome {
                RunOutcome::Finished(report) => {
                    let _ = std::fs::remove_file(&path);
                    report
                }
                RunOutcome::Interrupted(progress) => {
                    snapshot(progress.pools.clone()).save(&path).map_err(|e| {
                        format!("cannot write checkpoint `{}`: {e}", path.display())
                    })?;
                    return Ok(resumable_result(
                        &path,
                        progress.rounds,
                        progress.total_trials(),
                    ));
                }
            }
        }
    };

    campaign_result(
        args,
        model,
        network.name(),
        artifact.scheme.map(|s| s.name()),
        targets.len(),
        &report,
    )
}

/// `fitact inspect`: summarises an artifact without running anything.
pub fn inspect(raw: &[String]) -> Result<JsonValue, CliError> {
    let args = Args::parse(raw, INSPECT_FLAGS)?;
    let model = args.required("model")?;
    let artifact = load_artifact(model)?;
    let network = artifact
        .instantiate()
        .map_err(|e| format!("cannot instantiate `{model}`: {e}"))?;
    let layers: Vec<JsonValue> = network
        .root()
        .layers()
        .iter()
        .map(|l| text(l.name()))
        .collect();
    let params: Vec<JsonValue> = artifact
        .params
        .iter()
        .map(|p| {
            obj(vec![
                ("path", text(&p.path)),
                (
                    "dims",
                    JsonValue::Array(p.dims.iter().map(|&d| num(d as f64)).collect()),
                ),
                ("trainable", JsonValue::Bool(p.trainable)),
            ])
        })
        .collect();
    let meta: Vec<(String, JsonValue)> = artifact
        .meta
        .iter()
        .map(|(k, v)| (k.clone(), text(v)))
        .collect();
    Ok(obj(vec![
        ("command", text("inspect")),
        ("model", text(model)),
        ("name", text(&artifact.name)),
        ("format_version", num(f64::from(artifact.format_version()))),
        ("num_parameters", num(artifact.num_parameters() as f64)),
        ("layers", JsonValue::Array(layers)),
        ("params", JsonValue::Array(params)),
        (
            "scheme",
            artifact
                .scheme
                .map(|s| text(s.name()))
                .unwrap_or(JsonValue::Null),
        ),
        (
            "profile_slots",
            artifact
                .profile
                .as_ref()
                .map(|p| num(p.len() as f64))
                .unwrap_or(JsonValue::Null),
        ),
        ("meta", JsonValue::Object(meta)),
    ]))
}
