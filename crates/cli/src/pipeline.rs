//! The artifact-composed pipeline stages:
//! `train → calibrate → protect → campaign`, plus `inspect`.
//!
//! Every stage reads and/or writes a [`ModelArtifact`] and prints one JSON
//! object to stdout, so stages compose through the filesystem and CI can
//! gate on the reports. Dataset provenance travels inside the artifact as
//! [`DataSpec`] metadata: a later stage rematerialises exactly the split the
//! earlier stage used, without shipping tensors.

use crate::args::Args;
use crate::CliError;
use fitact::{apply_protection, ActivationProfiler, FitAct, FitActConfig, ProtectionScheme};
use fitact_data::DataSpec;
use fitact_faults::StatCampaignConfig;
use fitact_io::{JsonValue, ModelArtifact};
use fitact_nn::layers::{ActivationLayer, Flatten, Linear, Sequential};
use fitact_nn::models::{alexnet, ModelConfig};
use fitact_nn::Network;
use fitact_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Metadata key recording the last pipeline stage applied to an artifact.
const META_STAGE: &str = "stage";
/// Metadata key recording the architecture name.
const META_ARCH: &str = "arch";

/// The flags `fitact train` accepts (pinned against `help::TRAIN`).
pub const TRAIN_FLAGS: &[&str] = &[
    "out",
    "dataset",
    "classes",
    "samples",
    "data-seed",
    "arch",
    "hidden",
    "width",
    "epochs",
    "lr",
    "batch-size",
    "seed",
];

/// The flags `fitact calibrate` accepts (pinned against `help::CALIBRATE`).
pub const CALIBRATE_FLAGS: &[&str] = &["model", "out", "samples", "batch-size", "test-split"];

/// The flags `fitact protect` accepts (pinned against `help::PROTECT`).
pub const PROTECT_FLAGS: &[&str] = &[
    "model",
    "out",
    "scheme",
    "slope",
    "post-train-epochs",
    "zeta",
    "delta",
    "lr",
    "batch-size",
    "samples",
    "test-split",
    "seed",
];

/// The flags `fitact campaign` accepts (pinned against `help::CAMPAIGN`).
pub const CAMPAIGN_FLAGS: &[&str] = &[
    "model",
    "out",
    "fault-rate",
    "epsilon",
    "confidence",
    "critical-threshold",
    "round-trials",
    "min-trials",
    "max-trials",
    "seed",
    "samples",
    "batch-size",
    "test-split",
];

/// The flags `fitact inspect` accepts (pinned against `help::INSPECT`).
pub const INSPECT_FLAGS: &[&str] = &["model"];

fn obj(entries: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn num(v: f64) -> JsonValue {
    JsonValue::Number(v)
}

fn text(v: impl Into<String>) -> JsonValue {
    JsonValue::String(v.into())
}

fn load_artifact(path: &str) -> Result<ModelArtifact, CliError> {
    ModelArtifact::load(path)
        .map_err(|e| CliError::from(format!("cannot load artifact `{path}`: {e}")))
}

/// Reconstructs the dataset spec from artifact metadata, with CLI overrides.
fn data_spec(artifact: &ModelArtifact, args: &Args) -> Result<DataSpec, CliError> {
    let mut spec = DataSpec::from_meta(|k| artifact.meta(k)).ok_or_else(|| {
        "artifact carries no dataset metadata; it was not produced by `fitact train`".to_string()
    })?;
    if let Some(samples) = args.parse_opt::<usize>("samples")? {
        spec = spec.with_samples(samples);
    }
    if args.parse_or("test-split", false)? {
        spec = spec.test();
    }
    Ok(spec)
}

fn materialize(spec: &DataSpec) -> Result<(Tensor, Vec<usize>), CliError> {
    spec.materialize()
        .map_err(|e| CliError::from(format!("dataset generation failed: {e}")))
}

fn parse_scheme(name: &str, slope: f32) -> Result<ProtectionScheme, CliError> {
    match name {
        "unprotected" => Ok(ProtectionScheme::Unprotected),
        "ranger" => Ok(ProtectionScheme::Ranger),
        "clipact" => Ok(ProtectionScheme::ClipAct),
        "clipact-per-channel" => Ok(ProtectionScheme::ClipActPerChannel),
        "fitact" => Ok(ProtectionScheme::FitAct { slope }),
        "fitact-naive" => Ok(ProtectionScheme::FitActNaive),
        other => Err(CliError::from(format!(
            "unknown protection scheme `{other}` (expected unprotected, ranger, clipact, \
             clipact-per-channel, fitact or fitact-naive)"
        ))),
    }
}

/// Builds the requested architecture for the dataset's input shape.
fn build_network(
    arch: &str,
    data: &DataSpec,
    hidden: usize,
    width: f32,
    seed: u64,
) -> Result<Network, CliError> {
    match arch {
        "mlp" => {
            let features: usize = data.input_shape().iter().product();
            let mut rng = StdRng::seed_from_u64(seed);
            Ok(Network::new(
                "mlp",
                Sequential::new()
                    .with(Box::new(Flatten::new()))
                    .with(Box::new(Linear::new(features, hidden, &mut rng)))
                    .with(Box::new(ActivationLayer::relu("h1", &[hidden])))
                    .with(Box::new(Linear::new(hidden, data.classes, &mut rng))),
            ))
        }
        "alexnet" => {
            if data.input_shape() != vec![3, 32, 32] {
                return Err(CliError::from(
                    "arch `alexnet` requires --dataset synthetic-cifar",
                ));
            }
            alexnet(
                &ModelConfig::new(data.classes)
                    .with_width(width)
                    .with_seed(seed),
            )
            .map_err(|e| CliError::from(format!("cannot build alexnet: {e}")))
        }
        other => Err(CliError::from(format!(
            "unknown arch `{other}` (expected mlp or alexnet)"
        ))),
    }
}

/// `fitact train`: stage-1 accuracy training on a synthetic dataset, saved
/// as a fresh artifact.
pub fn train(raw: &[String]) -> Result<JsonValue, CliError> {
    let args = Args::parse(raw, TRAIN_FLAGS)?;
    let out = args.required("out")?;
    let dataset = args.get("dataset").unwrap_or("blobs");
    let classes = args.parse_or("classes", 3usize)?;
    let samples = args.parse_or("samples", 256usize)?;
    let data_seed = args.parse_or("data-seed", 1u64)?;
    let spec = match dataset {
        "blobs" => DataSpec::blobs(classes, samples, data_seed),
        "synthetic-cifar" => DataSpec::synthetic_cifar(classes, samples, data_seed),
        other => return Err(CliError::from(format!("unknown dataset `{other}`"))),
    };
    let arch = args.get("arch").unwrap_or("mlp");
    let hidden = args.parse_or("hidden", 32usize)?;
    let width = args.parse_or("width", 0.0626f32)?;
    let epochs = args.parse_or("epochs", 15usize)?;
    let lr = args.parse_or("lr", 0.05f32)?;
    let batch_size = args.parse_or("batch-size", 32usize)?;
    let seed = args.parse_or("seed", 0u64)?;

    let (inputs, targets) = materialize(&spec)?;
    let mut network = build_network(arch, &spec, hidden, width, seed)?;
    let fitact = FitAct::new(FitActConfig {
        batch_size,
        seed,
        ..Default::default()
    });
    let report = fitact
        .train_for_accuracy(&mut network, &inputs, &targets, epochs, lr)
        .map_err(|e| format!("training failed: {e}"))?;
    let accuracy = network
        .evaluate(&inputs, &targets, batch_size)
        .map_err(|e| format!("evaluation failed: {e}"))?;

    let mut artifact = ModelArtifact::capture(&network)
        .map_err(|e| format!("cannot capture the trained network: {e}"))?;
    for (k, v) in spec.to_meta() {
        artifact.set_meta(k, v);
    }
    artifact.set_meta(META_STAGE, "trained");
    artifact.set_meta(META_ARCH, arch);
    artifact
        .save(out)
        .map_err(|e| format!("cannot save `{out}`: {e}"))?;

    Ok(obj(vec![
        ("command", text("train")),
        ("out", text(out)),
        ("arch", text(arch)),
        ("dataset", text(dataset)),
        ("epochs", num(epochs as f64)),
        ("final_loss", num(f64::from(report.final_loss))),
        ("train_accuracy", num(f64::from(accuracy))),
        ("num_parameters", num(artifact.num_parameters() as f64)),
    ]))
}

/// `fitact calibrate`: profiles per-neuron activation maxima over the
/// training split and embeds the profile in the artifact.
pub fn calibrate(raw: &[String]) -> Result<JsonValue, CliError> {
    let args = Args::parse(raw, CALIBRATE_FLAGS)?;
    let model = args.required("model")?;
    let out = args.get("out").unwrap_or(model);
    let batch_size = args.parse_or("batch-size", 32usize)?;

    let mut artifact = load_artifact(model)?;
    let spec = data_spec(&artifact, &args)?;
    let (inputs, _) = materialize(&spec)?;
    let mut network = artifact
        .instantiate()
        .map_err(|e| format!("cannot instantiate `{model}`: {e}"))?;
    let profile = ActivationProfiler::new(batch_size)
        .and_then(|p| p.profile(&mut network, &inputs))
        .map_err(|e| format!("calibration failed: {e}"))?;

    let slots: Vec<JsonValue> = profile
        .slots
        .iter()
        .map(|s| {
            obj(vec![
                ("label", text(&s.label)),
                ("neurons", num(s.num_neurons() as f64)),
                ("layer_max", num(f64::from(s.layer_max))),
            ])
        })
        .collect();
    let total_neurons = profile.total_neurons();
    artifact.profile = Some(profile);
    artifact.set_meta(META_STAGE, "calibrated");
    artifact
        .save(out)
        .map_err(|e| format!("cannot save `{out}`: {e}"))?;

    Ok(obj(vec![
        ("command", text("calibrate")),
        ("model", text(model)),
        ("out", text(out)),
        ("calibration_samples", num(spec.samples as f64)),
        ("total_neurons", num(total_neurons as f64)),
        ("slots", JsonValue::Array(slots)),
    ]))
}

/// `fitact protect`: applies a protection scheme (and optionally the FitAct
/// bound post-training stage) using the artifact's embedded profile.
pub fn protect(raw: &[String]) -> Result<JsonValue, CliError> {
    let args = Args::parse(raw, PROTECT_FLAGS)?;
    let model = args.required("model")?;
    let out = args.required("out")?;
    let slope = args.parse_or("slope", fitact::activations::DEFAULT_SLOPE)?;
    let scheme = parse_scheme(args.get("scheme").unwrap_or("fitact"), slope)?;
    let post_train_epochs = args.parse_or("post-train-epochs", 0usize)?;
    let batch_size = args.parse_or("batch-size", 32usize)?;

    let artifact = load_artifact(model)?;
    let profile = artifact.profile.clone().ok_or_else(|| {
        format!("artifact `{model}` has no calibration profile; run `fitact calibrate` first")
    })?;
    let mut network = artifact
        .instantiate()
        .map_err(|e| format!("cannot instantiate `{model}`: {e}"))?;
    apply_protection(&mut network, &profile, scheme)
        .map_err(|e| format!("cannot apply protection: {e}"))?;

    let mut post_train = JsonValue::Null;
    if post_train_epochs > 0 {
        if !matches!(scheme, ProtectionScheme::FitAct { .. }) {
            return Err("only --scheme fitact has trainable bounds to post-train".into());
        }
        let spec = data_spec(&artifact, &args)?;
        let (inputs, targets) = materialize(&spec)?;
        let fitact = FitAct::new(FitActConfig {
            slope,
            zeta: args.parse_or("zeta", 0.05f32)?,
            delta: args.parse_or("delta", 0.05f32)?,
            post_train_epochs,
            post_train_lr: args.parse_or("lr", 0.02f32)?,
            batch_size,
            seed: args.parse_or("seed", 0u64)?,
        });
        let report = fitact
            .post_train(&mut network, &inputs, &targets)
            .map_err(|e| format!("post-training failed: {e}"))?;
        post_train = obj(vec![
            ("epochs_run", num(report.epochs_run as f64)),
            ("initial_accuracy", num(f64::from(report.initial_accuracy))),
            ("final_accuracy", num(f64::from(report.final_accuracy))),
            (
                "mean_bound_before",
                num(f64::from(report.mean_bound_before)),
            ),
            ("mean_bound_after", num(f64::from(report.mean_bound_after))),
            (
                "constraint_satisfied",
                JsonValue::Bool(report.constraint_satisfied),
            ),
        ]);
    }

    let mut protected = ModelArtifact::capture_protected(&network, Some(&profile), Some(scheme))
        .map_err(|e| format!("cannot capture the protected network: {e}"))?;
    protected.meta = artifact.meta.clone();
    protected.set_meta(META_STAGE, "protected");
    protected.set_meta("scheme", scheme.name());
    protected
        .save(out)
        .map_err(|e| format!("cannot save `{out}`: {e}"))?;

    Ok(obj(vec![
        ("command", text("protect")),
        ("model", text(model)),
        ("out", text(out)),
        ("scheme", text(scheme.name())),
        ("num_parameters", num(protected.num_parameters() as f64)),
        ("post_train", post_train),
    ]))
}

/// `fitact campaign`: runs the statistical fault campaign against a loaded
/// artifact and emits the full Wilson-CI report.
pub fn campaign(raw: &[String]) -> Result<JsonValue, CliError> {
    let args = Args::parse(raw, CAMPAIGN_FLAGS)?;
    let model = args.required("model")?;
    let artifact = load_artifact(model)?;
    let spec = data_spec(&artifact, &args)?;
    let (inputs, targets) = materialize(&spec)?;
    let mut network = artifact
        .instantiate()
        .map_err(|e| format!("cannot instantiate `{model}`: {e}"))?;

    let config = StatCampaignConfig {
        fault_rate: args.parse_or("fault-rate", 1e-3f64)?,
        batch_size: args.parse_or("batch-size", 32usize)?,
        seed: args.parse_or("seed", 0u64)?,
        epsilon: args.parse_or("epsilon", 0.05f64)?,
        confidence: args.parse_or("confidence", 0.95f64)?,
        critical_threshold: args.parse_or("critical-threshold", 0.05f32)?,
        round_trials: args.parse_or("round-trials", 8usize)?,
        min_trials: args.parse_or("min-trials", 24usize)?,
        max_trials: args.parse_or("max-trials", 256usize)?,
        ..Default::default()
    };
    let report = fitact::assess_resilience(
        &mut network,
        &inputs,
        &targets,
        &config,
        &fitact_faults::TransientBitFlip,
    )
    .map_err(|e| format!("campaign failed: {e}"))?;

    let report_json = JsonValue::parse(&report.to_json())
        .map_err(|e| format!("internal error: campaign report JSON did not parse: {e}"))?;
    let result = obj(vec![
        ("command", text("campaign")),
        ("model", text(model)),
        ("network", text(network.name())),
        (
            "scheme",
            artifact
                .scheme
                .map(|s| text(s.name()))
                .unwrap_or(JsonValue::Null),
        ),
        ("eval_samples", num(targets.len() as f64)),
        ("report", report_json),
    ]);
    if let Some(out) = args.get("out") {
        std::fs::write(out, format!("{result}\n"))
            .map_err(|e| format!("cannot write `{out}`: {e}"))?;
    }
    Ok(result)
}

/// `fitact inspect`: summarises an artifact without running anything.
pub fn inspect(raw: &[String]) -> Result<JsonValue, CliError> {
    let args = Args::parse(raw, INSPECT_FLAGS)?;
    let model = args.required("model")?;
    let artifact = load_artifact(model)?;
    let network = artifact
        .instantiate()
        .map_err(|e| format!("cannot instantiate `{model}`: {e}"))?;
    let layers: Vec<JsonValue> = network
        .root()
        .layers()
        .iter()
        .map(|l| text(l.name()))
        .collect();
    let params: Vec<JsonValue> = artifact
        .params
        .iter()
        .map(|p| {
            obj(vec![
                ("path", text(&p.path)),
                (
                    "dims",
                    JsonValue::Array(p.dims.iter().map(|&d| num(d as f64)).collect()),
                ),
                ("trainable", JsonValue::Bool(p.trainable)),
            ])
        })
        .collect();
    let meta: Vec<(String, JsonValue)> = artifact
        .meta
        .iter()
        .map(|(k, v)| (k.clone(), text(v)))
        .collect();
    Ok(obj(vec![
        ("command", text("inspect")),
        ("model", text(model)),
        ("name", text(&artifact.name)),
        ("format_version", num(f64::from(fitact_io::FORMAT_VERSION))),
        ("num_parameters", num(artifact.num_parameters() as f64)),
        ("layers", JsonValue::Array(layers)),
        ("params", JsonValue::Array(params)),
        (
            "scheme",
            artifact
                .scheme
                .map(|s| text(s.name()))
                .unwrap_or(JsonValue::Null),
        ),
        (
            "profile_slots",
            artifact
                .profile
                .as_ref()
                .map(|p| num(p.len() as f64))
                .unwrap_or(JsonValue::Null),
        ),
        ("meta", JsonValue::Object(meta)),
    ]))
}
