//! `fitact serve`: the micro-batched inference server as a pipeline stage.
//!
//! Unlike the batch stages, `serve` is long-running: it prints one JSON
//! startup line (with the resolved bind address, so scripts against
//! `--port 0` can parse where to connect), blocks until a
//! `POST /admin/shutdown` arrives, and then returns the final metrics
//! snapshot as its report.

use crate::args::Args;
use crate::CliError;
use fitact_io::JsonValue;
use fitact_serve::{RetryPolicy, ServeConfig, Server};
use std::io::Write;
use std::time::Duration;

/// The flags `fitact serve` accepts (see `help::SERVE` / `docs/cli.md`).
pub const SERVE_FLAGS: &[&str] = &[
    "model",
    "host",
    "port",
    "max-batch",
    "max-wait-ms",
    "workers",
    "input-shape",
    "max-body-bytes",
    "max-queue",
    "max-connections",
    "io-timeout-ms",
    "idle-timeout-ms",
    "retry-policy",
    "violation-threshold",
    "canary-rate",
    "precision",
];

/// Parses `3x32x32`-style shape syntax.
fn parse_shape(text: &str) -> Result<Vec<usize>, String> {
    let dims: Result<Vec<usize>, _> = text.split('x').map(str::parse::<usize>).collect();
    match dims {
        Ok(dims) if !dims.is_empty() && dims.iter().all(|&d| d > 0) => Ok(dims),
        _ => Err(format!(
            "flag `--input-shape`: invalid shape `{text}` (expected e.g. 3x32x32)"
        )),
    }
}

/// Runs the server until an admin shutdown, returning the final summary.
pub fn serve(raw: &[String]) -> Result<JsonValue, CliError> {
    // The model path may be given positionally (`fitact serve model.fitact`)
    // or as `--model`; the strict flag parser sees only the rest.
    let (positional, rest): (&[String], &[String]) = match raw.first() {
        Some(first) if !first.starts_with("--") => (&raw[..1], &raw[1..]),
        _ => (&[], raw),
    };
    let args = Args::parse(rest, SERVE_FLAGS)?;
    let model = match (positional.first(), args.get("model")) {
        (Some(_), Some(_)) => {
            return Err("model given both positionally and via --model".into());
        }
        (Some(path), None) => path.as_str(),
        (None, Some(path)) => path,
        (None, None) => return Err("missing model artifact (positional or --model)".into()),
    };
    let host = args.get("host").unwrap_or("127.0.0.1");
    let port = args.parse_or("port", 8080u16)?;
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        addr: format!("{host}:{port}"),
        max_batch: args.parse_or("max-batch", defaults.max_batch)?,
        max_wait: Duration::from_millis(args.parse_or("max-wait-ms", 5u64)?),
        workers: args.parse_or("workers", defaults.workers)?,
        input_shape: match args.get("input-shape") {
            None => None,
            Some(text) => Some(parse_shape(text)?),
        },
        max_body_bytes: args.parse_or("max-body-bytes", defaults.max_body_bytes)?,
        max_queue: args.parse_or("max-queue", defaults.max_queue)?,
        max_connections: args.parse_or("max-connections", defaults.max_connections)?,
        io_timeout: Duration::from_millis(
            args.parse_or("io-timeout-ms", defaults.io_timeout.as_millis() as u64)?,
        ),
        idle_timeout: Duration::from_millis(
            args.parse_or("idle-timeout-ms", defaults.idle_timeout.as_millis() as u64)?,
        ),
        retry_policy: match args.get("retry-policy") {
            None => defaults.retry_policy,
            Some(text) => RetryPolicy::parse(text)
                .map_err(|e| CliError::from(format!("flag `--retry-policy`: {e}")))?,
        },
        violation_threshold: args.parse_or("violation-threshold", defaults.violation_threshold)?,
        canary_rate: args.parse_or("canary-rate", defaults.canary_rate)?,
        precision: match args.get("precision") {
            None => None,
            Some(text) => Some(fitact_tensor::Precision::parse(text).ok_or_else(|| {
                CliError::from(format!(
                    "flag `--precision`: unknown precision `{text}` (expected f32, f16 or int8)"
                ))
            })?),
        },
    };
    let server =
        Server::start(model, &config).map_err(|e| format!("cannot serve `{model}`: {e}"))?;
    let startup = JsonValue::Object(vec![
        ("command".into(), JsonValue::String("serve".into())),
        ("status".into(), JsonValue::String("listening".into())),
        ("model".into(), JsonValue::String(model.into())),
        ("addr".into(), JsonValue::String(server.addr().to_string())),
        (
            "max_batch".into(),
            JsonValue::Number(config.max_batch as f64),
        ),
        (
            "max_wait_ms".into(),
            JsonValue::Number(config.max_wait.as_millis() as f64),
        ),
        ("workers".into(), JsonValue::Number(config.workers as f64)),
        (
            "precision".into(),
            config
                .precision
                .map(|p| JsonValue::String(p.name().into()))
                .unwrap_or(JsonValue::Null),
        ),
        (
            "retry_policy".into(),
            JsonValue::String(config.retry_policy.as_str().into()),
        ),
        ("canary_rate".into(), JsonValue::Number(config.canary_rate)),
    ]);
    println!("{startup}");
    // Scripts (and the CI smoke job) poll stdout for this line before
    // connecting; a buffered pipe would deadlock them.
    std::io::stdout().flush().ok();
    let final_metrics = server.join();
    Ok(JsonValue::Object(vec![
        ("command".into(), JsonValue::String("serve".into())),
        ("status".into(), JsonValue::String("shut down".into())),
        ("final_metrics".into(), final_metrics.to_json()),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_syntax() {
        assert_eq!(parse_shape("3x32x32").unwrap(), vec![3, 32, 32]);
        assert_eq!(parse_shape("8").unwrap(), vec![8]);
        for bad in ["", "x", "3x", "3x0x2", "3,2", "axb"] {
            assert!(parse_shape(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn retry_policy_flag_is_validated_before_startup() {
        let raw: Vec<String> = ["m.fitact", "--retry-policy", "sometimes"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match serve(&raw) {
            Err(CliError::Usage(msg)) => {
                assert!(msg.contains("--retry-policy"), "{msg}");
                assert!(msg.contains("sometimes"), "{msg}");
            }
            other => panic!("expected a usage error, got {other:?}"),
        }
    }

    #[test]
    fn model_argument_forms_are_validated() {
        // Missing model.
        assert!(serve(&[]).is_err());
        // Both forms at once.
        let raw: Vec<String> = ["m.fitact", "--model", "other.fitact"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(serve(&raw).is_err());
        // A nonexistent artifact is a usage error, not a panic.
        let raw: Vec<String> = ["/nonexistent/x.fitact"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match serve(&raw) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("cannot serve"), "{msg}"),
            other => panic!("expected a usage error, got {other:?}"),
        }
    }
}
