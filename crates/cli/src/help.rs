//! Per-command `--help` texts.
//!
//! These are the single source of truth for the CLI surface together with
//! `docs/cli.md`: the reference document reproduces exactly the flags,
//! defaults and exit codes listed here, and `crates/cli` unit tests pin the
//! two against drift (every flag a command accepts must appear in its help
//! text, and vice versa).

/// The per-command help text, or `None` for an unknown command.
pub fn for_command(command: &str) -> Option<&'static str> {
    Some(match command {
        "train" => TRAIN,
        "calibrate" => CALIBRATE,
        "protect" => PROTECT,
        "campaign" => CAMPAIGN,
        "inspect" => INSPECT,
        "serve" => SERVE,
        "diff-report" => DIFF_REPORT,
        "bench-gate" => BENCH_GATE,
        _ => return None,
    })
}

pub const TRAIN: &str = "\
fitact train — stage-1 accuracy training on a synthetic dataset

USAGE:
    fitact train --out <model.fitact> [flags]

FLAGS:
    --out PATH           (required) artifact to write
    --dataset NAME       blobs | synthetic-cifar          [default: blobs]
    --arch NAME          mlp | alexnet                    [default: mlp]
    --classes N          number of classes                [default: 3]
    --samples N          training samples                 [default: 256]
    --data-seed N        dataset generator seed           [default: 1]
    --hidden N           mlp hidden width                 [default: 32]
    --width F            alexnet width multiplier         [default: 0.0626]
    --epochs N           training epochs                  [default: 15]
    --lr F               learning rate                    [default: 0.05]
    --batch-size N       mini-batch size                  [default: 32]
    --seed N             weight-init / shuffle seed       [default: 0]

Prints one JSON report; the dataset spec is recorded as artifact metadata
so later stages rematerialise the identical split.
Exit codes: 0 success, 2 usage/runtime error.
";

pub const CALIBRATE: &str = "\
fitact calibrate — profile per-neuron activation maxima, embed the profile

USAGE:
    fitact calibrate --model <model.fitact> [flags]

FLAGS:
    --model PATH         (required) artifact to read
    --out PATH           artifact to write                [default: --model]
    --samples N          calibration samples              [default: artifact's]
    --batch-size N       profiling batch size             [default: 32]
    --test-split BOOL    profile on the held-out split    [default: false]

Exit codes: 0 success, 2 usage/runtime error.
";

pub const PROTECT: &str = "\
fitact protect — apply a protection scheme using the embedded profile

USAGE:
    fitact protect --model <calibrated.fitact> --out <protected.fitact> [flags]

FLAGS:
    --model PATH         (required) calibrated artifact to read
    --out PATH           (required) protected artifact to write
    --scheme NAME        unprotected | ranger | clipact | clipact-per-channel |
                         fitact | fitact-naive            [default: fitact]
    --slope F            FitReLU sigmoid slope            [default: 8]
    --post-train-epochs N  FitAct bound post-training     [default: 0]
    --zeta F             bound-regulariser weight         [default: 0.05]
    --delta F            accuracy-drop constraint         [default: 0.05]
    --lr F               post-training learning rate      [default: 0.02]
    --batch-size N       post-training batch size         [default: 32]
    --samples N          post-training samples            [default: artifact's]
    --test-split BOOL    post-train on the held-out split [default: false]
    --seed N             post-training shuffle seed       [default: 0]
    --precision NAME     f32 | f16 | int8: element type the protected
                         artifact stores its weights in   [default: f32]

Exit codes: 0 success, 2 usage/runtime error.
";

pub const CAMPAIGN: &str = "\
fitact campaign — statistical fault campaign with a Wilson-CI report

USAGE:
    fitact campaign --model <model.fitact> [flags]
    fitact campaign --model <model.fitact> --distributed true [flags]
    fitact campaign --worker true --coordinator <host:port> [flags]

FLAGS:
    --model PATH         (required unless worker mode) artifact to evaluate
    --out PATH           also write the JSON report here
    --fault-rate F       per-bit fault rate               [default: 1e-3]
    --epsilon F          target CI half-width             [default: 0.05]
    --confidence F       CI confidence level              [default: 0.95]
    --critical-threshold F  accuracy drop counted as critical SDC [default: 0.05]
    --round-trials N     trials per stratum per round     [default: 8]
    --min-trials N       minimum before early stopping    [default: 24]
    --max-trials N       total trial budget               [default: 256]
    --allocation NAME    round-budget allocation policy: `equal` splits each
                         round evenly across strata; `neyman` reallocates in
                         proportion to stratum weight × estimated σ from the
                         merged pools (deterministic, delivery-order
                         independent)                     [default: equal]
    --floor-trials N     per-stratum minimum per round under `neyman`
                         (keeps every σ estimate alive)   [default: 1]
    --seed N             per-trial fault streams seed     [default: 0]
    --samples N          evaluation samples               [default: artifact's]
    --batch-size N       evaluation batch size            [default: 32]
    --test-split BOOL    evaluate the held-out split      [default: false]

RESUMABLE RUNS:
    --checkpoint PATH    checkpoint campaign state after every round
                         (atomic rename, crash-safe); SIGTERM/SIGINT
                         checkpoints and exits 0 with a resumable JSON
                         line, and re-running with the same flags resumes
                         bit-identically

COORDINATOR MODE (shards trials into leased work units over HTTP):
    --distributed BOOL   run as campaign coordinator      [default: false]
    --listen ADDR        bind address; port 0 is ephemeral [default: 127.0.0.1:0]
    --unit-trials N      trials per leased work unit      [default: 4]
    --lease-ms N         unit lease before re-dispatch    [default: 30000]
    --local-execute BOOL coordinator also executes units
                         (solo completion without workers) [default: true]

WORKER MODE (config, dataset and model all come from the coordinator):
    --worker BOOL        run as campaign worker           [default: false]
    --coordinator ADDR   coordinator to pull units from (required)
    --worker-id ID       stable worker identity           [default: worker-<pid>]

The report is bit-identical across all three modes, any worker count and
any interruption/resume pattern (see docs/distributed.md).
Exit codes: 0 success (including a graceful resumable stop), 2 usage/
runtime error.
";

pub const INSPECT: &str = "\
fitact inspect — summarise an artifact without running anything

USAGE:
    fitact inspect --model <model.fitact>

FLAGS:
    --model PATH         (required) artifact to summarise

Prints name, format version, layer list, parameter shapes, protection
scheme, profile presence and metadata as one JSON object.
Exit codes: 0 success, 2 usage/runtime error.
";

pub const SERVE: &str = "\
fitact serve — micro-batched HTTP inference server over an artifact

USAGE:
    fitact serve <model.fitact> [flags]
    fitact serve --model <model.fitact> [flags]

FLAGS:
    --model PATH         the artifact to serve (alternative to the
                         positional form)
    --host ADDR          bind address                     [default: 127.0.0.1]
    --port N             bind port; 0 picks an ephemeral port [default: 8080]
    --max-batch N        rows coalesced per forward pass  [default: 8]
    --max-wait-ms N      batching window in milliseconds  [default: 5]
    --workers N          worker threads (warm model clones) [default: 2]
    --input-shape DIMS   per-sample input shape, e.g. 3x32x32
                         [default: inferred from the artifact]
    --max-body-bytes N   request body size limit          [default: 8388608]
    --max-queue N        pending-row cap; beyond it /predict answers 503
                         [default: 1024]
    --max-connections N  concurrent-connection cap; excess answered 503
                         with Retry-After (load-shedding)  [default: 256]
    --io-timeout-ms N    deadline for socket progress while a request is
                         being read or a response written; a stalled
                         connection is answered 408       [default: 30000]
    --idle-timeout-ms N  how long an idle keep-alive connection may sit
                         between requests before it is closed
                         [default: 60000]
    --retry-policy NAME  off | flag | retry: what to do when a batch's
                         violation trace crosses the threshold [default: off]
    --violation-threshold N  per-batch violation count that makes a batch
                         suspect                          [default: 1]
    --canary-rate F      per-bit fault rate for the fault-injected shadow
                         replica; 0 disables it           [default: 0]
    --precision NAME     f32 | f16 | int8: require the artifact to store
                         its weights in this element type; startup and
                         hot reload fail on a mismatch    [default: any]

ENDPOINTS:
    POST /predict        {\"inputs\": [[...], ...]} or {\"input\": [...]} ->
                         {\"outputs\", \"classes\", \"batch_sizes\"}
    GET  /healthz        liveness + model identity
    GET  /metrics        counters, batch-size histogram, latency percentiles,
                         violation/recovery/canary telemetry
    POST /admin/reload   hot-swap the artifact from disk
    POST /admin/metrics/reset  empty the latency window (counters untouched)
    POST /admin/shutdown graceful drain + stop

On startup one JSON line with the bound address is printed and flushed;
the process then blocks until POST /admin/shutdown and prints a final
JSON summary. Responses are bit-identical to single-sample evaluation
regardless of batching (see docs/serving.md), and with the default
retry policy also byte-identical to a server without recovery
(see docs/recovery.md).
Exit codes: 0 graceful shutdown, 2 usage/runtime error.
";

pub const DIFF_REPORT: &str = "\
fitact diff-report — gate a campaign report against a golden report

USAGE:
    fitact diff-report --report <report.json> --golden <golden.json> [flags]

FLAGS:
    --report PATH        (required) candidate campaign report
    --golden PATH        (required) committed golden report
    --accuracy-tolerance F  allowed |accuracy delta|      [default: 0 = exact]

Fault-free accuracy must match exactly (the pipeline is bit-deterministic
on a given host); Monte-Carlo SDC rates must agree up to confidence-
interval overlap.
Exit codes: 0 gates hold, 1 a gate failed, 2 usage/runtime error.
";

pub const BENCH_GATE: &str = "\
fitact bench-gate — gate bench JSON against a committed baseline

USAGE:
    fitact bench-gate --current <BENCH.json> --baseline <baseline.json> [flags]

FLAGS:
    --current PATH       (required) freshly measured bench JSON
    --baseline PATH      (required) committed baseline JSON
    --max-regression F   allowed relative speedup loss    [default: 0.20]
    --case NAME          gate the named sub-object (e.g. campaign_throughput,
                         matmul_f16) so one baseline file carries every
                         gated case                       [default: top level]

The bench's bit-identity flag must hold and the measured speedup must not
regress more than --max-regression against the baseline.
Exit codes: 0 gates hold, 1 a gate failed, 2 usage/runtime error.
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_command_has_help() {
        for cmd in [
            "train",
            "calibrate",
            "protect",
            "campaign",
            "inspect",
            "serve",
            "diff-report",
            "bench-gate",
        ] {
            let text = for_command(cmd).expect(cmd);
            assert!(text.contains(cmd), "help for {cmd} names the command");
            assert!(text.contains("Exit codes"), "help for {cmd} lists exits");
        }
        assert!(for_command("nope").is_none());
    }
}
