//! Eval-mode forward passes are **batch-invariant**: a sample's output is
//! bit-identical whether it is evaluated alone, inside any batch, or across
//! any batch split.
//!
//! This is the contract the `fitact_serve` micro-batching scheduler builds
//! on — coalescing concurrent requests into one forward pass must be a pure
//! throughput optimisation, never a numerics change. It holds because every
//! eval-mode layer is row-local: elementwise ops, per-sample conv/pool
//! lowering, batch-norm running statistics — and the one batch-shaped
//! matmul (`Linear`, `x·Wᵀ`) always takes the packed kernel whose per-row
//! arithmetic is independent of the row count (pinned at the kernel level
//! by `nt_rows_are_independent_of_row_count` in `fitact_tensor`).
//!
//! Train mode is deliberately *not* covered: batch-norm batch statistics
//! and dropout masks make training genuinely batch-shaped.

use fitact_nn::layers::{
    ActivationLayer, BatchNorm2d, Conv2d, Dropout, Flatten, GlobalAvgPool, Linear, MaxPool2d, Mode,
    Sequential,
};
use fitact_nn::network::copy_batch_into;
use fitact_nn::trace::{self, ViolationTrace};
use fitact_nn::Network;
use fitact_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An MLP whose hidden products are large enough to exercise the packed
/// matmul path at every batch size.
fn mlp() -> Network {
    let mut rng = StdRng::seed_from_u64(40);
    Network::new(
        "mlp",
        Sequential::new()
            .with(Box::new(Linear::new(96, 256, &mut rng)))
            .with(Box::new(ActivationLayer::relu("h1", &[256])))
            .with(Box::new(Dropout::new(0.3, 5).unwrap()))
            .with(Box::new(Linear::new(256, 64, &mut rng)))
            .with(Box::new(ActivationLayer::relu("h2", &[64])))
            .with(Box::new(Linear::new(64, 7, &mut rng))),
    )
}

/// A CNN touching every spatial layer type (conv, batch-norm, max-pool,
/// global-avg-pool, flatten) ahead of the linear head.
fn cnn() -> Network {
    let mut rng = StdRng::seed_from_u64(41);
    Network::new(
        "cnn",
        Sequential::new()
            .with(Box::new(Conv2d::new(3, 6, 3, 1, 1, &mut rng)))
            .with(Box::new(BatchNorm2d::new(6)))
            .with(Box::new(ActivationLayer::relu("c1", &[6, 12, 12])))
            .with(Box::new(MaxPool2d::new(2, 2)))
            .with(Box::new(Conv2d::new(6, 10, 3, 1, 1, &mut rng)))
            .with(Box::new(ActivationLayer::relu("c2", &[10, 6, 6])))
            .with(Box::new(GlobalAvgPool::new()))
            .with(Box::new(Flatten::new()))
            .with(Box::new(Linear::new(10, 5, &mut rng))),
    )
}

/// Forwards `inputs` in batches of `batch` and stacks the output rows.
fn forward_in_batches(net: &mut Network, inputs: &Tensor, batch: usize) -> Tensor {
    let n = inputs.dims()[0];
    let mut staging = Tensor::default();
    let mut rows: Vec<Tensor> = Vec::with_capacity(n);
    let mut start = 0;
    while start < n {
        let end = (start + batch).min(n);
        copy_batch_into(inputs, start, end, &mut staging).unwrap();
        let out = net.forward(&staging, Mode::Eval).unwrap();
        for i in 0..(end - start) {
            rows.push(out.index_axis0(i).unwrap());
        }
        start = end;
    }
    Tensor::stack(&rows).unwrap()
}

fn assert_batch_invariant(mut net: Network, inputs: Tensor) {
    let n = inputs.dims()[0];
    let full = net.forward(&inputs, Mode::Eval).unwrap();
    // Every split must reproduce the full-batch rows bit-for-bit — single
    // samples, a prime-size split with a ragged tail, and near-halves.
    for batch in [1usize, 3, n / 2, n] {
        let split = forward_in_batches(&mut net, &inputs, batch);
        assert_eq!(
            split,
            full,
            "{}: batch={batch} must be bit-identical to the full batch of {n}",
            net.name()
        );
    }
}

#[test]
fn mlp_forward_is_batch_invariant() {
    let mut rng = StdRng::seed_from_u64(42);
    let inputs = init::uniform(&[13, 96], -1.0, 1.0, &mut rng);
    assert_batch_invariant(mlp(), inputs);
}

#[test]
fn cnn_forward_is_batch_invariant() {
    let mut rng = StdRng::seed_from_u64(43);
    let inputs = init::uniform(&[9, 3, 12, 12], -1.0, 1.0, &mut rng);
    assert_batch_invariant(cnn(), inputs);
}

/// The same invariance, with violation tracing active: the trace is
/// observe-only, so a traced forward must be bit-identical to an untraced
/// one — on every layer mix, and while the trace itself still sees every
/// activation slot.
#[test]
fn violation_tracing_never_perturbs_outputs() {
    let mut rng = StdRng::seed_from_u64(44);
    for (mut net, inputs, slots) in [
        (mlp(), init::uniform(&[13, 96], -1.0, 1.0, &mut rng), 2),
        (
            cnn(),
            init::uniform(&[9, 3, 12, 12], -1.0, 1.0, &mut rng),
            2,
        ),
    ] {
        let untraced = net.forward(&inputs, Mode::Eval).unwrap();
        let mut violation_trace = ViolationTrace::new();
        let traced =
            trace::capture(&mut violation_trace, || net.forward(&inputs, Mode::Eval)).unwrap();
        assert_eq!(
            traced,
            untraced,
            "{}: tracing must be a pure observer",
            net.name()
        );
        // The trace really did observe the pass: one slot per activation
        // layer, every pre-activation element inspected, and — plain
        // unbounded ReLUs — zero violations.
        assert_eq!(violation_trace.slots().len(), slots, "{}", net.name());
        assert!(
            violation_trace.slots().iter().all(|s| s.elements > 0),
            "{}",
            net.name()
        );
        assert_eq!(violation_trace.total(), 0, "{}", net.name());
    }
}

// The protected-model variant of this invariance (FitAct wrappers are
// elementwise, so protection cannot reintroduce batch coupling) lives in
// the workspace suite `tests/serve_identity.rs` — the protection schemes
// come from the `fitact` core crate, which sits above this one.
