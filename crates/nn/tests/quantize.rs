//! Reduced-precision network storage: quantisation, full-fidelity
//! snapshots and the inference-only contract.

use fitact_nn::layers::{ActivationLayer, Conv2d, Flatten, Linear, Mode, Sequential};
use fitact_nn::{Network, NnError};
use fitact_tensor::{init, NativeParam, Precision, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_mlp(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    Network::new(
        "mlp",
        Sequential::new()
            .with(Box::new(Linear::new(6, 5, &mut rng)))
            .with(Box::new(ActivationLayer::relu("act", &[5])))
            .with(Box::new(Linear::new(5, 3, &mut rng))),
    )
}

fn small_cnn(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    Network::new(
        "cnn",
        Sequential::new()
            .with(Box::new(Conv2d::new(1, 4, 3, 1, 1, &mut rng)))
            .with(Box::new(ActivationLayer::relu("act", &[4, 4, 4])))
            .with(Box::new(Flatten::new()))
            .with(Box::new(Linear::new(4 * 4 * 4, 3, &mut rng))),
    )
}

fn batch(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    init::uniform(dims, -1.0, 1.0, &mut rng)
}

#[test]
fn quantize_to_f16_converts_matrix_params_only() {
    let mut net = small_mlp(1);
    assert_eq!(net.precision(), Precision::F32);
    net.quantize_to(Precision::F16);
    assert_eq!(net.precision(), Precision::F16);
    for p in net.params() {
        if p.dims().len() >= 2 {
            assert_eq!(p.precision(), Precision::F16, "param {}", p.name());
            assert!(!p.trainable(), "quantised params must be frozen");
        } else {
            assert_eq!(p.precision(), Precision::F32, "param {}", p.name());
        }
    }
}

#[test]
fn f16_forward_is_close_to_f32() {
    let mut net = small_mlp(2);
    let x = batch(&[4, 6], 7);
    let y32 = net.forward(&x, Mode::Eval).unwrap();
    net.quantize_to(Precision::F16);
    let y16 = net.forward(&x, Mode::Eval).unwrap();
    assert_eq!(y16.dims(), y32.dims());
    for (a, b) in y16.as_slice().iter().zip(y32.as_slice()) {
        assert!((a - b).abs() < 2e-2, "f16 {a} vs f32 {b}");
    }
}

#[test]
fn int8_forward_is_close_to_f32_on_cnn() {
    let mut net = small_cnn(3);
    let x = batch(&[2, 1, 4, 4], 9);
    let y32 = net.forward(&x, Mode::Eval).unwrap();
    net.quantize_to(Precision::Int8);
    assert_eq!(net.precision(), Precision::Int8);
    let y8 = net.forward(&x, Mode::Eval).unwrap();
    for (a, b) in y8.as_slice().iter().zip(y32.as_slice()) {
        assert!((a - b).abs() < 0.25, "int8 {a} vs f32 {b}");
    }
}

#[test]
fn dequantize_restores_f32_storage_and_close_values() {
    let mut net = small_mlp(4);
    let x = batch(&[3, 6], 11);
    net.quantize_to(Precision::F16);
    let y16 = net.forward(&x, Mode::Eval).unwrap();
    net.quantize_to(Precision::F32);
    assert_eq!(net.precision(), Precision::F32);
    // Dequantised f32 weights are the exact decode of the f16 words, so the
    // forward pass reproduces the f16 output except for kernel differences.
    let y32 = net.forward(&x, Mode::Eval).unwrap();
    for (a, b) in y32.as_slice().iter().zip(y16.as_slice()) {
        assert!((a - b).abs() < 1e-4, "dequantised {a} vs f16 {b}");
    }
}

#[test]
fn backward_through_quantized_weights_is_a_typed_error() {
    let mut net = small_mlp(5);
    net.quantize_to(Precision::F16);
    let x = batch(&[2, 6], 13);
    net.forward(&x, Mode::Eval).unwrap();
    let err = net
        .backward(&Tensor::ones(&[2, 3]))
        .expect_err("backward through f16 weights must fail");
    assert!(
        matches!(
            err,
            NnError::QuantizedBackward {
                precision: Precision::F16,
                ..
            }
        ),
        "got {err:?}"
    );
}

#[test]
fn snapshot_full_round_trips_native_words_bit_exactly() {
    let mut net = small_mlp(6);
    net.quantize_to(Precision::F16);
    let snapshot = net.snapshot_full();

    // Corrupt a native word the way the fault injector does — including a
    // signalling-NaN pattern that an f32 decode→re-encode would quietise.
    {
        let mut params = net.params_mut();
        let native = params[0].native_mut().unwrap();
        let NativeParam::F16(w) = native else {
            panic!("expected f16 words")
        };
        w.words_mut()[0] = 0x7C01; // sNaN payload
        w.words_mut()[1] ^= 0x8000;
    }
    let NativeParam::F16(corrupted) = net.params()[0].native().unwrap() else {
        panic!("expected f16 words")
    };
    assert_eq!(corrupted.words()[0], 0x7C01);

    net.restore_full(&snapshot).unwrap();
    let params = net.params();
    let NativeParam::F16(w) = params[0].native().unwrap() else {
        panic!("expected f16 words")
    };
    let NativeParam::F16(orig) = snapshot.natives[0].as_ref().unwrap() else {
        panic!("expected f16 snapshot")
    };
    assert_eq!(w.words(), orig.words(), "restore must be bit-exact");
    assert_ne!(w.words()[0], 0x7C01, "corruption must be rolled back");
}

#[test]
fn restore_full_moves_between_precisions() {
    // Snapshot in f32, quantize, restore: the network must be f32 again.
    let mut net = small_mlp(8);
    let x = batch(&[2, 6], 17);
    let y_before = net.forward(&x, Mode::Eval).unwrap();
    let snapshot = net.snapshot_full();
    net.quantize_to(Precision::Int8);
    net.restore_full(&snapshot).unwrap();
    assert_eq!(net.precision(), Precision::F32);
    let y_after = net.forward(&x, Mode::Eval).unwrap();
    assert_eq!(y_before.as_slice(), y_after.as_slice());
}

#[test]
fn restore_full_rejects_mismatched_snapshot() {
    let mut net = small_mlp(9);
    let other = small_cnn(9).snapshot_full();
    assert!(net.restore_full(&other).is_err());
}

#[test]
fn quantize_is_idempotent() {
    let mut net = small_mlp(10);
    net.quantize_to(Precision::F16);
    let words: Vec<u16> = match net.params()[0].native().unwrap() {
        NativeParam::F16(w) => w.words().to_vec(),
        NativeParam::Int8(_) => unreachable!(),
    };
    net.quantize_to(Precision::F16);
    let again: Vec<u16> = match net.params()[0].native().unwrap() {
        NativeParam::F16(w) => w.words().to_vec(),
        NativeParam::Int8(_) => unreachable!(),
    };
    assert_eq!(words, again);
}
