//! Pins the zero-allocation contract of the workspace-based `Conv2d`.
//!
//! A counting global allocator records every heap allocation; after a warm-up
//! batch has sized the layer's [`fitact_tensor::Workspace`] and the output
//! tensor, further `forward_into` calls must allocate nothing at all, and
//! `forward` exactly one output tensor per call.
//!
//! This file holds a single test on purpose: the allocation counter is global
//! and the default test harness runs tests concurrently.

use fitact_nn::layers::Conv2d;
use fitact_nn::{Layer, Mode};
use fitact_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let result = f();
    (ALLOCATIONS.load(Ordering::SeqCst) - before, result)
}

#[test]
fn conv2d_forward_is_allocation_free_after_the_first_batch() {
    let mut rng = StdRng::seed_from_u64(0);
    // Sized so the per-sample matmul stays below the kernel's parallel
    // threshold: thread spawning allocates by design.
    let mut conv = Conv2d::new(4, 8, 3, 1, 1, &mut rng);
    let x = init::uniform(&[2, 4, 8, 8], -1.0, 1.0, &mut rng);
    let mut out = Tensor::default();

    // Warm-up: sizes the workspace, the input cache, the matmul pack buffers
    // and the output tensor.
    conv.forward_into(&x, Mode::Train, &mut out).unwrap();
    let reference = out.clone();

    // The counter is process-global, so an allocation on another harness
    // thread during the window would falsely implicate forward_into; retry a
    // few windows and require that at least one is completely clean (which a
    // genuinely allocating forward_into could never produce).
    let mut best = usize::MAX;
    for _ in 0..10 {
        let (count, ()) = allocations(|| {
            for _ in 0..5 {
                conv.forward_into(&x, Mode::Train, &mut out).unwrap();
            }
        });
        best = best.min(count);
        if best == 0 {
            break;
        }
    }
    assert_eq!(
        best, 0,
        "Conv2d::forward_into must not allocate once the workspace is warm"
    );
    assert_eq!(
        out, reference,
        "allocation-free path must compute the same output"
    );

    // The trait-level `forward` returns a fresh tensor, so it is allowed the
    // output-tensor allocations (data buffer plus shape bookkeeping) and
    // nothing proportional to the work done.
    let mut best = usize::MAX;
    for _ in 0..10 {
        let (count, y) = allocations(|| conv.forward(&x, Mode::Train).unwrap());
        assert_eq!(y, reference);
        best = best.min(count);
        if best <= 4 {
            break;
        }
    }
    assert!(
        best <= 4,
        "Layer::forward should allocate only the output tensor, counted {best}"
    );
}
