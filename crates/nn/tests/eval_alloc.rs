//! Pins the zero-allocation contract of `Network::evaluate` batch slicing.
//!
//! A counting global allocator records every heap allocation; once a first
//! call has sized the staging buffer, further `copy_batch_into` calls over
//! equal-shaped ranges must allocate nothing at all. (The full `evaluate`
//! loop still allocates inside layer forwards — this test pins the slicing
//! satellite specifically.)
//!
//! This file holds a single test on purpose: the allocation counter is global
//! and the default test harness runs tests concurrently.

use fitact_nn::copy_batch_into;
use fitact_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let result = f();
    (ALLOCATIONS.load(Ordering::SeqCst) - before, result)
}

#[test]
fn batch_slicing_is_allocation_free_after_the_first_batch() {
    let mut rng = StdRng::seed_from_u64(0);
    let inputs = init::uniform(&[64, 3, 4, 4], -1.0, 1.0, &mut rng);
    let mut staging = Tensor::default();

    // Warm-up: sizes the staging buffer for 16-row batches.
    copy_batch_into(&inputs, 0, 16, &mut staging).unwrap();

    // The counter is process-global, so an allocation on another harness
    // thread during the window would falsely implicate the slicer; retry a
    // few windows and require that at least one is completely clean.
    let mut best = usize::MAX;
    for _ in 0..10 {
        let (count, ()) = allocations(|| {
            for start in [0usize, 16, 32, 48] {
                copy_batch_into(&inputs, start, start + 16, &mut staging).unwrap();
            }
        });
        best = best.min(count);
        if best == 0 {
            break;
        }
    }
    assert_eq!(
        best, 0,
        "copy_batch_into must not allocate once the staging buffer is warm"
    );
    assert_eq!(staging.dims(), &[16, 3, 4, 4]);
    assert_eq!(staging.as_slice(), &inputs.as_slice()[48 * 48..64 * 48]);
}
