//! Scoped bound-violation tracing for protected forward passes.
//!
//! FitAct-style bounded activations do not just *clamp* out-of-range values —
//! every clamped element is evidence that a fault (or an out-of-distribution
//! input) corrupted the forward pass. This module turns that evidence into a
//! telemetry channel without touching the numerics: a [`ViolationTrace`] is an
//! observe-only, per-layer counter of how many pre-activation values exceeded
//! their protection bound.
//!
//! # Design
//!
//! The trace is carried through a forward pass by a **thread-local slot**
//! rather than by threading a parameter through every `Layer::forward`
//! signature: the layer API stays unchanged, and code that never installs a
//! trace pays exactly one thread-local flag check per activation slot
//! ([`is_active`]). A caller that wants telemetry wraps the forward in
//! [`capture`]:
//!
//! ```
//! use fitact_nn::trace::{self, ViolationTrace};
//!
//! let mut trace = ViolationTrace::new();
//! let out = trace::capture(&mut trace, || {
//!     // any forward run in this closure records into `trace`
//!     2 + 2
//! });
//! assert_eq!(out, 4);
//! assert_eq!(trace.total(), 0); // nothing protected ran, nothing recorded
//! ```
//!
//! Recording is allocation-free in the steady state: slots are keyed by their
//! diagnostic label, labels recur in forward order, and the trace keeps a
//! cursor so the common case is a single slice-index compare. `capture` is
//! re-entrant (an inner capture shadows the outer one for its extent) and
//! restores the thread-local slot even if the closure panics.
//!
//! **The trace is observe-only**: violation counting reads the slot's *input*
//! tensor and never writes anything the activation sees, so outputs are
//! bit-identical with tracing on or off (pinned by
//! `crates/core/tests/detection.rs`).

use std::cell::RefCell;

/// Violation counts for one activation slot within one traced scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotViolations {
    /// The slot's diagnostic label (for example `"features.1"`).
    pub label: String,
    /// Number of elements whose pre-activation value exceeded the bound.
    pub violations: u64,
    /// Number of elements inspected (batch × features, accumulated).
    pub elements: u64,
}

/// An accumulator of per-slot bound-violation counts.
///
/// Create one, pass it to [`capture`] around a forward pass, then read the
/// per-slot counts. Reuse the same trace across batches (calling
/// [`ViolationTrace::clear`] in between) to keep the hot path allocation-free.
#[derive(Debug, Clone, Default)]
pub struct ViolationTrace {
    slots: Vec<SlotViolations>,
    cursor: usize,
}

impl ViolationTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        ViolationTrace::default()
    }

    /// Zeroes all counts while keeping the slot labels and their allocation,
    /// so a reused trace records the next batch without allocating.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.violations = 0;
            slot.elements = 0;
        }
        self.cursor = 0;
    }

    /// The per-slot counts, in first-recorded (forward) order.
    pub fn slots(&self) -> &[SlotViolations] {
        &self.slots
    }

    /// Total violations across all slots.
    pub fn total(&self) -> u64 {
        self.slots.iter().map(|s| s.violations).sum()
    }

    fn record(&mut self, label: &str, violations: u64, elements: u64) {
        // Slots recur in forward order, so the cursor almost always points at
        // the matching entry; fall back to a scan, then to a push.
        let n = self.slots.len();
        let found = (0..n)
            .map(|k| (self.cursor + k) % n)
            .find(|&i| self.slots[i].label == label);
        match found {
            Some(i) => {
                self.slots[i].violations += violations;
                self.slots[i].elements += elements;
                self.cursor = (i + 1) % n.max(1);
            }
            None => {
                self.slots.push(SlotViolations {
                    label: label.to_string(),
                    violations,
                    elements,
                });
                self.cursor = 0;
            }
        }
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<ViolationTrace>> = const { RefCell::new(None) };
}

/// Whether a trace is installed on this thread — the single branch a
/// protected forward pays when nobody is listening.
pub fn is_active() -> bool {
    ACTIVE.with(|slot| slot.borrow().is_some())
}

/// Records violation counts for one activation slot into the active trace.
/// A no-op when no trace is installed.
pub fn record(label: &str, violations: u64, elements: u64) {
    ACTIVE.with(|slot| {
        if let Some(trace) = slot.borrow_mut().as_mut() {
            trace.record(label, violations, elements);
        }
    });
}

/// Total violations recorded so far in the active trace, or `None` when no
/// trace is installed. Lets a boundary-snapshotting caller (for example
/// `Network::forward_inspect`) attribute violations to the layer between two
/// boundaries.
pub fn active_total() -> Option<u64> {
    ACTIVE.with(|slot| slot.borrow().as_ref().map(|t| t.total()))
}

/// Installs `trace` as this thread's active trace for the duration of `f`.
///
/// Counts recorded by protected forwards inside `f` accumulate into `trace`
/// (on top of whatever it already holds — call [`ViolationTrace::clear`]
/// first for per-batch counts). Nested captures shadow the outer trace for
/// their extent; the previous state is restored when `f` returns or panics.
pub fn capture<T>(trace: &mut ViolationTrace, f: impl FnOnce() -> T) -> T {
    struct Restore<'a> {
        target: &'a mut ViolationTrace,
        previous: Option<ViolationTrace>,
    }
    impl Drop for Restore<'_> {
        fn drop(&mut self) {
            ACTIVE.with(|slot| {
                let mut slot = slot.borrow_mut();
                if let Some(trace) = slot.take() {
                    *self.target = trace;
                }
                *slot = self.previous.take();
            });
        }
    }

    let previous = ACTIVE.with(|slot| slot.borrow_mut().replace(std::mem::take(trace)));
    let _restore = Restore {
        target: trace,
        previous,
    };
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_outside_capture_is_a_noop() {
        assert!(!is_active());
        record("slot", 3, 10); // must not panic or leak anywhere
        assert_eq!(active_total(), None);
    }

    #[test]
    fn capture_accumulates_per_slot_counts() {
        let mut trace = ViolationTrace::new();
        capture(&mut trace, || {
            assert!(is_active());
            record("a", 2, 8);
            record("b", 0, 8);
            record("a", 1, 8); // second batch through the same slot
            assert_eq!(active_total(), Some(3));
        });
        assert!(!is_active());
        assert_eq!(trace.total(), 3);
        assert_eq!(
            trace.slots(),
            &[
                SlotViolations {
                    label: "a".into(),
                    violations: 3,
                    elements: 16
                },
                SlotViolations {
                    label: "b".into(),
                    violations: 0,
                    elements: 8
                },
            ]
        );
    }

    #[test]
    fn clear_keeps_labels_and_zeroes_counts() {
        let mut trace = ViolationTrace::new();
        capture(&mut trace, || {
            record("a", 2, 4);
            record("b", 1, 4);
        });
        trace.clear();
        assert_eq!(trace.total(), 0);
        assert_eq!(trace.slots().len(), 2);
        capture(&mut trace, || record("b", 5, 4));
        assert_eq!(trace.total(), 5);
        assert_eq!(trace.slots()[1].violations, 5);
    }

    #[test]
    fn nested_capture_shadows_then_restores() {
        let mut outer = ViolationTrace::new();
        let mut inner = ViolationTrace::new();
        capture(&mut outer, || {
            record("o", 1, 1);
            capture(&mut inner, || record("i", 7, 1));
            record("o", 1, 1);
        });
        assert_eq!(outer.total(), 2);
        assert_eq!(inner.total(), 7);
    }

    #[test]
    fn capture_restores_on_panic() {
        let mut trace = ViolationTrace::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            capture(&mut trace, || {
                record("x", 9, 9);
                panic!("boom");
            })
        }));
        assert!(result.is_err());
        assert!(!is_active());
        assert_eq!(trace.total(), 9);
    }
}
