//! Named trainable parameters.

use fitact_tensor::{NativeParam, Precision, Tensor};

/// A named tensor of learnable values together with its gradient.
///
/// Parameters are what the optimiser updates and — crucially for this
/// reproduction — what the fault injector corrupts: the paper's fault space is
/// "the weights and biases of different layers, as well as parameters of
/// activation functions".
///
/// The `trainable` flag distinguishes the two training stages of FitAct: in
/// conventional training the weights/biases are trainable and the activation
/// bounds do not exist yet; in post-training the weights/biases are frozen and
/// only the bound parameters are trainable.
///
/// # Example
///
/// ```
/// use fitact_nn::Parameter;
/// use fitact_tensor::Tensor;
///
/// let mut p = Parameter::new("fc.weight", Tensor::zeros(&[2, 2]));
/// assert!(p.trainable());
/// p.freeze();
/// assert!(!p.trainable());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Parameter {
    name: String,
    data: Tensor,
    grad: Tensor,
    trainable: bool,
    /// When set, the parameter lives in a reduced-precision native encoding
    /// (f16 words / per-channel int8) instead of `data`; `data` and `grad`
    /// are then empty placeholders. See [`Parameter::set_native`].
    native: Option<NativeParam>,
}

impl Parameter {
    /// Creates a trainable parameter with a zeroed gradient of matching shape.
    pub fn new(name: impl Into<String>, data: Tensor) -> Self {
        let grad = Tensor::zeros(data.dims());
        Parameter {
            name: name.into(),
            data,
            grad,
            trainable: true,
            native: None,
        }
    }

    /// Creates a non-trainable parameter (a buffer, e.g. batch-norm running
    /// statistics). Buffers are still part of the fault space.
    pub fn buffer(name: impl Into<String>, data: Tensor) -> Self {
        let mut p = Parameter::new(name, data);
        p.trainable = false;
        p
    }

    /// Returns the parameter's name (e.g. `"features.3.conv.weight"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Prefixes the parameter name with `scope.` — used when a container layer
    /// namespaces its children.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Returns the parameter values.
    pub fn data(&self) -> &Tensor {
        &self.data
    }

    /// Returns mutable access to the parameter values.
    pub fn data_mut(&mut self) -> &mut Tensor {
        &mut self.data
    }

    /// Returns the accumulated gradient.
    pub fn grad(&self) -> &Tensor {
        &self.grad
    }

    /// Returns mutable access to the accumulated gradient.
    pub fn grad_mut(&mut self) -> &mut Tensor {
        &mut self.grad
    }

    /// Returns the values and the mutable gradient simultaneously (split
    /// borrow), for kernels that read weights while accumulating gradients.
    pub fn data_and_grad_mut(&mut self) -> (&Tensor, &mut Tensor) {
        (&self.data, &mut self.grad)
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Returns whether the optimiser should update this parameter.
    pub fn trainable(&self) -> bool {
        self.trainable
    }

    /// Marks the parameter as frozen (ignored by optimisers).
    pub fn freeze(&mut self) {
        self.trainable = false;
    }

    /// Marks the parameter as trainable.
    pub fn unfreeze(&mut self) {
        self.trainable = true;
    }

    /// Number of scalar values stored in this parameter (native encodings
    /// count their stored values, not the empty f32 placeholder).
    pub fn numel(&self) -> usize {
        match &self.native {
            Some(n) => n.numel(),
            None => self.data.numel(),
        }
    }

    /// Logical dimensions, regardless of storage encoding.
    pub fn dims(&self) -> Vec<usize> {
        match &self.native {
            Some(n) => n.dims().to_vec(),
            None => self.data.dims().to_vec(),
        }
    }

    /// The element type this parameter is stored in.
    pub fn precision(&self) -> Precision {
        match &self.native {
            Some(n) => n.precision(),
            None => Precision::F32,
        }
    }

    /// The native reduced-precision storage, when this parameter has one.
    pub fn native(&self) -> Option<&NativeParam> {
        self.native.as_ref()
    }

    /// Mutable native storage (fault injection flips bits here).
    pub fn native_mut(&mut self) -> Option<&mut NativeParam> {
        self.native.as_mut()
    }

    /// Moves the parameter into a native reduced-precision encoding.
    ///
    /// The f32 `data`/`grad` tensors are replaced by empty placeholders and
    /// the parameter is frozen: reduced-precision parameters are inference-
    /// only (kernels read the native words directly; training through them
    /// is a typed error at the layer level).
    ///
    /// # Panics
    ///
    /// Panics if the native dims disagree with the current data dims (when
    /// the parameter still holds data — an already-native parameter may be
    /// re-encoded freely).
    pub fn set_native(&mut self, native: NativeParam) {
        let current = self.dims();
        assert_eq!(
            current,
            native.dims(),
            "native encoding must preserve parameter dims"
        );
        self.data = Tensor::zeros(&[0]);
        self.grad = Tensor::zeros(&[0]);
        self.trainable = false;
        self.native = Some(native);
    }

    /// Decodes a native parameter back to owned f32 storage (exact kernel
    /// arithmetic: f16 widening / int8 dequantisation). No-op for f32
    /// parameters.
    pub fn dequantize(&mut self) {
        if let Some(native) = self.native.take() {
            let values = native.to_f32_vec();
            let dims = native.dims().to_vec();
            self.data = Tensor::from_vec(values, &dims)
                .expect("native value count always matches its dims");
            self.grad = Tensor::zeros(&dims);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_parameter_has_zero_grad_same_shape() {
        let p = Parameter::new("w", Tensor::ones(&[3, 4]));
        assert_eq!(p.grad().dims(), &[3, 4]);
        assert_eq!(p.grad().sum(), 0.0);
        assert_eq!(p.name(), "w");
        assert_eq!(p.numel(), 12);
        assert!(p.trainable());
    }

    #[test]
    fn buffer_is_not_trainable() {
        let p = Parameter::buffer("bn.running_mean", Tensor::zeros(&[8]));
        assert!(!p.trainable());
    }

    #[test]
    fn freeze_unfreeze_toggles() {
        let mut p = Parameter::new("w", Tensor::zeros(&[1]));
        p.freeze();
        assert!(!p.trainable());
        p.unfreeze();
        assert!(p.trainable());
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut p = Parameter::new("w", Tensor::zeros(&[2]));
        p.grad_mut().as_mut_slice()[0] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad().sum(), 0.0);
    }

    #[test]
    fn rename_changes_name() {
        let mut p = Parameter::new("w", Tensor::zeros(&[1]));
        p.set_name("block.w");
        assert_eq!(p.name(), "block.w");
    }
}
