//! Learning-rate schedules.
//!
//! The paper trains its models with standard recipes (multi-step / cosine
//! decay are the usual CIFAR schedules); these schedulers drive any
//! [`crate::optim::Optimizer`] by updating its learning rate at epoch
//! boundaries.

use crate::optim::Optimizer;

/// A learning-rate schedule: maps an epoch index to a learning rate.
pub trait LrSchedule: std::fmt::Debug {
    /// The learning rate to use during `epoch` (0-based).
    fn learning_rate(&self, epoch: usize) -> f32;

    /// Applies the schedule for `epoch` to an optimiser.
    fn apply(&self, epoch: usize, optimizer: &mut dyn Optimizer) {
        optimizer.set_learning_rate(self.learning_rate(epoch));
    }
}

/// A constant learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantLr {
    /// The learning rate used for every epoch.
    pub lr: f32,
}

impl LrSchedule for ConstantLr {
    fn learning_rate(&self, _epoch: usize) -> f32 {
        self.lr
    }
}

/// Multiplies the learning rate by `gamma` every `step_size` epochs
/// (PyTorch's `StepLR`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDecay {
    /// Initial learning rate.
    pub initial_lr: f32,
    /// Number of epochs between decays.
    pub step_size: usize,
    /// Multiplicative decay factor.
    pub gamma: f32,
}

impl StepDecay {
    /// Creates a step-decay schedule.
    ///
    /// # Panics
    ///
    /// Panics if `step_size == 0`.
    pub fn new(initial_lr: f32, step_size: usize, gamma: f32) -> Self {
        assert!(step_size > 0, "step_size must be non-zero");
        StepDecay {
            initial_lr,
            step_size,
            gamma,
        }
    }
}

impl LrSchedule for StepDecay {
    fn learning_rate(&self, epoch: usize) -> f32 {
        self.initial_lr * self.gamma.powi((epoch / self.step_size) as i32)
    }
}

/// Cosine annealing from the initial learning rate down to `min_lr` over
/// `total_epochs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineAnnealing {
    /// Initial (maximum) learning rate.
    pub initial_lr: f32,
    /// Final (minimum) learning rate.
    pub min_lr: f32,
    /// Number of epochs over which to anneal.
    pub total_epochs: usize,
}

impl CosineAnnealing {
    /// Creates a cosine-annealing schedule.
    ///
    /// # Panics
    ///
    /// Panics if `total_epochs == 0`.
    pub fn new(initial_lr: f32, min_lr: f32, total_epochs: usize) -> Self {
        assert!(total_epochs > 0, "total_epochs must be non-zero");
        CosineAnnealing {
            initial_lr,
            min_lr,
            total_epochs,
        }
    }
}

impl LrSchedule for CosineAnnealing {
    fn learning_rate(&self, epoch: usize) -> f32 {
        let progress = (epoch.min(self.total_epochs) as f32) / self.total_epochs as f32;
        let cosine = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
        self.min_lr + (self.initial_lr - self.min_lr) * cosine
    }
}

/// Linear warm-up for the first `warmup_epochs`, then delegates to an inner
/// schedule (shifted so the inner schedule starts at epoch 0 after warm-up).
#[derive(Debug)]
pub struct Warmup<S: LrSchedule> {
    /// Number of warm-up epochs.
    pub warmup_epochs: usize,
    /// The schedule to follow after warm-up.
    pub inner: S,
}

impl<S: LrSchedule> LrSchedule for Warmup<S> {
    fn learning_rate(&self, epoch: usize) -> f32 {
        if self.warmup_epochs == 0 || epoch >= self.warmup_epochs {
            self.inner
                .learning_rate(epoch - self.warmup_epochs.min(epoch))
        } else {
            let target = self.inner.learning_rate(0);
            target * (epoch + 1) as f32 / self.warmup_epochs as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;

    #[test]
    fn constant_schedule_never_changes() {
        let s = ConstantLr { lr: 0.1 };
        assert_eq!(s.learning_rate(0), 0.1);
        assert_eq!(s.learning_rate(100), 0.1);
    }

    #[test]
    fn step_decay_halves_at_boundaries() {
        let s = StepDecay::new(0.1, 10, 0.5);
        assert_eq!(s.learning_rate(0), 0.1);
        assert_eq!(s.learning_rate(9), 0.1);
        assert!((s.learning_rate(10) - 0.05).abs() < 1e-7);
        assert!((s.learning_rate(25) - 0.025).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "step_size")]
    fn zero_step_size_panics() {
        let _ = StepDecay::new(0.1, 0, 0.5);
    }

    #[test]
    fn cosine_annealing_hits_both_ends() {
        let s = CosineAnnealing::new(0.1, 0.001, 20);
        assert!((s.learning_rate(0) - 0.1).abs() < 1e-6);
        assert!((s.learning_rate(20) - 0.001).abs() < 1e-6);
        // Monotone decreasing over the annealing window.
        let mut prev = s.learning_rate(0);
        for epoch in 1..=20 {
            let lr = s.learning_rate(epoch);
            assert!(lr <= prev + 1e-7, "epoch {epoch}");
            prev = lr;
        }
        // Clamped after the window.
        assert!((s.learning_rate(50) - 0.001).abs() < 1e-6);
    }

    #[test]
    fn warmup_ramps_then_delegates() {
        let s = Warmup {
            warmup_epochs: 4,
            inner: ConstantLr { lr: 0.2 },
        };
        assert!((s.learning_rate(0) - 0.05).abs() < 1e-6);
        assert!((s.learning_rate(1) - 0.10).abs() < 1e-6);
        assert!((s.learning_rate(3) - 0.20).abs() < 1e-6);
        assert_eq!(s.learning_rate(4), 0.2);
        assert_eq!(s.learning_rate(10), 0.2);
        // Zero warm-up is just the inner schedule.
        let s = Warmup {
            warmup_epochs: 0,
            inner: ConstantLr { lr: 0.3 },
        };
        assert_eq!(s.learning_rate(0), 0.3);
    }

    #[test]
    fn apply_updates_the_optimizer() {
        let s = StepDecay::new(0.1, 1, 0.1);
        let mut opt = Sgd::new(123.0);
        s.apply(2, &mut opt);
        assert!((opt.learning_rate() - 0.001).abs() < 1e-7);
    }
}
