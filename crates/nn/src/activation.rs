//! The pluggable activation-function interface.
//!
//! Activation functions are the heart of the FitAct paper: protection schemes
//! differ *only* in which activation function they install after each
//! convolutional / fully-connected layer. This module defines the [`Activation`]
//! trait that the `fitact` crate implements for GBReLU, Clip-Act, Ranger,
//! FitReLU-Naive and FitReLU, plus the ordinary [`ReLU`] baseline.

use crate::{NnError, Parameter};
use fitact_tensor::Tensor;
use std::fmt;

/// A (possibly stateful, possibly trainable) activation function.
///
/// Implementations operate on batched feature tensors of shape
/// `[batch, ...feature_dims]`, cache whatever `backward` needs during
/// `forward`, and may expose trainable parameters (the per-neuron bounds of
/// FitReLU) through [`Activation::params_mut`].
///
/// The trait is object-safe: networks store activations as
/// `Box<dyn Activation>` so that a trained model can have its ReLUs swapped
/// for protected variants without rebuilding the network.
///
/// Like [`crate::layers::Layer`], implementations must be `Send + Sync` so
/// a network template can be shared read-only across serving workers;
/// shared-state wrappers (profilers, fault injectors) synchronise through
/// `Arc<Mutex<…>>`, not single-threaded interior mutability.
pub trait Activation: fmt::Debug + Send + Sync {
    /// A short human-readable name (`"relu"`, `"fitrelu"`, …).
    fn name(&self) -> &str;

    /// Applies the activation to a batched input `[batch, ...features]`.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the
    /// activation's configured feature shape.
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError>;

    /// Propagates `grad_output` (same shape as the forward output) back to the
    /// input, accumulating gradients of any internal parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] if no forward pass has been
    /// cached, or a shape error if `grad_output` does not match.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError>;

    /// Evaluates the activation at a single point for neuron `neuron`.
    ///
    /// Used to plot the activation shapes (paper Fig. 3) and in analytical
    /// tests. Activations without per-neuron parameters ignore `neuron`.
    fn eval_scalar(&self, x: f32, neuron: usize) -> f32;

    /// Read-only access to the activation's parameters (empty by default).
    fn params(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    /// Mutable access to the activation's parameters (empty by default).
    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    /// Counts the elements of `input` that lie strictly above this
    /// activation's protection bound — the detection events of the FitAct
    /// model, where a clamped value is evidence of a fault.
    ///
    /// Bounded activations (GBReLU, Ranger, ChannelReLU, FitReLU and its
    /// naive variant) override this; the default — for unbounded activations
    /// like plain [`ReLU`], which detect nothing — reports zero. Wrapper
    /// activations (profilers, fault injectors) must delegate to their inner
    /// activation so detection telemetry survives wrapping.
    ///
    /// Implementations only *read* `input`: counting violations never
    /// perturbs the forward numerics (see [`crate::trace`]).
    fn count_violations(&self, input: &Tensor) -> u64 {
        let _ = input;
        0
    }

    /// The serializable descriptor of this activation's configuration (see
    /// [`crate::spec::ActivationSpec`] for the encoding contract).
    ///
    /// # Errors
    ///
    /// The default implementation returns [`NnError::InvalidConfig`]:
    /// ephemeral activations (profiling recorders, fault-injection wrappers)
    /// are not meant to be persisted.
    fn spec(&self) -> Result<crate::spec::ActivationSpec, NnError> {
        Err(NnError::InvalidConfig(format!(
            "activation `{}` does not support serialisation",
            self.name()
        )))
    }

    /// Clones the activation into a box. Needed because `Clone` itself is not
    /// object-safe.
    fn clone_box(&self) -> Box<dyn Activation>;
}

impl Clone for Box<dyn Activation> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The standard Rectified Linear Unit, `max(0, x)` (paper Eq. 3).
///
/// This is the unprotected baseline: faults that push an activation to a huge
/// positive value pass straight through.
///
/// # Example
///
/// ```
/// use fitact_nn::{Activation, ReLU};
/// use fitact_tensor::Tensor;
///
/// # fn main() -> Result<(), fitact_nn::NnError> {
/// let mut relu = ReLU::new();
/// let x = Tensor::from_vec(vec![-1.0, 2.0], &[1, 2])?;
/// let y = relu.forward(&x)?;
/// assert_eq!(y.as_slice(), &[0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReLU {
    cached_input: Option<Tensor>,
}

impl ReLU {
    /// Creates a new ReLU activation.
    pub fn new() -> Self {
        ReLU { cached_input: None }
    }
}

impl Activation for ReLU {
    fn name(&self) -> &str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        self.cached_input = Some(input.clone());
        Ok(input.map(|v| v.max(0.0)))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward("relu".into()))?;
        Ok(input.zip_map(grad_output, |x, g| if x > 0.0 { g } else { 0.0 })?)
    }

    fn eval_scalar(&self, x: f32, _neuron: usize) -> f32 {
        x.max(0.0)
    }

    fn spec(&self) -> Result<crate::spec::ActivationSpec, NnError> {
        Ok(crate::spec::ActivationSpec::tagged("relu"))
    }

    fn clone_box(&self) -> Box<dyn Activation> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_clamps_negatives() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec(vec![-3.0, -0.5, 0.0, 0.5, 3.0], &[1, 5]).unwrap();
        let y = relu.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.0, 0.5, 3.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0, 0.0], &[1, 3]).unwrap();
        relu.forward(&x).unwrap();
        let g = Tensor::from_vec(vec![1.0, 1.0, 1.0], &[1, 3]).unwrap();
        let gx = relu.backward(&g).unwrap();
        assert_eq!(gx.as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn relu_backward_before_forward_errors() {
        let mut relu = ReLU::new();
        let g = Tensor::zeros(&[1, 1]);
        assert!(matches!(
            relu.backward(&g),
            Err(NnError::BackwardBeforeForward(_))
        ));
    }

    #[test]
    fn relu_eval_scalar_matches_forward() {
        let relu = ReLU::new();
        assert_eq!(relu.eval_scalar(-4.0, 0), 0.0);
        assert_eq!(relu.eval_scalar(4.0, 0), 4.0);
    }

    #[test]
    fn relu_is_unbounded_above() {
        // The vulnerability the paper exploits: a fault-induced huge value
        // passes through plain ReLU unchanged.
        let relu = ReLU::new();
        assert_eq!(relu.eval_scalar(30000.0, 0), 30000.0);
    }

    #[test]
    fn boxed_clone_preserves_behaviour() {
        let relu: Box<dyn Activation> = Box::new(ReLU::new());
        let mut copy = relu.clone();
        let x = Tensor::from_vec(vec![-1.0, 1.0], &[1, 2]).unwrap();
        assert_eq!(copy.forward(&x).unwrap().as_slice(), &[0.0, 1.0]);
        assert_eq!(copy.name(), "relu");
        assert!(copy.params().is_empty());
        assert!(copy.params_mut().is_empty());
    }
}
