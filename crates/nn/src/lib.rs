//! A from-scratch CPU deep-neural-network substrate.
//!
//! The FitAct paper evaluates its protection scheme on AlexNet, VGG16 and
//! ResNet50 implemented in PyTorch. This crate is the Rust substrate that
//! replaces PyTorch for the reproduction: a small but complete layer-wise
//! forward/backward framework with
//!
//! * [`Parameter`] — a named trainable tensor with its gradient,
//! * [`Layer`] — the forward/backward building block ([`layers`]),
//! * [`Activation`] — the pluggable activation-function interface that the
//!   `fitact` crate implements for GBReLU, Clip-Act, Ranger and FitReLU,
//! * [`Sequential`] and residual blocks for composing networks,
//! * [`loss::CrossEntropyLoss`], [`optim`] (SGD and Adam) and a training loop
//!   in [`Network`],
//! * a CIFAR-scale model zoo ([`models`]): AlexNet, VGG16 and ResNet50.
//!
//! # Example
//!
//! ```
//! use fitact_nn::{layers::Linear, layers::Sequential, Layer, Mode, NnError};
//! use fitact_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), NnError> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = Sequential::new();
//! net.push(Box::new(Linear::new(4, 2, &mut rng)));
//! let x = Tensor::zeros(&[3, 4]);
//! let y = net.forward(&x, Mode::Eval)?;
//! assert_eq!(y.dims(), &[3, 2]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activation;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod models;
pub mod network;
pub mod optim;
mod param;
pub mod schedule;
pub mod spec;
pub mod trace;

pub use activation::{Activation, ReLU};
pub use layers::{Layer, Mode, Sequential};
pub use network::{copy_batch_into, Network, NetworkSnapshot};
pub use param::Parameter;
pub use spec::{ActivationBuilder, ActivationSpec, BaselineActivations, LayerSpec};
pub use trace::ViolationTrace;

use fitact_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Errors produced by network construction, forward or backward passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// An underlying tensor operation failed (shape mismatch and friends).
    Tensor(TensorError),
    /// The input to a layer had an unexpected shape.
    InvalidInput {
        /// The layer that rejected the input.
        layer: String,
        /// Human-readable description of the expected shape.
        expected: String,
        /// The shape that was actually received.
        actual: Vec<usize>,
    },
    /// `backward` was called before `forward` (no cached activations).
    BackwardBeforeForward(String),
    /// A configuration value was invalid (zero sizes, probabilities outside
    /// `[0, 1]`, …).
    InvalidConfig(String),
    /// `backward` was called through a parameter stored in a reduced-precision
    /// native encoding. Quantised parameters are inference-only; dequantise
    /// the network (`Network::quantize_to(Precision::F32)`) before training.
    QuantizedBackward {
        /// The layer holding the reduced-precision parameter.
        layer: String,
        /// The native encoding of that parameter (e.g. "f16", "int8").
        precision: fitact_tensor::Precision,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            NnError::InvalidInput {
                layer,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "layer `{layer}` expected input {expected}, got shape {actual:?}"
                )
            }
            NnError::BackwardBeforeForward(layer) => {
                write!(f, "backward called on `{layer}` before forward")
            }
            NnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            NnError::QuantizedBackward { layer, precision } => {
                write!(
                    f,
                    "layer `{layer}` holds {precision} parameters, which are \
                     inference-only; dequantise to f32 before training"
                )
            }
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = NnError::Tensor(TensorError::InvalidShape(vec![1]));
        assert!(e.to_string().contains("tensor"));
        assert!(Error::source(&e).is_some());
        let e = NnError::InvalidInput {
            layer: "conv".into(),
            expected: "[N, C, H, W]".into(),
            actual: vec![3],
        };
        assert!(e.to_string().contains("conv"));
        assert!(Error::source(&e).is_none());
        assert!(!NnError::BackwardBeforeForward("x".into())
            .to_string()
            .is_empty());
        assert!(!NnError::InvalidConfig("bad".into()).to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
