//! A complete network with training and evaluation helpers.

use crate::layers::{ActivationLayer, Layer, Mode, Sequential};
use crate::loss::CrossEntropyLoss;
use crate::metrics::{accuracy, RunningMean};
use crate::optim::Optimizer;
use crate::{NnError, Parameter};
use fitact_tensor::{F16Param, Int8Param, NativeParam, Precision, Tensor, TensorArena};

/// A neural network: a named [`Sequential`] stack plus the bookkeeping the
/// FitAct workflow and the fault injector need (parameter enumeration,
/// snapshots, activation-slot access).
///
/// # Example
///
/// ```
/// use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
/// use fitact_nn::{Mode, Network};
/// use fitact_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), fitact_nn::NnError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let root = Sequential::new()
///     .with(Box::new(Linear::new(4, 8, &mut rng)))
///     .with(Box::new(ActivationLayer::relu("fc1", &[8])))
///     .with(Box::new(Linear::new(8, 3, &mut rng)));
/// let mut net = Network::new("mlp", root);
/// let logits = net.forward(&Tensor::zeros(&[2, 4]), Mode::Eval)?;
/// assert_eq!(logits.dims(), &[2, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    name: String,
    root: Sequential,
    /// Reusable staging buffers for [`Network::evaluate`] batch slicing
    /// (cloning a network starts with an empty arena; see
    /// [`fitact_tensor::TensorArena`]).
    eval_arena: TensorArena,
}

/// Metadata about one parameter tensor, in deterministic traversal order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamInfo {
    /// Slash-separated path of the parameter (e.g. `"features/0/weight"`).
    pub path: String,
    /// Number of scalar elements.
    pub numel: usize,
    /// Whether the parameter is currently trainable.
    pub trainable: bool,
    /// The element type the parameter is stored in.
    pub precision: Precision,
    /// Quantisation channels (int8 parameters only; 0 otherwise). Each
    /// channel carries an f32 scale and an int8 zero point, which are part
    /// of the deployed representation's fault space.
    pub channels: usize,
}

/// A full-fidelity capture of every parameter's storage — f32 tensors *and*
/// native reduced-precision words — taken with [`Network::snapshot_full`].
///
/// The plain [`Network::snapshot`] path captures only f32 tensors, which is
/// lossy for native parameters: re-encoding a decoded value can quietise
/// NaNs or re-round, so a campaign restoring through f32 would not be
/// bit-faithful. `NetworkSnapshot` restores the exact stored words.
#[derive(Debug, Clone)]
pub struct NetworkSnapshot {
    /// Per-parameter f32 values (empty placeholders for native params).
    pub tensors: Vec<Tensor>,
    /// Per-parameter native storage, aligned with `tensors`.
    pub natives: Vec<Option<NativeParam>>,
}

/// Loss/accuracy summary of one pass over a dataset split.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochStats {
    /// Mean loss over all samples.
    pub loss: f32,
    /// Mean top-1 accuracy over all samples.
    pub accuracy: f32,
}

impl Network {
    /// Wraps a sequential stack as a named network.
    pub fn new(name: impl Into<String>, root: Sequential) -> Self {
        Network {
            name: name.into(),
            root,
            eval_arena: TensorArena::new(),
        }
    }

    /// The network's name (e.g. `"vgg16"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The serializable topology descriptor of the layer stack (see
    /// [`crate::spec::LayerSpec`]); parameter values travel separately via
    /// [`Network::visit_params`].
    ///
    /// # Errors
    ///
    /// Propagates the first layer that does not support serialisation.
    pub fn to_spec(&self) -> Result<Vec<crate::spec::LayerSpec>, NnError> {
        self.root.child_specs()
    }

    /// Rebuilds a network from a topology descriptor with placeholder
    /// parameter values; the caller restores saved tensors afterwards
    /// (artifact loading lives in the `fitact_io` crate).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for malformed specs or activation
    /// kinds unknown to `activations`.
    pub fn from_spec(
        name: impl Into<String>,
        layers: &[crate::spec::LayerSpec],
        activations: &dyn crate::spec::ActivationBuilder,
    ) -> Result<Self, NnError> {
        let mut root = Sequential::new();
        for spec in layers {
            root.push(spec.build(activations)?);
        }
        Ok(Network::new(name, root))
    }

    /// Read-only access to the layer stack.
    pub fn root(&self) -> &Sequential {
        &self.root
    }

    /// Mutable access to the layer stack.
    pub fn root_mut(&mut self) -> &mut Sequential {
        &mut self.root
    }

    /// Runs a forward pass.
    ///
    /// # Errors
    ///
    /// Propagates any layer error (shape mismatches and friends).
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        self.root.forward(input, mode)
    }

    /// Number of top-level layers in the stack — one more than the largest
    /// valid resume boundary of [`Network::forward_from`].
    pub fn depth(&self) -> usize {
        self.root.len()
    }

    /// Resumes a forward pass at top-level layer boundary `layer_idx` (see
    /// [`Sequential::forward_from`] for the boundary numbering and the cache
    /// invariants checkpoint-resumed callers must uphold).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for an out-of-range boundary and
    /// propagates any layer error.
    pub fn forward_from(
        &mut self,
        layer_idx: usize,
        input: &Tensor,
        mode: Mode,
    ) -> Result<Tensor, NnError> {
        self.root.forward_from(layer_idx, input, mode)
    }

    /// Runs a forward pass exposing every top-level layer-boundary activation
    /// to `inspect` (see [`Sequential::forward_inspect`]).
    ///
    /// # Errors
    ///
    /// Propagates any layer error.
    pub fn forward_inspect(
        &mut self,
        input: &Tensor,
        mode: Mode,
        inspect: &mut dyn FnMut(usize, &Tensor),
    ) -> Result<Tensor, NnError> {
        self.root.forward_inspect(input, mode, inspect)
    }

    /// Runs a backward pass from the loss gradient at the output.
    ///
    /// # Errors
    ///
    /// Propagates any layer error.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        self.root.backward(grad_output)
    }

    /// All parameters (weights, biases, buffers, activation bounds) in
    /// deterministic traversal order.
    pub fn params(&self) -> Vec<&Parameter> {
        self.root.params()
    }

    /// Mutable access to all parameters in the same order as
    /// [`Network::params`].
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        self.root.params_mut()
    }

    /// Metadata for every parameter, in the same deterministic order used by
    /// [`Network::visit_params_mut`]. This is what the fault injector uses to
    /// build its memory map.
    pub fn param_info(&self) -> Vec<ParamInfo> {
        let mut out = Vec::new();
        self.root.visit_params("", &mut |path, p| {
            out.push(ParamInfo {
                path: path.to_owned(),
                numel: p.numel(),
                trainable: p.trainable(),
                precision: p.precision(),
                channels: match p.native() {
                    Some(NativeParam::Int8(q)) => q.channels(),
                    _ => 0,
                },
            });
        });
        out
    }

    /// Visits every parameter mutably with its path, in the order reported by
    /// [`Network::param_info`].
    pub fn visit_params_mut(&mut self, visitor: &mut dyn FnMut(&str, &mut Parameter)) {
        self.root.visit_params_mut("", visitor);
    }

    /// Visits every parameter immutably with its path.
    pub fn visit_params(&self, visitor: &mut dyn FnMut(&str, &Parameter)) {
        self.root.visit_params("", visitor);
    }

    /// Total number of scalar parameters (including buffers and activation
    /// bounds).
    pub fn num_parameters(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Every activation slot in forward order.
    pub fn activation_slots(&mut self) -> Vec<&mut ActivationLayer> {
        self.root.activation_slots()
    }

    /// Copies the current values of every parameter (for restore after a
    /// fault-injection trial).
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.params().iter().map(|p| p.data().clone()).collect()
    }

    /// Restores parameter values from a snapshot taken with
    /// [`Network::snapshot`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the snapshot does not match the
    /// current parameter list.
    pub fn restore(&mut self, snapshot: &[Tensor]) -> Result<(), NnError> {
        let mut params = self.params_mut();
        if params.len() != snapshot.len() {
            return Err(NnError::InvalidConfig(format!(
                "snapshot has {} tensors but the network has {} parameters",
                snapshot.len(),
                params.len()
            )));
        }
        for (p, s) in params.iter_mut().zip(snapshot) {
            if p.data().dims() != s.dims() {
                return Err(NnError::InvalidConfig(format!(
                    "snapshot tensor shape {:?} does not match parameter `{}` shape {:?}",
                    s.dims(),
                    p.name(),
                    p.data().dims()
                )));
            }
            // In-place copy: a fault campaign restores after every trial, so
            // the warm path must reuse the parameter's existing storage.
            p.data_mut().copy_from(s);
        }
        Ok(())
    }

    /// Captures every parameter's storage in full fidelity — including
    /// native f16/int8 words — for bit-faithful restore in any precision.
    pub fn snapshot_full(&self) -> NetworkSnapshot {
        let params = self.params();
        NetworkSnapshot {
            tensors: params.iter().map(|p| p.data().clone()).collect(),
            natives: params.iter().map(|p| p.native().cloned()).collect(),
        }
    }

    /// Restores parameter storage from a [`Network::snapshot_full`] capture.
    ///
    /// Native parameters get their exact stored words back (never a decode →
    /// re-encode round trip, which would not be bit-faithful for NaN
    /// payloads produced by fault injection).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the snapshot does not match the
    /// current parameter list.
    pub fn restore_full(&mut self, snapshot: &NetworkSnapshot) -> Result<(), NnError> {
        let mut params = self.params_mut();
        if params.len() != snapshot.tensors.len() || params.len() != snapshot.natives.len() {
            return Err(NnError::InvalidConfig(format!(
                "snapshot has {} tensors but the network has {} parameters",
                snapshot.tensors.len(),
                params.len()
            )));
        }
        for (p, (s, native)) in params
            .iter_mut()
            .zip(snapshot.tensors.iter().zip(&snapshot.natives))
        {
            match native {
                Some(n) => {
                    if p.dims() != n.dims() {
                        return Err(NnError::InvalidConfig(format!(
                            "snapshot native shape {:?} does not match parameter `{}` shape {:?}",
                            n.dims(),
                            p.name(),
                            p.dims()
                        )));
                    }
                    p.set_native(n.clone());
                }
                None => {
                    if p.native().is_some() {
                        p.dequantize();
                    }
                    if p.data().dims() != s.dims() {
                        return Err(NnError::InvalidConfig(format!(
                            "snapshot tensor shape {:?} does not match parameter `{}` shape {:?}",
                            s.dims(),
                            p.name(),
                            p.data().dims()
                        )));
                    }
                    p.data_mut().copy_from(s);
                }
            }
        }
        Ok(())
    }

    /// The element type the network's weights are stored in ([`Precision::F32`]
    /// unless some parameter carries a native encoding).
    pub fn precision(&self) -> Precision {
        self.params()
            .iter()
            .find_map(|p| p.native().map(|n| n.precision()))
            .unwrap_or(Precision::F32)
    }

    /// Converts the network's weight matrices to `precision` storage.
    ///
    /// Matrix-shaped trainable parameters (linear `[out, in]` weights and
    /// convolution `[oc, ic, kh, kw]` kernels — anything with ≥ 2 dims) move
    /// to the native encoding; biases, batch-norm vectors and activation
    /// bounds stay f32, mirroring standard deployment practice. Converting
    /// to [`Precision::F32`] decodes every native parameter back to owned
    /// f32 storage (exact kernel arithmetic).
    ///
    /// Quantised parameters are inference-only: they are frozen, and
    /// layers report a typed error if asked to backprop through them.
    pub fn quantize_to(&mut self, precision: Precision) {
        self.visit_params_mut(&mut |_, p| match precision {
            Precision::F32 => p.dequantize(),
            Precision::F16 | Precision::Int8 => {
                let eligible = p.dims().len() >= 2 && (p.trainable() || p.native().is_some());
                if !eligible || p.precision() == precision {
                    return;
                }
                let (values, dims) = match p.native() {
                    Some(n) => (n.to_f32_vec(), n.dims().to_vec()),
                    None => (p.data().as_slice().to_vec(), p.data().dims().to_vec()),
                };
                let native = match precision {
                    Precision::F16 => NativeParam::F16(F16Param::from_f32(&values, &dims)),
                    Precision::Int8 => NativeParam::Int8(Int8Param::quantize(&values, &dims)),
                    Precision::F32 => unreachable!("handled above"),
                };
                p.set_native(native);
            }
        });
    }

    /// Clears all parameter gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Predicts class indices for a batch of inputs (eval mode).
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn predict(&mut self, input: &Tensor) -> Result<Vec<usize>, NnError> {
        let logits = self.forward(input, Mode::Eval)?;
        Ok(logits.argmax_rows()?)
    }

    /// Evaluates top-1 accuracy over a dataset given as one big input tensor
    /// `[n, ...]` plus targets, processing `batch_size` samples at a time.
    ///
    /// Batch inputs are staged through a persistent [`TensorArena`] slot with
    /// one contiguous copy per batch (axis-0 ranges of a row-major tensor are
    /// contiguous), so the slicing itself is allocation-free once the staging
    /// buffer is warm; targets are staged as plain subslices, which never
    /// allocate. This is pinned by the `eval_alloc` integration test.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors; returns [`NnError::InvalidConfig`] for a
    /// zero batch size or mismatched target count.
    pub fn evaluate(
        &mut self,
        inputs: &Tensor,
        targets: &[usize],
        batch_size: usize,
    ) -> Result<f32, NnError> {
        if batch_size == 0 {
            return Err(NnError::InvalidConfig("batch_size must be non-zero".into()));
        }
        if inputs.ndim() == 0 || inputs.dims()[0] != targets.len() {
            return Err(NnError::InvalidConfig(format!(
                "inputs have {} samples but {} targets were given",
                inputs.dims().first().copied().unwrap_or(0),
                targets.len()
            )));
        }
        // The staging tensor is taken out of the arena so it can be borrowed
        // alongside `&mut self` across the forward call, and put back even on
        // the error path so its capacity survives.
        let mut staging = self.eval_arena.take(0);
        let result = self.evaluate_with_staging(inputs, targets, batch_size, &mut staging);
        self.eval_arena.put(0, staging);
        result
    }

    fn evaluate_with_staging(
        &mut self,
        inputs: &Tensor,
        targets: &[usize],
        batch_size: usize,
        staging: &mut Tensor,
    ) -> Result<f32, NnError> {
        let n = targets.len();
        let mut acc = RunningMean::new();
        let mut start = 0usize;
        while start < n {
            let end = (start + batch_size).min(n);
            copy_batch_into(inputs, start, end, staging)?;
            let logits = self.forward(staging, Mode::Eval)?;
            let batch_acc = accuracy(&logits, &targets[start..end])?;
            acc.push_weighted(batch_acc, end - start);
            start = end;
        }
        Ok(acc.mean())
    }

    /// Runs one optimisation step on a single mini-batch: forward in train
    /// mode, cross-entropy loss, backward, optimiser step, gradients cleared.
    ///
    /// Returns the batch loss and accuracy.
    ///
    /// # Errors
    ///
    /// Propagates layer and loss errors.
    pub fn train_batch(
        &mut self,
        inputs: &Tensor,
        targets: &[usize],
        loss: &CrossEntropyLoss,
        optimizer: &mut dyn Optimizer,
    ) -> Result<EpochStats, NnError> {
        self.zero_grad();
        let logits = self.forward(inputs, Mode::Train)?;
        let (loss_value, grad) = loss.forward(&logits, targets)?;
        let batch_accuracy = accuracy(&logits, targets)?;
        self.backward(&grad)?;
        let mut params = self.params_mut();
        optimizer.step(&mut params);
        self.zero_grad();
        Ok(EpochStats {
            loss: loss_value,
            accuracy: batch_accuracy,
        })
    }
}

/// Copies rows `[start, end)` of a batched `[n, ...]` tensor into `out` as a
/// `[end - start, ...]` tensor with a single contiguous memcpy.
///
/// When `out` already has the target shape (the steady state of an evaluation
/// loop with equal-sized batches) nothing is allocated; a shape change reuses
/// `out`'s storage capacity and only allocates the shape bookkeeping.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] if the range is empty-by-inversion or
/// runs past the first axis.
pub fn copy_batch_into(
    inputs: &Tensor,
    start: usize,
    end: usize,
    out: &mut Tensor,
) -> Result<(), NnError> {
    if inputs.ndim() == 0 || start > end || end > inputs.dims()[0] {
        return Err(NnError::InvalidConfig(format!(
            "batch range {start}..{end} is invalid for an input of shape {:?}",
            inputs.dims()
        )));
    }
    let rows = end - start;
    let chunk: usize = inputs.dims()[1..].iter().product::<usize>().max(1);
    let shape_matches = out.ndim() == inputs.ndim()
        && out.dims()[0] == rows
        && out.dims()[1..] == inputs.dims()[1..];
    if !shape_matches {
        let mut dims = inputs.dims().to_vec();
        dims[0] = rows;
        out.ensure_shape(&dims);
    }
    out.as_mut_slice()
        .copy_from_slice(&inputs.as_slice()[start * chunk..end * chunk]);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::optim::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_mlp(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let root = Sequential::new()
            .with(Box::new(Linear::new(2, 8, &mut rng)))
            .with(Box::new(ActivationLayer::relu("h1", &[8])))
            .with(Box::new(Linear::new(8, 2, &mut rng)));
        Network::new("tiny", root)
    }

    /// A linearly separable toy problem: class = (x0 > x1).
    fn toy_data(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs = fitact_tensor::init::uniform(&[n, 2], -1.0, 1.0, &mut rng);
        let targets = (0..n)
            .map(|i| {
                let row = &inputs.as_slice()[i * 2..(i + 1) * 2];
                usize::from(row[0] > row[1])
            })
            .collect();
        (inputs, targets)
    }

    #[test]
    fn forward_and_predict_shapes() {
        let mut net = tiny_mlp(0);
        assert_eq!(net.name(), "tiny");
        let y = net.forward(&Tensor::zeros(&[4, 2]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[4, 2]);
        assert_eq!(net.predict(&Tensor::zeros(&[4, 2])).unwrap().len(), 4);
    }

    #[test]
    fn param_info_matches_params() {
        let net = tiny_mlp(1);
        let info = net.param_info();
        assert_eq!(info.len(), net.params().len());
        assert_eq!(
            info.iter().map(|i| i.numel).sum::<usize>(),
            net.num_parameters()
        );
        assert!(info.iter().all(|i| i.trainable));
        assert_eq!(info[0].path, "0/weight");
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut net = tiny_mlp(2);
        let snap = net.snapshot();
        // Corrupt every parameter.
        for p in net.params_mut() {
            p.data_mut().fill(99.0);
        }
        assert!(net.params()[0].data().as_slice().iter().all(|&v| v == 99.0));
        net.restore(&snap).unwrap();
        for (p, s) in net.params().iter().zip(&snap) {
            assert_eq!(p.data(), s);
        }
    }

    #[test]
    fn restore_rejects_mismatched_snapshots() {
        let mut net = tiny_mlp(3);
        assert!(net.restore(&[]).is_err());
        let mut snap = net.snapshot();
        snap[0] = Tensor::zeros(&[1]);
        assert!(net.restore(&snap).is_err());
    }

    #[test]
    fn training_learns_separable_toy_problem() {
        let mut net = tiny_mlp(4);
        let (inputs, targets) = toy_data(256, 5);
        let loss = CrossEntropyLoss::new();
        let mut opt = Sgd::with_momentum(0.1, 0.9, 0.0);
        let before = net.evaluate(&inputs, &targets, 64).unwrap();
        for _ in 0..60 {
            net.train_batch(&inputs, &targets, &loss, &mut opt).unwrap();
        }
        let after = net.evaluate(&inputs, &targets, 64).unwrap();
        assert!(after > before.max(0.85), "before {before}, after {after}");
    }

    #[test]
    fn copy_batch_into_matches_row_stacking() {
        let inputs = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[6, 2, 2]).unwrap();
        let mut out = Tensor::default();
        copy_batch_into(&inputs, 1, 4, &mut out).unwrap();
        let rows: Vec<Tensor> = (1..4).map(|i| inputs.index_axis0(i).unwrap()).collect();
        assert_eq!(out, Tensor::stack(&rows).unwrap());
        // Shrinking to a trailing partial batch reuses the buffer.
        copy_batch_into(&inputs, 4, 6, &mut out).unwrap();
        assert_eq!(out.dims(), &[2, 2, 2]);
        assert_eq!(out.as_slice(), &inputs.as_slice()[16..24]);
        // Invalid ranges are rejected.
        assert!(copy_batch_into(&inputs, 4, 3, &mut out).is_err());
        assert!(copy_batch_into(&inputs, 0, 7, &mut out).is_err());
        assert!(copy_batch_into(&Tensor::scalar(1.0), 0, 0, &mut out).is_err());
    }

    #[test]
    fn network_forward_from_matches_forward_at_every_boundary() {
        let mut net = tiny_mlp(11);
        let (inputs, _) = toy_data(5, 12);
        let mut boundaries = Vec::new();
        let full = net
            .forward_inspect(&inputs, Mode::Eval, &mut |_, t| boundaries.push(t.clone()))
            .unwrap();
        assert_eq!(boundaries.len(), net.depth() + 1);
        for (k, boundary) in boundaries.iter().enumerate() {
            assert_eq!(
                net.forward_from(k, boundary, Mode::Eval).unwrap(),
                full,
                "boundary {k}"
            );
        }
        assert!(net
            .forward_from(net.depth() + 1, &inputs, Mode::Eval)
            .is_err());
    }

    #[test]
    fn evaluate_validates_arguments() {
        let mut net = tiny_mlp(6);
        let x = Tensor::zeros(&[4, 2]);
        assert!(net.evaluate(&x, &[0, 1], 2).is_err());
        assert!(net.evaluate(&x, &[0, 1, 0, 1], 0).is_err());
        assert!(net.evaluate(&x, &[0, 1, 0, 1], 3).is_ok());
    }

    #[test]
    fn zero_grad_clears_gradients() {
        let mut net = tiny_mlp(7);
        let (inputs, targets) = toy_data(8, 8);
        let loss = CrossEntropyLoss::new();
        let logits = net.forward(&inputs, Mode::Train).unwrap();
        let (_, grad) = loss.forward(&logits, &targets).unwrap();
        net.backward(&grad).unwrap();
        assert!(net.params().iter().any(|p| p.grad().sq_norm() > 0.0));
        net.zero_grad();
        assert!(net.params().iter().all(|p| p.grad().sq_norm() == 0.0));
    }

    #[test]
    fn activation_slots_accessible_through_network() {
        let mut net = tiny_mlp(9);
        let slots = net.activation_slots();
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].label(), "h1");
    }

    #[test]
    fn clone_is_independent() {
        let mut net = tiny_mlp(10);
        let clone = net.clone();
        for p in net.params_mut() {
            p.data_mut().fill(0.0);
        }
        // The clone keeps its original (non-zero) weights.
        assert!(clone.params().iter().any(|p| p.data().sq_norm() > 0.0));
    }
}
