//! Inverted dropout regularisation.

use crate::layers::{Layer, Mode};
use crate::NnError;
use fitact_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: during training each element is zeroed with probability
/// `p` and the survivors are scaled by `1 / (1 − p)`; during evaluation the
/// layer is the identity.
///
/// AlexNet and VGG16 use dropout in their fully-connected classifiers.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    seed: u64,
    rng: StdRng,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and a deterministic
    /// RNG seed.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `p` is outside `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Result<Self, NnError> {
        if !(0.0..1.0).contains(&p) {
            return Err(NnError::InvalidConfig(format!(
                "dropout probability {p} must be in [0, 1)"
            )));
        }
        Ok(Dropout {
            p,
            seed,
            rng: StdRng::seed_from_u64(seed),
            cached_mask: None,
        })
    }

    /// The configured drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    /// The seed the mask RNG was constructed from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Layer for Dropout {
    fn name(&self) -> String {
        format!("dropout(p={})", self.p)
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        match mode {
            Mode::Eval => {
                self.cached_mask = None;
                Ok(input.clone())
            }
            Mode::Train => {
                if self.p == 0.0 {
                    self.cached_mask = Some(Tensor::ones(input.dims()));
                    return Ok(input.clone());
                }
                let keep = 1.0 - self.p;
                let scale = 1.0 / keep;
                let mut mask = Tensor::zeros(input.dims());
                for v in mask.as_mut_slice() {
                    *v = if self.rng.gen::<f32>() < keep {
                        scale
                    } else {
                        0.0
                    };
                }
                let out = input.mul(&mask)?;
                self.cached_mask = Some(mask);
                Ok(out)
            }
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        match &self.cached_mask {
            Some(mask) => Ok(grad_output.mul(mask)?),
            // Eval-mode forward: identity.
            None => Ok(grad_output.clone()),
        }
    }

    fn spec(&self) -> Result<crate::spec::LayerSpec, NnError> {
        // The spec records the construction seed, not the RNG's current
        // position: a reloaded layer restarts its mask stream (eval-mode
        // inference, which artifacts exist for, never draws from it).
        Ok(crate::spec::LayerSpec::Dropout {
            p: self.p,
            seed: self.seed,
        })
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_probability_rejected() {
        assert!(Dropout::new(1.0, 0).is_err());
        assert!(Dropout::new(-0.1, 0).is_err());
        assert!(Dropout::new(0.5, 0).is_ok());
    }

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        assert_eq!(d.forward(&x, Mode::Eval).unwrap(), x);
        // Backward after eval is also identity.
        assert_eq!(d.backward(&x).unwrap(), x);
    }

    #[test]
    fn train_mode_zeroes_roughly_p_fraction() {
        let mut d = Dropout::new(0.5, 2).unwrap();
        let x = Tensor::ones(&[1, 10000]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!((4000..6000).contains(&zeros), "zeros = {zeros}");
        // Surviving values are scaled by 1/(1-p) = 2.
        assert!(y
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.3, 3).unwrap();
        let x = Tensor::ones(&[1, 100]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let g = d.backward(&Tensor::ones(&[1, 100])).unwrap();
        // Gradient is zero exactly where the output was zero.
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn zero_probability_keeps_everything() {
        let mut d = Dropout::new(0.0, 4).unwrap();
        let x = Tensor::ones(&[1, 16]);
        assert_eq!(d.forward(&x, Mode::Train).unwrap(), x);
        assert_eq!(d.probability(), 0.0);
    }
}
