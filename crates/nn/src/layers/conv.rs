//! 2-D convolution via im2col.

use crate::layers::{cache_input, Layer, Mode};
use crate::{NnError, Parameter};
use fitact_tensor::matmul::{matmul_into, Layout};
use fitact_tensor::{
    col2im_into, conv_output_size, im2col_into, init, simd, NativeParam, Tensor, Workspace,
};
use rand::Rng;

/// Workspace slot holding the im2col column matrix.
const WS_COLS: usize = 0;
/// Workspace slot holding the `Wᵀ·g` column gradients during backward.
const WS_DCOLS: usize = 1;

/// A 2-D convolution layer over `[batch, channels, height, width]` inputs.
///
/// The convolution is lowered to a matrix multiplication with
/// [`fitact_tensor::im2col`]: the weight tensor `[out_ch, in_ch, kh, kw]` is
/// viewed as a `[out_ch, in_ch·kh·kw]` matrix and multiplied with the column
/// matrix of every sample.
///
/// # Allocation behaviour
///
/// All intermediates (column matrices, gradient staging) live in a
/// per-layer [`Workspace`] and the weight matrix is a zero-copy view, so
/// after the first batch of a given shape, [`Conv2d::forward_into`] performs
/// **zero heap allocations** per call and [`Layer::forward`] performs exactly
/// one (the returned output tensor). This is verified by the
/// `conv_zero_alloc` integration test.
///
/// # Example
///
/// ```
/// use fitact_nn::{layers::Conv2d, Layer, Mode};
/// use fitact_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), fitact_nn::NnError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
/// let y = conv.forward(&Tensor::zeros(&[2, 3, 16, 16]), Mode::Eval)?;
/// assert_eq!(y.dims(), &[2, 8, 16, 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Parameter,
    bias: Parameter,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    cached_input: Option<Tensor>,
    ws: Workspace,
}

impl Conv2d {
    /// Creates a convolution layer with Kaiming-normal weights and zero bias.
    ///
    /// `kernel` is the (square) kernel size, `stride` the step and `padding`
    /// the zero padding applied on every spatial border.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight =
            init::kaiming_normal(&[out_channels, in_channels, kernel, kernel], fan_in, rng);
        Conv2d {
            weight: Parameter::new("weight", weight),
            bias: Parameter::new("bias", Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            cached_input: None,
            ws: Workspace::new(),
        }
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels (feature maps).
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Spatial output size for a given input size.
    ///
    /// # Errors
    ///
    /// Returns an error if the kernel does not fit the padded input.
    pub fn output_size(&self, input: (usize, usize)) -> Result<(usize, usize), NnError> {
        Ok(conv_output_size(
            input,
            (self.kernel, self.kernel),
            self.stride,
            self.padding,
        )?)
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize), NnError> {
        if input.ndim() != 4 || input.dims()[1] != self.in_channels {
            return Err(NnError::InvalidInput {
                layer: self.name(),
                expected: format!("[batch, {}, h, w]", self.in_channels),
                actual: input.dims().to_vec(),
            });
        }
        Ok((input.dims()[0], input.dims()[2], input.dims()[3]))
    }

    /// Computes the convolution into a caller-provided output tensor, which
    /// is reshaped (reusing its storage) to `[batch, out_ch, out_h, out_w]`.
    ///
    /// This is the allocation-free entry point: with a warm workspace and an
    /// `out` tensor of matching capacity, no heap allocation occurs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidInput`] for a wrong input shape.
    pub fn forward_into(
        &mut self,
        input: &Tensor,
        _mode: Mode,
        out: &mut Tensor,
    ) -> Result<(), NnError> {
        let (batch, h, w) = self.check_input(input)?;
        let (out_h, out_w) = self.output_size((h, w))?;
        // Cached in both modes: the post-training stage runs eval-mode
        // forwards and still backpropagates through them.
        cache_input(&mut self.cached_input, input);
        let kmat = self.in_channels * self.kernel * self.kernel;
        let spatial = out_h * out_w;
        let in_size = self.in_channels * h * w;
        let out_size = self.out_channels * spatial;
        out.ensure_shape(&[batch, self.out_channels, out_h, out_w]);
        // The [out_ch, in_ch, kh, kw] weight is already a row-major
        // [out_ch, in_ch·kh·kw] matrix; no reshape copy is needed.
        let wnative = self.weight.native();
        let bias = self.bias.data();
        if let Some(native) = wnative {
            // Reduced-precision weights: the dispatching kernels compute
            // row·Wᵀ products, so feed them the transposed column matrix
            // (one row per output position) and transpose the result back
            // into the [out_ch, spatial] feature-map layout.
            let oc = self.out_channels;
            let cols = self.ws.buf(WS_COLS, kmat * spatial);
            let mut rows = vec![0.0f32; spatial * kmat];
            let mut yt = vec![0.0f32; spatial * oc];
            for n in 0..batch {
                let sample = &input.as_slice()[n * in_size..(n + 1) * in_size];
                im2col_into(
                    sample,
                    (self.in_channels, h, w),
                    (self.kernel, self.kernel),
                    self.stride,
                    self.padding,
                    cols,
                )?;
                for (r, crow) in cols.chunks_exact(spatial).enumerate() {
                    for (s, v) in crow.iter().enumerate() {
                        rows[s * kmat + r] = *v;
                    }
                }
                match native {
                    NativeParam::F16(wq) => simd::matmul_f16(
                        &rows,
                        wq.words(),
                        Some(bias.as_slice()),
                        &mut yt,
                        spatial,
                        kmat,
                        oc,
                    ),
                    NativeParam::Int8(wq) => simd::matmul_i8(
                        &rows,
                        wq.q(),
                        wq.scales(),
                        wq.zero_points(),
                        Some(bias.as_slice()),
                        &mut yt,
                        spatial,
                        kmat,
                        oc,
                    ),
                }
                let y = &mut out.as_mut_slice()[n * out_size..(n + 1) * out_size];
                for (s, yrow) in yt.chunks_exact(oc).enumerate() {
                    for (c, v) in yrow.iter().enumerate() {
                        y[c * spatial + s] = *v;
                    }
                }
            }
            return Ok(());
        }
        let wmat = self.weight.data().as_slice();
        let cols = self.ws.buf(WS_COLS, kmat * spatial);
        for n in 0..batch {
            let sample = &input.as_slice()[n * in_size..(n + 1) * in_size];
            im2col_into(
                sample,
                (self.in_channels, h, w),
                (self.kernel, self.kernel),
                self.stride,
                self.padding,
                cols,
            )?;
            let y = &mut out.as_mut_slice()[n * out_size..(n + 1) * out_size];
            matmul_into(
                Layout::Nn,
                wmat,
                cols,
                y,
                self.out_channels,
                kmat,
                spatial,
                false,
            );
            for (oc, row) in y.chunks_exact_mut(spatial).enumerate() {
                let b = bias.as_slice()[oc];
                for v in row {
                    *v += b;
                }
            }
        }
        Ok(())
    }
}

impl Layer for Conv2d {
    fn name(&self) -> String {
        format!(
            "conv2d({}→{}, k{}, s{}, p{})",
            self.in_channels, self.out_channels, self.kernel, self.stride, self.padding
        )
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        let mut out = Tensor::default();
        self.forward_into(input, mode, &mut out)?;
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        if let Some(native) = self.weight.native() {
            return Err(NnError::QuantizedBackward {
                layer: self.name(),
                precision: native.precision(),
            });
        }
        // Take the cache to avoid cloning it for the borrow checker; it is
        // restored before returning.
        let input = self
            .cached_input
            .take()
            .ok_or_else(|| NnError::BackwardBeforeForward(self.name()))?;
        let result = self.backward_inner(&input, grad_output);
        self.cached_input = Some(input);
        result
    }

    fn params(&self) -> Vec<&Parameter> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn spec(&self) -> Result<crate::spec::LayerSpec, NnError> {
        Ok(crate::spec::LayerSpec::Conv2d {
            in_channels: self.in_channels,
            out_channels: self.out_channels,
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
        })
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl Conv2d {
    fn backward_inner(&mut self, input: &Tensor, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let (batch, h, w) = self.check_input(input)?;
        let (out_h, out_w) = self.output_size((h, w))?;
        if grad_output.dims() != [batch, self.out_channels, out_h, out_w] {
            return Err(NnError::InvalidInput {
                layer: self.name(),
                expected: format!(
                    "[{batch}, {}, {out_h}, {out_w}] gradient",
                    self.out_channels
                ),
                actual: grad_output.dims().to_vec(),
            });
        }
        let spatial = out_h * out_w;
        let kmat = self.in_channels * self.kernel * self.kernel;
        let in_size = self.in_channels * h * w;
        let out_size = self.out_channels * spatial;
        let mut dx = Tensor::zeros(input.dims());
        let (wdata, wgrad) = self.weight.data_and_grad_mut();
        let wmat = wdata.as_slice();
        let bgrad = self.bias.grad_mut();
        let (cols, dcols) = self
            .ws
            .pair((WS_COLS, kmat * spatial), (WS_DCOLS, kmat * spatial));
        for n in 0..batch {
            let sample = &input.as_slice()[n * in_size..(n + 1) * in_size];
            im2col_into(
                sample,
                (self.in_channels, h, w),
                (self.kernel, self.kernel),
                self.stride,
                self.padding,
                cols,
            )?;
            let g = &grad_output.as_slice()[n * out_size..(n + 1) * out_size];
            // dW += g · colsᵀ, accumulated straight into the gradient.
            matmul_into(
                Layout::Nt,
                g,
                cols,
                wgrad.as_mut_slice(),
                self.out_channels,
                spatial,
                kmat,
                true,
            );
            // db += row sums of g.
            for (oc, row) in g.chunks_exact(spatial).enumerate() {
                bgrad.as_mut_slice()[oc] += row.iter().sum::<f32>();
            }
            // dcols = Wᵀ · g, then scatter back onto the image.
            matmul_into(
                Layout::Tn,
                wmat,
                g,
                dcols,
                kmat,
                self.out_channels,
                spatial,
                false,
            );
            col2im_into(
                dcols,
                (self.in_channels, h, w),
                (self.kernel, self.kernel),
                self.stride,
                self.padding,
                &mut dx.as_mut_slice()[n * in_size..(n + 1) * in_size],
            )?;
        }
        Ok(dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_with_padding_and_stride() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(3, 6, 3, 1, 1, &mut rng);
        let y = conv
            .forward(&Tensor::zeros(&[2, 3, 8, 8]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[2, 6, 8, 8]);
        let mut strided = Conv2d::new(3, 4, 3, 2, 1, &mut rng);
        let y = strided
            .forward(&Tensor::zeros(&[1, 3, 8, 8]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[1, 4, 4, 4]);
    }

    #[test]
    fn identity_kernel_passes_input_through() {
        // A 1x1 convolution whose weight is the identity over channels.
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(2, 2, 1, 1, 0, &mut rng);
        *conv.weight.data_mut() =
            Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2, 1, 1]).unwrap();
        conv.bias.data_mut().fill(0.0);
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn known_convolution_values() {
        // Single channel, 3x3 input, 2x2 kernel of all ones: each output is the
        // sum of a 2x2 patch.
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut rng);
        *conv.weight.data_mut() = Tensor::ones(&[1, 1, 2, 2]);
        conv.bias.data_mut().fill(1.0);
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[13.0, 17.0, 25.0, 29.0]); // patch sums + bias 1
    }

    #[test]
    fn bias_is_added_per_output_channel() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new(1, 2, 1, 1, 0, &mut rng);
        conv.weight.data_mut().fill(0.0);
        *conv.bias.data_mut() = Tensor::from_vec(vec![1.5, -2.5], &[2]).unwrap();
        let y = conv
            .forward(&Tensor::zeros(&[1, 1, 2, 2]), Mode::Eval)
            .unwrap();
        assert_eq!(&y.as_slice()[..4], &[1.5; 4]);
        assert_eq!(&y.as_slice()[4..], &[-2.5; 4]);
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, &mut rng);
        assert!(conv
            .forward(&Tensor::zeros(&[1, 2, 8, 8]), Mode::Eval)
            .is_err());
        assert!(conv
            .forward(&Tensor::zeros(&[3, 8, 8]), Mode::Eval)
            .is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        assert!(matches!(
            conv.backward(&Tensor::zeros(&[1, 1, 4, 4])),
            Err(NnError::BackwardBeforeForward(_))
        ));
    }

    #[test]
    fn forward_into_reuses_the_output_tensor() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut conv = Conv2d::new(2, 4, 3, 1, 1, &mut rng);
        let x = init::uniform(&[2, 2, 6, 6], -1.0, 1.0, &mut rng);
        let expected = conv.forward(&x, Mode::Eval).unwrap();
        let mut out = Tensor::default();
        conv.forward_into(&x, Mode::Eval, &mut out).unwrap();
        assert_eq!(out, expected);
        // Second call with a warm output: same result, storage reused.
        conv.forward_into(&x, Mode::Eval, &mut out).unwrap();
        assert_eq!(out, expected);
    }

    #[test]
    fn backward_gradient_check_weights() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = init::uniform(&[2, 2, 5, 5], -1.0, 1.0, &mut rng);
        conv.forward(&x, Mode::Train).unwrap();
        let ones = Tensor::ones(&[2, 3, 5, 5]);
        conv.backward(&ones).unwrap();
        let analytic = conv.weight.grad().clone();
        let eps = 1e-2f32;
        for idx in [0usize, 7, 23, analytic.numel() - 1] {
            let orig = conv.weight.data().as_slice()[idx];
            conv.weight.data_mut().as_mut_slice()[idx] = orig + eps;
            let plus = conv.forward(&x, Mode::Train).unwrap().sum();
            conv.weight.data_mut().as_mut_slice()[idx] = orig - eps;
            let minus = conv.forward(&x, Mode::Train).unwrap().sum();
            conv.weight.data_mut().as_mut_slice()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            assert!(
                (a - numeric).abs() < 0.05,
                "idx {idx}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn backward_gradient_check_input() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut conv = Conv2d::new(1, 2, 3, 2, 1, &mut rng);
        let x = init::uniform(&[1, 1, 6, 6], -1.0, 1.0, &mut rng);
        conv.forward(&x, Mode::Train).unwrap();
        let out_dims = conv.forward(&x, Mode::Train).unwrap().dims().to_vec();
        let ones = Tensor::ones(&out_dims);
        let dx = conv.backward(&ones).unwrap();
        let eps = 1e-2f32;
        let mut x_pert = x.clone();
        for idx in [0usize, 17, 35] {
            let orig = x.as_slice()[idx];
            x_pert.as_mut_slice()[idx] = orig + eps;
            let plus = conv.forward(&x_pert, Mode::Train).unwrap().sum();
            x_pert.as_mut_slice()[idx] = orig - eps;
            let minus = conv.forward(&x_pert, Mode::Train).unwrap().sum();
            x_pert.as_mut_slice()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let a = dx.as_slice()[idx];
            assert!(
                (a - numeric).abs() < 0.05,
                "idx {idx}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn bias_gradient_sums_spatial_and_batch() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut conv = Conv2d::new(1, 2, 1, 1, 0, &mut rng);
        let x = Tensor::ones(&[3, 1, 2, 2]);
        conv.forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones(&[3, 2, 2, 2]);
        conv.backward(&g).unwrap();
        // Each bias receives 3 samples × 4 spatial positions of gradient 1.
        assert_eq!(conv.bias.grad().as_slice(), &[12.0, 12.0]);
    }

    #[test]
    fn accessors_report_configuration() {
        let mut rng = StdRng::seed_from_u64(9);
        let conv = Conv2d::new(3, 16, 3, 1, 1, &mut rng);
        assert_eq!(conv.in_channels(), 3);
        assert_eq!(conv.out_channels(), 16);
        assert_eq!(conv.output_size((32, 32)).unwrap(), (32, 32));
        assert!(conv.name().contains("conv2d"));
        assert_eq!(conv.params().len(), 2);
    }
}
