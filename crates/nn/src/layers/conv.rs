//! 2-D convolution via im2col.

use crate::layers::{Layer, Mode};
use crate::{NnError, Parameter};
use fitact_tensor::{col2im, conv_output_size, im2col, init, Tensor};
use rand::Rng;

/// A 2-D convolution layer over `[batch, channels, height, width]` inputs.
///
/// The convolution is lowered to a matrix multiplication with
/// [`fitact_tensor::im2col`]: the weight tensor `[out_ch, in_ch, kh, kw]` is
/// viewed as a `[out_ch, in_ch·kh·kw]` matrix and multiplied with the column
/// matrix of every sample.
///
/// # Example
///
/// ```
/// use fitact_nn::{layers::Conv2d, Layer, Mode};
/// use fitact_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), fitact_nn::NnError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
/// let y = conv.forward(&Tensor::zeros(&[2, 3, 16, 16]), Mode::Eval)?;
/// assert_eq!(y.dims(), &[2, 8, 16, 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Parameter,
    bias: Parameter,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with Kaiming-normal weights and zero bias.
    ///
    /// `kernel` is the (square) kernel size, `stride` the step and `padding`
    /// the zero padding applied on every spatial border.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight = init::kaiming_normal(&[out_channels, in_channels, kernel, kernel], fan_in, rng);
        Conv2d {
            weight: Parameter::new("weight", weight),
            bias: Parameter::new("bias", Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            cached_input: None,
        }
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels (feature maps).
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Spatial output size for a given input size.
    ///
    /// # Errors
    ///
    /// Returns an error if the kernel does not fit the padded input.
    pub fn output_size(&self, input: (usize, usize)) -> Result<(usize, usize), NnError> {
        Ok(conv_output_size(input, (self.kernel, self.kernel), self.stride, self.padding)?)
    }

    /// The weight matrix viewed as `[out_ch, in_ch·kh·kw]`.
    fn weight_matrix(&self) -> Result<Tensor, NnError> {
        let k = self.in_channels * self.kernel * self.kernel;
        Ok(self.weight.data().reshape(&[self.out_channels, k])?)
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize), NnError> {
        if input.ndim() != 4 || input.dims()[1] != self.in_channels {
            return Err(NnError::InvalidInput {
                layer: self.name(),
                expected: format!("[batch, {}, h, w]", self.in_channels),
                actual: input.dims().to_vec(),
            });
        }
        Ok((input.dims()[0], input.dims()[2], input.dims()[3]))
    }
}

impl Layer for Conv2d {
    fn name(&self) -> String {
        format!(
            "conv2d({}→{}, k{}, s{}, p{})",
            self.in_channels, self.out_channels, self.kernel, self.stride, self.padding
        )
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor, NnError> {
        let (batch, h, w) = self.check_input(input)?;
        let (out_h, out_w) = self.output_size((h, w))?;
        self.cached_input = Some(input.clone());
        let wmat = self.weight_matrix()?;
        let bias = self.bias.data().as_slice().to_vec();
        let spatial = out_h * out_w;
        let mut out = Tensor::zeros(&[batch, self.out_channels, out_h, out_w]);
        let out_slice = out.as_mut_slice();
        for n in 0..batch {
            let sample = input.index_axis0(n)?;
            let cols = im2col(&sample, (self.kernel, self.kernel), self.stride, self.padding)?;
            let y = wmat.matmul(&cols)?; // [out_ch, out_h*out_w]
            let base = n * self.out_channels * spatial;
            for oc in 0..self.out_channels {
                let row = &y.as_slice()[oc * spatial..(oc + 1) * spatial];
                let dst = &mut out_slice[base + oc * spatial..base + (oc + 1) * spatial];
                let b = bias[oc];
                for (d, v) in dst.iter_mut().zip(row) {
                    *d = v + b;
                }
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward(self.name()))?
            .clone();
        let (batch, h, w) = self.check_input(&input)?;
        let (out_h, out_w) = self.output_size((h, w))?;
        if grad_output.dims() != [batch, self.out_channels, out_h, out_w] {
            return Err(NnError::InvalidInput {
                layer: self.name(),
                expected: format!("[{batch}, {}, {out_h}, {out_w}] gradient", self.out_channels),
                actual: grad_output.dims().to_vec(),
            });
        }
        let wmat = self.weight_matrix()?;
        let spatial = out_h * out_w;
        let k = self.in_channels * self.kernel * self.kernel;
        let mut dw = Tensor::zeros(&[self.out_channels, k]);
        let mut db = vec![0.0f32; self.out_channels];
        let mut dx = Tensor::zeros(input.dims());
        let dx_slice_len = self.in_channels * h * w;
        for n in 0..batch {
            let sample = input.index_axis0(n)?;
            let cols = im2col(&sample, (self.kernel, self.kernel), self.stride, self.padding)?;
            let g = grad_output.index_axis0(n)?.reshape(&[self.out_channels, spatial])?;
            // dW += g · colsᵀ
            dw.add_assign(&g.matmul_nt(&cols)?)?;
            // db += row sums of g
            for oc in 0..self.out_channels {
                db[oc] += g.as_slice()[oc * spatial..(oc + 1) * spatial].iter().sum::<f32>();
            }
            // dcols = Wᵀ · g, then scatter back to the image
            let dcols = wmat.matmul_tn(&g)?;
            let dimg = col2im(
                &dcols,
                (self.in_channels, h, w),
                (self.kernel, self.kernel),
                self.stride,
                self.padding,
            )?;
            dx.as_mut_slice()[n * dx_slice_len..(n + 1) * dx_slice_len]
                .copy_from_slice(dimg.as_slice());
        }
        let dw = dw.reshape(self.weight.data().dims())?;
        self.weight.grad_mut().add_assign(&dw)?;
        self.bias.grad_mut().add_assign(&Tensor::from_vec(db, &[self.out_channels])?)?;
        Ok(dx)
    }

    fn params(&self) -> Vec<&Parameter> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_with_padding_and_stride() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(3, 6, 3, 1, 1, &mut rng);
        let y = conv.forward(&Tensor::zeros(&[2, 3, 8, 8]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 6, 8, 8]);
        let mut strided = Conv2d::new(3, 4, 3, 2, 1, &mut rng);
        let y = strided.forward(&Tensor::zeros(&[1, 3, 8, 8]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 4, 4, 4]);
    }

    #[test]
    fn identity_kernel_passes_input_through() {
        // A 1x1 convolution whose weight is the identity over channels.
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(2, 2, 1, 1, 0, &mut rng);
        *conv.weight.data_mut() = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2, 1, 1]).unwrap();
        conv.bias.data_mut().fill(0.0);
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn known_convolution_values() {
        // Single channel, 3x3 input, 2x2 kernel of all ones: each output is the
        // sum of a 2x2 patch.
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut rng);
        *conv.weight.data_mut() = Tensor::ones(&[1, 1, 2, 2]);
        conv.bias.data_mut().fill(1.0);
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[13.0, 17.0, 25.0, 29.0]); // patch sums + bias 1
    }

    #[test]
    fn bias_is_added_per_output_channel() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new(1, 2, 1, 1, 0, &mut rng);
        conv.weight.data_mut().fill(0.0);
        *conv.bias.data_mut() = Tensor::from_vec(vec![1.5, -2.5], &[2]).unwrap();
        let y = conv.forward(&Tensor::zeros(&[1, 1, 2, 2]), Mode::Eval).unwrap();
        assert_eq!(&y.as_slice()[..4], &[1.5; 4]);
        assert_eq!(&y.as_slice()[4..], &[-2.5; 4]);
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, &mut rng);
        assert!(conv.forward(&Tensor::zeros(&[1, 2, 8, 8]), Mode::Eval).is_err());
        assert!(conv.forward(&Tensor::zeros(&[3, 8, 8]), Mode::Eval).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        assert!(matches!(
            conv.backward(&Tensor::zeros(&[1, 1, 4, 4])),
            Err(NnError::BackwardBeforeForward(_))
        ));
    }

    #[test]
    fn backward_gradient_check_weights() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = init::uniform(&[2, 2, 5, 5], -1.0, 1.0, &mut rng);
        conv.forward(&x, Mode::Train).unwrap();
        let ones = Tensor::ones(&[2, 3, 5, 5]);
        conv.backward(&ones).unwrap();
        let analytic = conv.weight.grad().clone();
        let eps = 1e-2f32;
        for idx in [0usize, 7, 23, analytic.numel() - 1] {
            let orig = conv.weight.data().as_slice()[idx];
            conv.weight.data_mut().as_mut_slice()[idx] = orig + eps;
            let plus = conv.forward(&x, Mode::Train).unwrap().sum();
            conv.weight.data_mut().as_mut_slice()[idx] = orig - eps;
            let minus = conv.forward(&x, Mode::Train).unwrap().sum();
            conv.weight.data_mut().as_mut_slice()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            assert!((a - numeric).abs() < 0.05, "idx {idx}: analytic {a} vs numeric {numeric}");
        }
    }

    #[test]
    fn backward_gradient_check_input() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut conv = Conv2d::new(1, 2, 3, 2, 1, &mut rng);
        let x = init::uniform(&[1, 1, 6, 6], -1.0, 1.0, &mut rng);
        conv.forward(&x, Mode::Train).unwrap();
        let out_dims = conv.forward(&x, Mode::Train).unwrap().dims().to_vec();
        let ones = Tensor::ones(&out_dims);
        let dx = conv.backward(&ones).unwrap();
        let eps = 1e-2f32;
        let mut x_pert = x.clone();
        for idx in [0usize, 17, 35] {
            let orig = x.as_slice()[idx];
            x_pert.as_mut_slice()[idx] = orig + eps;
            let plus = conv.forward(&x_pert, Mode::Train).unwrap().sum();
            x_pert.as_mut_slice()[idx] = orig - eps;
            let minus = conv.forward(&x_pert, Mode::Train).unwrap().sum();
            x_pert.as_mut_slice()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let a = dx.as_slice()[idx];
            assert!((a - numeric).abs() < 0.05, "idx {idx}: analytic {a} vs numeric {numeric}");
        }
    }

    #[test]
    fn bias_gradient_sums_spatial_and_batch() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut conv = Conv2d::new(1, 2, 1, 1, 0, &mut rng);
        let x = Tensor::ones(&[3, 1, 2, 2]);
        conv.forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones(&[3, 2, 2, 2]);
        conv.backward(&g).unwrap();
        // Each bias receives 3 samples × 4 spatial positions of gradient 1.
        assert_eq!(conv.bias.grad().as_slice(), &[12.0, 12.0]);
    }

    #[test]
    fn accessors_report_configuration() {
        let mut rng = StdRng::seed_from_u64(9);
        let conv = Conv2d::new(3, 16, 3, 1, 1, &mut rng);
        assert_eq!(conv.in_channels(), 3);
        assert_eq!(conv.out_channels(), 16);
        assert_eq!(conv.output_size((32, 32)).unwrap(), (32, 32));
        assert!(conv.name().contains("conv2d"));
        assert_eq!(conv.params().len(), 2);
    }
}
