//! Network building blocks: the [`Layer`] trait and its implementations.
//!
//! Every layer owns its parameters, caches whatever it needs during `forward`
//! and consumes that cache in `backward`. Layers are composed with
//! [`Sequential`] and the ResNet [`Bottleneck`] block.

mod activation_layer;
mod conv;
mod dropout;
mod flatten;
mod linear;
mod norm;
mod pool;
mod residual;
mod sequential;

pub use activation_layer::ActivationLayer;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use linear::Linear;
pub use norm::BatchNorm2d;
pub use pool::{GlobalAvgPool, MaxPool2d};
pub use residual::Bottleneck;
pub use sequential::Sequential;

use crate::{NnError, Parameter};
use fitact_tensor::Tensor;
use std::fmt;

/// Whether a forward pass is part of training or inference.
///
/// Batch normalisation and dropout behave differently in the two modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Training: batch statistics are used and updated, dropout is active.
    Train,
    /// Inference: running statistics are used, dropout is the identity.
    #[default]
    Eval,
}

/// A differentiable network layer.
///
/// The contract is the classic layer-wise backpropagation protocol:
///
/// 1. `forward(input, mode)` computes the output and caches intermediates,
/// 2. `backward(grad_output)` consumes the cache, accumulates parameter
///    gradients and returns the gradient with respect to the input.
///
/// Layers are boxed and cloneable so a trained network can be duplicated and
/// each copy fitted with a different protection scheme.
///
/// `Send + Sync` is part of the contract: a read-only network template must
/// be shareable across threads (the inference server hands every worker a
/// clone of one shared template; fault campaigns move worker clones into
/// scoped threads). Mutable state a layer needs during `forward`/`backward`
/// lives in plain fields behind `&mut self` — implementations must not
/// smuggle in `Cell`/`RefCell`/`Rc`.
pub trait Layer: fmt::Debug + Send + Sync {
    /// A short name identifying the layer type (and salient configuration).
    fn name(&self) -> String;

    /// Computes the layer output for a batched input.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError>;

    /// Propagates gradients back through the layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] if `forward` has not been
    /// called, or a shape error if `grad_output` does not match the output.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError>;

    /// Read-only access to the layer's own (non-nested) parameters.
    fn params(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    /// Mutable access to the layer's own (non-nested) parameters.
    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    /// Visits every parameter in this layer and its children with a
    /// slash-separated path (`"features/3/conv/weight"`).
    ///
    /// Container layers override this to recurse; leaf layers get the default
    /// implementation built on [`Layer::params`].
    fn visit_params(&self, prefix: &str, visitor: &mut dyn FnMut(&str, &Parameter)) {
        for p in self.params() {
            let path = join_path(prefix, p.name());
            visitor(&path, p);
        }
    }

    /// Mutable variant of [`Layer::visit_params`]; visits parameters in the
    /// same deterministic order.
    fn visit_params_mut(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Parameter)) {
        for p in self.params_mut() {
            let path = join_path(prefix, p.name().to_owned().as_str());
            visitor(&path, p);
        }
    }

    /// Mutable access to every [`ActivationLayer`] nested inside this layer,
    /// in forward order. Protection schemes use this to swap ReLU for their
    /// own bounded activation functions.
    fn activation_slots(&mut self) -> Vec<&mut ActivationLayer> {
        Vec::new()
    }

    /// The serializable topology descriptor of this layer (type,
    /// configuration and children — not parameter values; see
    /// [`crate::spec::LayerSpec`] for the fidelity contract).
    ///
    /// # Errors
    ///
    /// The default implementation returns [`NnError::InvalidConfig`]:
    /// ad-hoc layer implementations (test doubles, injection wrappers) opt
    /// out of persistence by not overriding it.
    fn spec(&self) -> Result<crate::spec::LayerSpec, NnError> {
        Err(NnError::InvalidConfig(format!(
            "layer `{}` does not support serialisation",
            self.name()
        )))
    }

    /// Clones the layer into a box ([`Clone`] is not object-safe).
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Caches `input` for a layer's backward pass, reusing the previous cache's
/// storage when shapes allow so steady-state training does not allocate.
pub(crate) fn cache_input(cache: &mut Option<Tensor>, input: &Tensor) {
    match cache {
        Some(t) => t.copy_from(input),
        None => *cache = Some(input.clone()),
    }
}

/// Joins a path prefix and a component with `/`, omitting the separator for an
/// empty prefix.
pub(crate) fn join_path(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_owned()
    } else {
        format!("{prefix}/{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_default_is_eval() {
        assert_eq!(Mode::default(), Mode::Eval);
    }

    #[test]
    fn join_path_handles_empty_prefix() {
        assert_eq!(join_path("", "weight"), "weight");
        assert_eq!(join_path("block/0", "weight"), "block/0/weight");
    }

    #[test]
    fn boxed_layer_is_cloneable() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0);
        let layer: Box<dyn Layer> = Box::new(Linear::new(2, 3, &mut rng));
        let copy = layer.clone();
        assert_eq!(copy.name(), layer.name());
    }
}
