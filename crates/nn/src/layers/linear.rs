//! Fully-connected (affine) layer.

use crate::layers::{cache_input, Layer, Mode};
use crate::{NnError, Parameter};
use fitact_tensor::matmul::{matmul_into, Layout};
use fitact_tensor::{init, simd, NativeParam, Tensor};
use rand::Rng;

/// A fully-connected layer computing `y = x Wᵀ + b` (paper Eq. 1).
///
/// * weight shape: `[out_features, in_features]`
/// * bias shape: `[out_features]`
/// * input shape: `[batch, in_features]`
///
/// # Example
///
/// ```
/// use fitact_nn::{layers::Linear, Layer, Mode};
/// use fitact_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), fitact_nn::NnError> {
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut fc = Linear::new(8, 4, &mut rng);
/// let y = fc.forward(&Tensor::zeros(&[2, 8]), Mode::Eval)?;
/// assert_eq!(y.dims(), &[2, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Parameter,
    bias: Parameter,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-normal weights and zero bias.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        let weight = init::kaiming_normal(&[out_features, in_features], in_features, rng);
        Linear {
            weight: Parameter::new("weight", weight),
            bias: Parameter::new("bias", Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features (= number of neurons in this layer).
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Linear {
    fn name(&self) -> String {
        format!("linear({}→{})", self.in_features, self.out_features)
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor, NnError> {
        if input.ndim() != 2 || input.dims()[1] != self.in_features {
            return Err(NnError::InvalidInput {
                layer: self.name(),
                expected: format!("[batch, {}]", self.in_features),
                actual: input.dims().to_vec(),
            });
        }
        cache_input(&mut self.cached_input, input);
        // y = x Wᵀ + b
        let (m, k, n) = (input.dims()[0], self.in_features, self.out_features);
        let bias = self.bias.data().as_slice();
        match self.weight.native() {
            // Reduced-precision weights go through the dispatching kernels,
            // which fuse the bias add and decode words on the fly.
            Some(NativeParam::F16(w)) => {
                let mut y = vec![0.0f32; m * n];
                simd::matmul_f16(input.as_slice(), w.words(), Some(bias), &mut y, m, k, n);
                Ok(Tensor::from_vec(y, &[m, n])?)
            }
            Some(NativeParam::Int8(w)) => {
                let mut y = vec![0.0f32; m * n];
                simd::matmul_i8(
                    input.as_slice(),
                    w.q(),
                    w.scales(),
                    w.zero_points(),
                    Some(bias),
                    &mut y,
                    m,
                    k,
                    n,
                );
                Ok(Tensor::from_vec(y, &[m, n])?)
            }
            None => {
                let mut y = input.matmul_nt(self.weight.data())?;
                for row in y.as_mut_slice().chunks_mut(n) {
                    for (v, b) in row.iter_mut().zip(bias) {
                        *v += b;
                    }
                }
                Ok(y)
            }
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        if let Some(native) = self.weight.native() {
            return Err(NnError::QuantizedBackward {
                layer: self.name(),
                precision: native.precision(),
            });
        }
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward(self.name()))?;
        if grad_output.ndim() != 2
            || grad_output.dims()[0] != input.dims()[0]
            || grad_output.dims()[1] != self.out_features
        {
            return Err(NnError::InvalidInput {
                layer: self.name(),
                expected: format!("[batch, {}] gradient", self.out_features),
                actual: grad_output.dims().to_vec(),
            });
        }
        // dW = gᵀ x, db = Σ_batch g, dx = g W — the matrix gradients are
        // accumulated straight into the parameter gradients (no temporary).
        let batch = grad_output.dims()[0];
        matmul_into(
            Layout::Tn,
            grad_output.as_slice(),
            input.as_slice(),
            self.weight.grad_mut().as_mut_slice(),
            self.out_features,
            batch,
            self.in_features,
            true,
        );
        let bgrad = self.bias.grad_mut().as_mut_slice();
        for row in grad_output.as_slice().chunks_exact(self.out_features) {
            for (b, g) in bgrad.iter_mut().zip(row) {
                *b += g;
            }
        }
        Ok(grad_output.matmul(self.weight.data())?)
    }

    fn params(&self) -> Vec<&Parameter> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn spec(&self) -> Result<crate::spec::LayerSpec, NnError> {
        Ok(crate::spec::LayerSpec::Linear {
            in_features: self.in_features,
            out_features: self.out_features,
        })
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_linear() -> Linear {
        let mut rng = StdRng::seed_from_u64(11);
        let mut fc = Linear::new(3, 2, &mut rng);
        // Overwrite with a known weight matrix for deterministic assertions.
        *fc.weight.data_mut() =
            Tensor::from_vec(vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.5], &[2, 3]).unwrap();
        *fc.bias.data_mut() = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        fc
    }

    #[test]
    fn forward_matches_hand_computation() {
        let mut fc = small_linear();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let y = fc.forward(&x, Mode::Train).unwrap();
        // Row 0: 1*1 + 2*0 + 3*(-1) + 0.5 = -1.5
        // Row 1: 1*2 + 2*1 + 3*0.5 - 0.5 = 5.0
        assert_eq!(y.as_slice(), &[-1.5, 5.0]);
    }

    #[test]
    fn forward_rejects_wrong_width() {
        let mut fc = small_linear();
        assert!(fc.forward(&Tensor::zeros(&[1, 4]), Mode::Eval).is_err());
        assert!(fc.forward(&Tensor::zeros(&[3]), Mode::Eval).is_err());
    }

    #[test]
    fn backward_produces_correct_shapes_and_grads() {
        let mut fc = small_linear();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 0.5, -1.0, 2.0], &[2, 3]).unwrap();
        fc.forward(&x, Mode::Train).unwrap();
        let g = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let gx = fc.backward(&g).unwrap();
        assert_eq!(gx.dims(), &[2, 3]);
        // db = column sums of g
        assert_eq!(fc.bias.grad().as_slice(), &[1.0, 1.0]);
        // dW row 0 = g[:,0]ᵀ x = 1*x_0 = [1, 2, 3]
        assert_eq!(&fc.weight.grad().as_slice()[..3], &[1.0, 2.0, 3.0]);
        // dW row 1 = g[:,1]ᵀ x = 1*x_1 = [0.5, -1, 2]
        assert_eq!(&fc.weight.grad().as_slice()[3..], &[0.5, -1.0, 2.0]);
        // dx row 0 = g_0 W = 1*[1,0,-1]
        assert_eq!(&gx.as_slice()[..3], &[1.0, 0.0, -1.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut fc = small_linear();
        assert!(matches!(
            fc.backward(&Tensor::zeros(&[1, 2])),
            Err(NnError::BackwardBeforeForward(_))
        ));
    }

    #[test]
    fn backward_rejects_mismatched_gradient() {
        let mut fc = small_linear();
        fc.forward(&Tensor::zeros(&[2, 3]), Mode::Train).unwrap();
        assert!(fc.backward(&Tensor::zeros(&[2, 5])).is_err());
        assert!(fc.backward(&Tensor::zeros(&[1, 2])).is_err());
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        // Numerical gradient check of dL/dW where L = sum(forward(x)).
        let mut rng = StdRng::seed_from_u64(3);
        let mut fc = Linear::new(4, 3, &mut rng);
        let x = init::uniform(&[2, 4], -1.0, 1.0, &mut rng);
        let eps = 1e-3f32;

        fc.forward(&x, Mode::Train).unwrap();
        let ones = Tensor::ones(&[2, 3]);
        fc.backward(&ones).unwrap();
        let analytic = fc.weight.grad().clone();

        for idx in [0usize, 5, 11] {
            let orig = fc.weight.data().as_slice()[idx];
            fc.weight.data_mut().as_mut_slice()[idx] = orig + eps;
            let plus = fc.forward(&x, Mode::Train).unwrap().sum();
            fc.weight.data_mut().as_mut_slice()[idx] = orig - eps;
            let minus = fc.forward(&x, Mode::Train).unwrap().sum();
            fc.weight.data_mut().as_mut_slice()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            assert!((a - numeric).abs() < 1e-2, "idx {idx}: {a} vs {numeric}");
        }
    }

    #[test]
    fn params_expose_weight_and_bias() {
        let fc = small_linear();
        let names: Vec<&str> = fc.params().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["weight", "bias"]);
        assert_eq!(fc.in_features(), 3);
        assert_eq!(fc.out_features(), 2);
    }
}
