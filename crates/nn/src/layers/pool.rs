//! Spatial pooling layers.

use crate::layers::{Layer, Mode};
use crate::NnError;
use fitact_tensor::{conv_output_size, Tensor};

/// Max pooling over square windows of a `[batch, channels, height, width]`
/// input.
///
/// # Example
///
/// ```
/// use fitact_nn::{layers::MaxPool2d, Layer, Mode};
/// use fitact_tensor::Tensor;
///
/// # fn main() -> Result<(), fitact_nn::NnError> {
/// let mut pool = MaxPool2d::new(2, 2);
/// let y = pool.forward(&Tensor::zeros(&[1, 3, 8, 8]), Mode::Eval)?;
/// assert_eq!(y.dims(), &[1, 3, 4, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    cache: Option<PoolCache>,
}

#[derive(Debug, Clone)]
struct PoolCache {
    input_dims: Vec<usize>,
    /// Flat input index of the maximum for every output element. The vector
    /// is reused across forward calls (resized, never reallocated once warm).
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer with a square `kernel` and `stride`.
    pub fn new(kernel: usize, stride: usize) -> Self {
        MaxPool2d {
            kernel,
            stride,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> String {
        format!("maxpool2d(k{}, s{})", self.kernel, self.stride)
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor, NnError> {
        if input.ndim() != 4 {
            return Err(NnError::InvalidInput {
                layer: self.name(),
                expected: "[batch, channels, h, w]".into(),
                actual: input.dims().to_vec(),
            });
        }
        let (batch, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let (out_h, out_w) = conv_output_size((h, w), (self.kernel, self.kernel), self.stride, 0)?;
        let x = input.as_slice();
        let mut out = Tensor::zeros(&[batch, c, out_h, out_w]);
        // Reuse the previous cache's argmax storage instead of reallocating.
        let mut argmax = match self.cache.take() {
            Some(cache) => cache.argmax,
            None => Vec::new(),
        };
        argmax.clear();
        argmax.resize(out.numel(), 0);
        {
            let o = out.as_mut_slice();
            let mut oi = 0usize;
            for n in 0..batch {
                for ch in 0..c {
                    let plane = (n * c + ch) * h * w;
                    for oy in 0..out_h {
                        for ox in 0..out_w {
                            let mut best = f32::NEG_INFINITY;
                            let mut best_idx = 0usize;
                            for ky in 0..self.kernel {
                                for kx in 0..self.kernel {
                                    let iy = oy * self.stride + ky;
                                    let ix = ox * self.stride + kx;
                                    let idx = plane + iy * w + ix;
                                    if x[idx] > best {
                                        best = x[idx];
                                        best_idx = idx;
                                    }
                                }
                            }
                            o[oi] = best;
                            argmax[oi] = best_idx;
                            oi += 1;
                        }
                    }
                }
            }
        }
        self.cache = Some(PoolCache {
            input_dims: input.dims().to_vec(),
            argmax,
        });
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let cache = self
            .cache
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward(self.name()))?;
        if grad_output.numel() != cache.argmax.len() {
            return Err(NnError::InvalidInput {
                layer: self.name(),
                expected: format!("gradient with {} elements", cache.argmax.len()),
                actual: grad_output.dims().to_vec(),
            });
        }
        let mut dx = Tensor::zeros(&cache.input_dims);
        let dxs = dx.as_mut_slice();
        for (g, &src) in grad_output.as_slice().iter().zip(&cache.argmax) {
            dxs[src] += g;
        }
        Ok(dx)
    }

    fn spec(&self) -> Result<crate::spec::LayerSpec, NnError> {
        Ok(crate::spec::LayerSpec::MaxPool2d {
            kernel: self.kernel,
            stride: self.stride,
        })
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Global average pooling: `[batch, channels, h, w] → [batch, channels]`.
///
/// Used as the head of the CIFAR-scale ResNet50.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    cached_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { cached_dims: None }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> String {
        "global_avg_pool".into()
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor, NnError> {
        if input.ndim() != 4 {
            return Err(NnError::InvalidInput {
                layer: self.name(),
                expected: "[batch, channels, h, w]".into(),
                actual: input.dims().to_vec(),
            });
        }
        let (batch, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        self.cached_dims = Some(input.dims().to_vec());
        let spatial = (h * w) as f32;
        let x = input.as_slice();
        let mut out = Tensor::zeros(&[batch, c]);
        let o = out.as_mut_slice();
        for n in 0..batch {
            for ch in 0..c {
                let base = (n * c + ch) * h * w;
                o[n * c + ch] = x[base..base + h * w].iter().sum::<f32>() / spatial;
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let dims = self
            .cached_dims
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward(self.name()))?;
        let (batch, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        if grad_output.dims() != [batch, c] {
            return Err(NnError::InvalidInput {
                layer: self.name(),
                expected: format!("[{batch}, {c}] gradient"),
                actual: grad_output.dims().to_vec(),
            });
        }
        let scale = 1.0 / (h * w) as f32;
        let g = grad_output.as_slice();
        let mut dx = Tensor::zeros(dims);
        let dxs = dx.as_mut_slice();
        for n in 0..batch {
            for ch in 0..c {
                let base = (n * c + ch) * h * w;
                let val = g[n * c + ch] * scale;
                for v in &mut dxs[base..base + h * w] {
                    *v = val;
                }
            }
        }
        Ok(dx)
    }

    fn spec(&self) -> Result<crate::spec::LayerSpec, NnError> {
        Ok(crate::spec::LayerSpec::GlobalAvgPool)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_window_maxima() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = pool.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_gradient_to_maxima() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0], //
            &[1, 1, 2, 2],
        )
        .unwrap();
        pool.forward(&x, Mode::Eval).unwrap();
        let g = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap();
        let dx = pool.backward(&g).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn maxpool_rejects_bad_input_and_premature_backward() {
        let mut pool = MaxPool2d::new(2, 2);
        assert!(pool.forward(&Tensor::zeros(&[4, 4]), Mode::Eval).is_err());
        assert!(matches!(
            pool.backward(&Tensor::zeros(&[1, 1, 1, 1])),
            Err(NnError::BackwardBeforeForward(_))
        ));
        pool.forward(&Tensor::zeros(&[1, 1, 4, 4]), Mode::Eval)
            .unwrap();
        assert!(pool.backward(&Tensor::zeros(&[1, 1, 4, 4])).is_err());
    }

    #[test]
    fn global_avg_pool_averages_planes() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let y = pool.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.as_slice(), &[2.5, 25.0]);
    }

    #[test]
    fn global_avg_pool_backward_spreads_gradient() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::ones(&[1, 1, 2, 2]);
        pool.forward(&x, Mode::Eval).unwrap();
        let g = Tensor::from_vec(vec![8.0], &[1, 1]).unwrap();
        let dx = pool.backward(&g).unwrap();
        assert_eq!(dx.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn global_avg_pool_errors() {
        let mut pool = GlobalAvgPool::new();
        assert!(pool.forward(&Tensor::zeros(&[2, 2]), Mode::Eval).is_err());
        assert!(matches!(
            pool.backward(&Tensor::zeros(&[1, 1])),
            Err(NnError::BackwardBeforeForward(_))
        ));
        pool.forward(&Tensor::zeros(&[1, 2, 2, 2]), Mode::Eval)
            .unwrap();
        assert!(pool.backward(&Tensor::zeros(&[1, 3])).is_err());
    }
}
