//! Adapter that hosts an [`Activation`] inside a layer stack.

use crate::activation::Activation;
use crate::layers::{Layer, Mode};
use crate::{NnError, Parameter, ReLU};
use fitact_tensor::Tensor;

/// A network position that applies an activation function to a feature map.
///
/// `ActivationLayer` is the *slot* that protection schemes operate on: a model
/// is built with plain [`ReLU`] activations, and the FitAct workflow later
/// replaces the boxed activation in every slot with GBReLU / Clip-Act /
/// Ranger / FitReLU without touching the rest of the network.
///
/// The slot records the per-sample feature shape (for example `[64, 32, 32]`
/// after the first VGG16 convolution), which is what a per-neuron activation
/// needs to size its bound tensor.
#[derive(Debug, Clone)]
pub struct ActivationLayer {
    activation: Box<dyn Activation>,
    feature_shape: Vec<usize>,
    label: String,
}

impl ActivationLayer {
    /// Creates a slot holding a plain ReLU for a feature map of the given
    /// per-sample shape. `label` identifies the slot in diagnostics (for
    /// example `"features.1"`).
    pub fn relu(label: impl Into<String>, feature_shape: &[usize]) -> Self {
        ActivationLayer {
            activation: Box::new(ReLU::new()),
            feature_shape: feature_shape.to_vec(),
            label: label.into(),
        }
    }

    /// Creates a slot holding an arbitrary activation.
    pub fn with_activation(
        label: impl Into<String>,
        feature_shape: &[usize],
        activation: Box<dyn Activation>,
    ) -> Self {
        ActivationLayer {
            activation,
            feature_shape: feature_shape.to_vec(),
            label: label.into(),
        }
    }

    /// The per-sample feature shape this slot operates on.
    pub fn feature_shape(&self) -> &[usize] {
        &self.feature_shape
    }

    /// Number of neurons (feature elements per sample) in this slot.
    pub fn num_neurons(&self) -> usize {
        self.feature_shape.iter().product()
    }

    /// The slot's diagnostic label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The currently installed activation.
    pub fn activation(&self) -> &dyn Activation {
        self.activation.as_ref()
    }

    /// Mutable access to the currently installed activation.
    pub fn activation_mut(&mut self) -> &mut dyn Activation {
        self.activation.as_mut()
    }

    /// Replaces the installed activation, returning the previous one.
    pub fn replace_activation(&mut self, activation: Box<dyn Activation>) -> Box<dyn Activation> {
        std::mem::replace(&mut self.activation, activation)
    }
}

impl Layer for ActivationLayer {
    fn name(&self) -> String {
        format!("act[{}]({})", self.label, self.activation.name())
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor, NnError> {
        if input.ndim() < 2 || input.dims()[1..] != self.feature_shape[..] {
            return Err(NnError::InvalidInput {
                layer: self.name(),
                expected: format!("[batch, {:?}]", self.feature_shape),
                actual: input.dims().to_vec(),
            });
        }
        // Observe-only detection telemetry: when a ViolationTrace is captured
        // on this thread, record how many pre-activation values exceed the
        // installed bound. Costs one thread-local check when nobody listens.
        if crate::trace::is_active() {
            crate::trace::record(
                &self.label,
                self.activation.count_violations(input),
                input.numel() as u64,
            );
        }
        self.activation.forward(input)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        self.activation.backward(grad_output)
    }

    fn params(&self) -> Vec<&Parameter> {
        self.activation.params()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        self.activation.params_mut()
    }

    fn activation_slots(&mut self) -> Vec<&mut ActivationLayer> {
        vec![self]
    }

    fn spec(&self) -> Result<crate::spec::LayerSpec, NnError> {
        Ok(crate::spec::LayerSpec::Activation {
            label: self.label.clone(),
            feature_shape: self.feature_shape.clone(),
            activation: self.activation.spec()?,
        })
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_slot_applies_relu() {
        let mut slot = ActivationLayer::relu("fc1", &[4]);
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[1, 4]).unwrap();
        let y = slot.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        assert_eq!(slot.num_neurons(), 4);
        assert_eq!(slot.label(), "fc1");
        assert_eq!(slot.feature_shape(), &[4]);
        assert!(slot.name().contains("relu"));
    }

    #[test]
    fn forward_validates_feature_shape() {
        let mut slot = ActivationLayer::relu("conv1", &[2, 3, 3]);
        assert!(slot
            .forward(&Tensor::zeros(&[1, 2, 3, 3]), Mode::Eval)
            .is_ok());
        assert!(slot
            .forward(&Tensor::zeros(&[1, 2, 4, 4]), Mode::Eval)
            .is_err());
        assert!(slot.forward(&Tensor::zeros(&[6]), Mode::Eval).is_err());
    }

    #[test]
    fn replace_activation_swaps_behaviour() {
        let mut slot = ActivationLayer::relu("fc", &[2]);
        let old = slot.replace_activation(Box::new(ReLU::new()));
        assert_eq!(old.name(), "relu");
        // Slot still works after replacement.
        let y = slot
            .forward(
                &Tensor::from_vec(vec![-1.0, 1.0], &[1, 2]).unwrap(),
                Mode::Eval,
            )
            .unwrap();
        assert_eq!(y.as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn activation_slots_returns_self() {
        let mut slot = ActivationLayer::relu("fc", &[2]);
        assert_eq!(slot.activation_slots().len(), 1);
    }

    #[test]
    fn backward_delegates_to_activation() {
        let mut slot = ActivationLayer::relu("fc", &[2]);
        let x = Tensor::from_vec(vec![-1.0, 1.0], &[1, 2]).unwrap();
        slot.forward(&x, Mode::Train).unwrap();
        let g = slot.backward(&Tensor::ones(&[1, 2])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 1.0]);
    }
}
