//! Residual bottleneck blocks (ResNet).

use crate::layers::{join_path, ActivationLayer, BatchNorm2d, Conv2d, Layer, Mode, Sequential};
use crate::{NnError, Parameter};
use fitact_tensor::Tensor;
use rand::Rng;

/// The ResNet bottleneck residual block:
/// `1×1 conv → BN → act → 3×3 conv → BN → act → 1×1 conv → BN`, added to a
/// shortcut (identity, or a 1×1 conv + BN when the shape changes), followed by
/// a final activation.
///
/// Activations are hosted in [`ActivationLayer`] slots so the FitAct workflow
/// can replace them inside residual blocks exactly as it does in plain
/// sequential stacks.
#[derive(Debug, Clone)]
pub struct Bottleneck {
    main: Sequential,
    shortcut: Option<Sequential>,
    final_act: ActivationLayer,
    cached_input: Option<Tensor>,
}

impl Bottleneck {
    /// Expansion factor of the bottleneck (output channels = `planes * 4`).
    pub const EXPANSION: usize = 4;

    /// Creates a bottleneck block.
    ///
    /// * `in_channels` — channels of the incoming feature map,
    /// * `planes` — internal width; the block outputs `planes * 4` channels,
    /// * `stride` — stride of the 3×3 convolution (2 for down-sampling stages),
    /// * `spatial` — input spatial size `(h, w)`, needed to size the
    ///   activation slots,
    /// * `label` — diagnostic prefix for the activation slots.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        planes: usize,
        stride: usize,
        spatial: (usize, usize),
        label: &str,
        rng: &mut R,
    ) -> Result<Self, NnError> {
        if planes == 0 || in_channels == 0 || stride == 0 {
            return Err(NnError::InvalidConfig(
                "bottleneck requires non-zero channels, planes and stride".into(),
            ));
        }
        let out_channels = planes * Self::EXPANSION;
        let (h, w) = spatial;
        let (out_h, out_w) = (h.div_ceil(stride), w.div_ceil(stride));

        let mut main = Sequential::new();
        main.push(Box::new(Conv2d::new(in_channels, planes, 1, 1, 0, rng)));
        main.push(Box::new(BatchNorm2d::new(planes)));
        main.push(Box::new(ActivationLayer::relu(
            format!("{label}.act1"),
            &[planes, h, w],
        )));
        main.push(Box::new(Conv2d::new(planes, planes, 3, stride, 1, rng)));
        main.push(Box::new(BatchNorm2d::new(planes)));
        main.push(Box::new(ActivationLayer::relu(
            format!("{label}.act2"),
            &[planes, out_h, out_w],
        )));
        main.push(Box::new(Conv2d::new(planes, out_channels, 1, 1, 0, rng)));
        main.push(Box::new(BatchNorm2d::new(out_channels)));

        let shortcut = if stride != 1 || in_channels != out_channels {
            let mut s = Sequential::new();
            s.push(Box::new(Conv2d::new(
                in_channels,
                out_channels,
                1,
                stride,
                0,
                rng,
            )));
            s.push(Box::new(BatchNorm2d::new(out_channels)));
            Some(s)
        } else {
            None
        };

        Ok(Bottleneck {
            main,
            shortcut,
            final_act: ActivationLayer::relu(
                format!("{label}.act3"),
                &[out_channels, out_h, out_w],
            ),
            cached_input: None,
        })
    }

    /// Returns `true` if the block uses a projection shortcut.
    pub fn has_projection(&self) -> bool {
        self.shortcut.is_some()
    }

    /// Reassembles a block from its three constituents (the inverse of
    /// [`Layer::spec`], used by the artifact loader).
    pub fn from_parts(
        main: Sequential,
        shortcut: Option<Sequential>,
        final_act: ActivationLayer,
    ) -> Self {
        Bottleneck {
            main,
            shortcut,
            final_act,
            cached_input: None,
        }
    }
}

impl Layer for Bottleneck {
    fn name(&self) -> String {
        format!("bottleneck(projection={})", self.has_projection())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        self.cached_input = Some(input.clone());
        let main_out = self.main.forward(input, mode)?;
        let shortcut_out = match &mut self.shortcut {
            Some(s) => s.forward(input, mode)?,
            None => input.clone(),
        };
        let summed = main_out.add(&shortcut_out)?;
        self.final_act.forward(&summed, mode)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        if self.cached_input.is_none() {
            return Err(NnError::BackwardBeforeForward(self.name()));
        }
        let grad_sum = self.final_act.backward(grad_output)?;
        let grad_main = self.main.backward(&grad_sum)?;
        let grad_shortcut = match &mut self.shortcut {
            Some(s) => s.backward(&grad_sum)?,
            None => grad_sum,
        };
        Ok(grad_main.add(&grad_shortcut)?)
    }

    fn params(&self) -> Vec<&Parameter> {
        let mut out = self.main.params();
        if let Some(s) = &self.shortcut {
            out.extend(s.params());
        }
        out.extend(self.final_act.params());
        out
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut out = self.main.params_mut();
        if let Some(s) = &mut self.shortcut {
            out.extend(s.params_mut());
        }
        out.extend(self.final_act.params_mut());
        out
    }

    fn visit_params(&self, prefix: &str, visitor: &mut dyn FnMut(&str, &Parameter)) {
        self.main.visit_params(&join_path(prefix, "main"), visitor);
        if let Some(s) = &self.shortcut {
            s.visit_params(&join_path(prefix, "shortcut"), visitor);
        }
        self.final_act
            .visit_params(&join_path(prefix, "act3"), visitor);
    }

    fn visit_params_mut(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Parameter)) {
        self.main
            .visit_params_mut(&join_path(prefix, "main"), visitor);
        if let Some(s) = &mut self.shortcut {
            s.visit_params_mut(&join_path(prefix, "shortcut"), visitor);
        }
        self.final_act
            .visit_params_mut(&join_path(prefix, "act3"), visitor);
    }

    fn activation_slots(&mut self) -> Vec<&mut ActivationLayer> {
        let mut slots = self.main.activation_slots();
        if let Some(s) = &mut self.shortcut {
            slots.extend(s.activation_slots());
        }
        slots.extend(self.final_act.activation_slots());
        slots
    }

    fn spec(&self) -> Result<crate::spec::LayerSpec, NnError> {
        Ok(crate::spec::LayerSpec::Bottleneck {
            main: self.main.child_specs()?,
            shortcut: match &self.shortcut {
                Some(s) => Some(s.child_specs()?),
                None => None,
            },
            final_act: Box::new(Layer::spec(&self.final_act)?),
        })
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_shortcut_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut block = Bottleneck::new(16, 4, 1, (8, 8), "b0", &mut rng).unwrap();
        assert!(!block.has_projection());
        let y = block
            .forward(&Tensor::zeros(&[2, 16, 8, 8]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[2, 16, 8, 8]);
    }

    #[test]
    fn projection_shortcut_changes_channels_and_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut block = Bottleneck::new(16, 8, 2, (8, 8), "b1", &mut rng).unwrap();
        assert!(block.has_projection());
        let y = block
            .forward(&Tensor::zeros(&[1, 16, 8, 8]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[1, 32, 4, 4]);
    }

    #[test]
    fn backward_produces_input_shaped_gradient() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut block = Bottleneck::new(8, 2, 1, (4, 4), "b2", &mut rng).unwrap();
        let x = fitact_tensor::init::uniform(&[2, 8, 4, 4], -1.0, 1.0, &mut rng);
        let y = block.forward(&x, Mode::Train).unwrap();
        let dx = block.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(dx.dims(), x.dims());
        assert!(dx.is_finite());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut block = Bottleneck::new(8, 2, 1, (4, 4), "b3", &mut rng).unwrap();
        assert!(matches!(
            block.backward(&Tensor::zeros(&[1, 8, 4, 4])),
            Err(NnError::BackwardBeforeForward(_))
        ));
    }

    #[test]
    fn activation_slots_cover_all_three_relus() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut block = Bottleneck::new(8, 2, 1, (4, 4), "blk", &mut rng).unwrap();
        let labels: Vec<String> = block
            .activation_slots()
            .iter()
            .map(|s| s.label().to_owned())
            .collect();
        assert_eq!(labels, vec!["blk.act1", "blk.act2", "blk.act3"]);
    }

    #[test]
    fn visit_params_namespaces_main_and_shortcut() {
        let mut rng = StdRng::seed_from_u64(5);
        let block = Bottleneck::new(8, 4, 2, (4, 4), "blk", &mut rng).unwrap();
        let mut paths = Vec::new();
        block.visit_params("stage0/0", &mut |p, _| paths.push(p.to_owned()));
        assert!(paths.iter().any(|p| p.starts_with("stage0/0/main/0/")));
        assert!(paths.iter().any(|p| p.starts_with("stage0/0/shortcut/0/")));
        // Deterministic and duplicate-free.
        let mut sorted = paths.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), paths.len());
    }

    #[test]
    fn invalid_configuration_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(Bottleneck::new(0, 4, 1, (4, 4), "x", &mut rng).is_err());
        assert!(Bottleneck::new(8, 0, 1, (4, 4), "x", &mut rng).is_err());
        assert!(Bottleneck::new(8, 4, 0, (4, 4), "x", &mut rng).is_err());
    }

    #[test]
    fn residual_path_actually_adds() {
        // With the main path zeroed (all conv weights and BN gammas at zero the
        // BN betas at zero), the block reduces to act(shortcut(x)) — for the
        // identity shortcut that is ReLU(x).
        let mut rng = StdRng::seed_from_u64(7);
        let mut block = Bottleneck::new(8, 2, 1, (2, 2), "b", &mut rng).unwrap();
        for p in block.main.params_mut() {
            p.data_mut().fill(0.0);
        }
        let x = fitact_tensor::init::uniform(&[1, 8, 2, 2], -1.0, 1.0, &mut rng);
        let y = block.forward(&x, Mode::Eval).unwrap();
        let expected = x.map(|v| v.max(0.0));
        for (a, b) in y.as_slice().iter().zip(expected.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}
