//! Sequential composition of layers.

use crate::layers::{join_path, ActivationLayer, Layer, Mode};
use crate::{NnError, Parameter};
use fitact_tensor::Tensor;

/// A container that applies its child layers in order.
///
/// `Sequential` is itself a [`Layer`], so it can be nested (the ResNet
/// bottleneck block uses nested `Sequential`s for its main path and shortcut).
///
/// # Example
///
/// ```
/// use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
/// use fitact_nn::{Layer, Mode};
/// use fitact_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), fitact_nn::NnError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = Sequential::new();
/// net.push(Box::new(Linear::new(8, 4, &mut rng)));
/// net.push(Box::new(ActivationLayer::relu("fc1", &[4])));
/// net.push(Box::new(Linear::new(4, 2, &mut rng)));
/// let y = net.forward(&Tensor::zeros(&[5, 8]), Mode::Eval)?;
/// assert_eq!(y.dims(), &[5, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer to the end of the stack.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Builder-style [`Sequential::push`].
    #[must_use]
    pub fn with(mut self, layer: Box<dyn Layer>) -> Self {
        self.push(layer);
        self
    }

    /// Number of direct child layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if the container has no children.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Read-only access to the child layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the child layers.
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Resumes a forward pass at layer boundary `layer_idx`: applies layers
    /// `layer_idx..` to `input` and returns the stack's output.
    ///
    /// Boundary `k` is the value flowing *into* layer `k`, so
    /// `forward_from(0, x, mode)` is exactly [`Sequential::forward`] and
    /// `forward_from(self.len(), x, mode)` returns `x` unchanged (the output
    /// boundary).
    ///
    /// # Invariants for checkpoint-resumed evaluation
    ///
    /// Callers that substitute a **cached** boundary activation for the
    /// prefix (the fault-campaign engine in `fitact_faults`) rely on two
    /// properties, both of which hold for every layer in this crate:
    ///
    /// * layers are deterministic functions of `(input, parameters, mode)` in
    ///   [`Mode::Eval`] — internal caches may mutate, but never the output,
    /// * the cached input must have been produced by the *same* parameter
    ///   values currently held by layers `0..layer_idx`; resuming past a
    ///   layer whose parameters (or activation functions) have since changed
    ///   silently computes the wrong suffix.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `layer_idx > self.len()`, and
    /// propagates any layer error.
    pub fn forward_from(
        &mut self,
        layer_idx: usize,
        input: &Tensor,
        mode: Mode,
    ) -> Result<Tensor, NnError> {
        if layer_idx > self.layers.len() {
            return Err(NnError::InvalidConfig(format!(
                "cannot resume at layer {layer_idx} of a {}-layer stack",
                self.layers.len()
            )));
        }
        let mut layers = self.layers[layer_idx..].iter_mut();
        let Some(first) = layers.next() else {
            return Ok(input.clone());
        };
        // The first layer reads `input` in place, so resumed trials never
        // copy the cached checkpoint they start from.
        let mut x = first.forward(input, mode)?;
        for layer in layers {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    /// Runs a forward pass while exposing every layer-boundary activation to
    /// `inspect`.
    ///
    /// `inspect(k, t)` is called with boundary `k` — the tensor flowing into
    /// layer `k` — for `k` in `0..len`, and finally with `(len, output)`.
    /// The observed tensors are exactly the values [`Sequential::forward_from`]
    /// accepts at those boundaries, which is what the fault-campaign
    /// checkpoint capture snapshots.
    ///
    /// # Errors
    ///
    /// Propagates any layer error.
    pub fn forward_inspect(
        &mut self,
        input: &Tensor,
        mode: Mode,
        inspect: &mut dyn FnMut(usize, &Tensor),
    ) -> Result<Tensor, NnError> {
        let mut x = input.clone();
        for (k, layer) in self.layers.iter_mut().enumerate() {
            inspect(k, &x);
            x = layer.forward(&x, mode)?;
        }
        inspect(self.layers.len(), &x);
        Ok(x)
    }

    /// Serializable specs of the direct children, in forward order (the
    /// payload of a [`crate::spec::LayerSpec::Sequential`]).
    ///
    /// # Errors
    ///
    /// Propagates the first child that does not support serialisation.
    pub fn child_specs(&self) -> Result<Vec<crate::spec::LayerSpec>, NnError> {
        self.layers.iter().map(|l| l.spec()).collect()
    }

    /// Index of the first direct child layer that contains an activation slot
    /// (at any nesting depth), or `None` if no child has one.
    ///
    /// Datapath fault models corrupt activation outputs, so this is the
    /// earliest layer boundary such a model can affect — everything before it
    /// is reusable from a clean checkpoint.
    pub fn first_activation_layer(&mut self) -> Option<usize> {
        self.layers
            .iter_mut()
            .position(|layer| !layer.activation_slots().is_empty())
    }
}

impl FromIterator<Box<dyn Layer>> for Sequential {
    fn from_iter<I: IntoIterator<Item = Box<dyn Layer>>>(iter: I) -> Self {
        Sequential {
            layers: iter.into_iter().collect(),
        }
    }
}

impl Extend<Box<dyn Layer>> for Sequential {
    fn extend<I: IntoIterator<Item = Box<dyn Layer>>>(&mut self, iter: I) {
        self.layers.extend(iter);
    }
}

impl Layer for Sequential {
    fn name(&self) -> String {
        format!("sequential({} layers)", self.layers.len())
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        // Forward is the resume-at-the-input special case, so the two paths
        // cannot drift apart numerically.
        self.forward_from(0, input, mode)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    fn params(&self) -> Vec<&Parameter> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn visit_params(&self, prefix: &str, visitor: &mut dyn FnMut(&str, &Parameter)) {
        for (i, layer) in self.layers.iter().enumerate() {
            let child_prefix = join_path(prefix, &i.to_string());
            layer.visit_params(&child_prefix, visitor);
        }
    }

    fn visit_params_mut(&mut self, prefix: &str, visitor: &mut dyn FnMut(&str, &mut Parameter)) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let child_prefix = join_path(prefix, &i.to_string());
            layer.visit_params_mut(&child_prefix, visitor);
        }
    }

    fn activation_slots(&mut self) -> Vec<&mut ActivationLayer> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.activation_slots())
            .collect()
    }

    fn spec(&self) -> Result<crate::spec::LayerSpec, NnError> {
        Ok(crate::spec::LayerSpec::Sequential(self.child_specs()?))
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_layer_net() -> Sequential {
        let mut rng = StdRng::seed_from_u64(0);
        Sequential::new()
            .with(Box::new(Linear::new(4, 3, &mut rng)))
            .with(Box::new(ActivationLayer::relu("h", &[3])))
            .with(Box::new(Linear::new(3, 2, &mut rng)))
    }

    #[test]
    fn forward_chains_layers() {
        let mut net = two_layer_net();
        let y = net.forward(&Tensor::zeros(&[7, 4]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[7, 2]);
        assert_eq!(net.len(), 3);
        assert!(!net.is_empty());
    }

    #[test]
    fn backward_runs_in_reverse() {
        let mut net = two_layer_net();
        net.forward(&Tensor::ones(&[2, 4]), Mode::Train).unwrap();
        let dx = net.backward(&Tensor::ones(&[2, 2])).unwrap();
        assert_eq!(dx.dims(), &[2, 4]);
    }

    #[test]
    fn params_are_concatenated_in_order() {
        let net = two_layer_net();
        // linear(4→3): weight+bias, relu: none, linear(3→2): weight+bias.
        assert_eq!(net.params().len(), 4);
    }

    #[test]
    fn visit_params_uses_child_indices() {
        let net = two_layer_net();
        let mut paths = Vec::new();
        net.visit_params("root", &mut |path, _p| paths.push(path.to_owned()));
        assert_eq!(
            paths,
            vec![
                "root/0/weight",
                "root/0/bias",
                "root/2/weight",
                "root/2/bias"
            ]
        );
    }

    #[test]
    fn visit_params_mut_matches_immutable_order() {
        let mut net = two_layer_net();
        let mut immutable = Vec::new();
        net.visit_params("", &mut |path, _| immutable.push(path.to_owned()));
        let mut mutable = Vec::new();
        net.visit_params_mut("", &mut |path, _| mutable.push(path.to_owned()));
        assert_eq!(immutable, mutable);
    }

    #[test]
    fn activation_slots_are_collected_recursively() {
        let mut rng = StdRng::seed_from_u64(1);
        let inner = Sequential::new().with(Box::new(ActivationLayer::relu("inner", &[2])));
        let mut outer = Sequential::new()
            .with(Box::new(Linear::new(2, 2, &mut rng)))
            .with(Box::new(inner))
            .with(Box::new(ActivationLayer::relu("outer", &[2])));
        let slots = outer.activation_slots();
        let labels: Vec<&str> = slots.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["inner", "outer"]);
    }

    #[test]
    fn forward_from_zero_matches_forward() {
        let mut net = two_layer_net();
        let x = Tensor::from_vec((0..28).map(|v| v as f32 * 0.1 - 1.0).collect(), &[7, 4]).unwrap();
        let full = net.forward(&x, Mode::Eval).unwrap();
        let resumed = net.forward_from(0, &x, Mode::Eval).unwrap();
        assert_eq!(full, resumed);
    }

    #[test]
    fn forward_from_every_boundary_matches_the_full_pass() {
        let mut net = two_layer_net();
        let x = Tensor::from_vec((0..12).map(|v| v as f32 * 0.3 - 2.0).collect(), &[3, 4]).unwrap();
        let mut boundaries: Vec<Tensor> = Vec::new();
        let full = net
            .forward_inspect(&x, Mode::Eval, &mut |k, t| {
                assert_eq!(k, boundaries.len(), "boundaries arrive in order");
                boundaries.push(t.clone());
            })
            .unwrap();
        assert_eq!(boundaries.len(), net.len() + 1);
        assert_eq!(boundaries[0], x, "boundary 0 is the input");
        assert_eq!(
            *boundaries.last().unwrap(),
            full,
            "last boundary is the output"
        );
        for (k, boundary) in boundaries.iter().enumerate() {
            let resumed = net.forward_from(k, boundary, Mode::Eval).unwrap();
            assert_eq!(resumed, full, "resume at boundary {k}");
        }
    }

    #[test]
    fn forward_from_rejects_out_of_range_boundaries() {
        let mut net = two_layer_net();
        let x = Tensor::zeros(&[1, 4]);
        assert!(net.forward_from(net.len() + 1, &x, Mode::Eval).is_err());
    }

    #[test]
    fn first_activation_layer_finds_nested_slots() {
        let mut net = two_layer_net();
        assert_eq!(net.first_activation_layer(), Some(1));
        let mut rng = StdRng::seed_from_u64(3);
        let inner = Sequential::new().with(Box::new(ActivationLayer::relu("inner", &[3])));
        let mut nested = Sequential::new()
            .with(Box::new(Linear::new(4, 3, &mut rng)))
            .with(Box::new(inner));
        assert_eq!(nested.first_activation_layer(), Some(1));
        let mut bare = Sequential::new().with(Box::new(Linear::new(2, 2, &mut rng)));
        assert_eq!(bare.first_activation_layer(), None);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net: Sequential = vec![Box::new(Linear::new(2, 2, &mut rng)) as Box<dyn Layer>]
            .into_iter()
            .collect();
        net.extend(vec![
            Box::new(ActivationLayer::relu("a", &[2])) as Box<dyn Layer>
        ]);
        assert_eq!(net.len(), 2);
        assert_eq!(net.layers().len(), 2);
        assert_eq!(net.layers_mut().len(), 2);
    }
}
