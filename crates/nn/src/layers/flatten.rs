//! Flattening of feature maps into vectors.

use crate::layers::{Layer, Mode};
use crate::NnError;
use fitact_tensor::Tensor;

/// Flattens `[batch, ...features]` into `[batch, prod(features)]`.
///
/// Used between the convolutional trunk and the fully-connected classifier of
/// AlexNet and VGG16.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_dims: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> String {
        "flatten".into()
    }

    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor, NnError> {
        if input.ndim() < 2 {
            return Err(NnError::InvalidInput {
                layer: self.name(),
                expected: "[batch, ...features]".into(),
                actual: input.dims().to_vec(),
            });
        }
        self.cached_dims = Some(input.dims().to_vec());
        let batch = input.dims()[0];
        let features: usize = input.dims()[1..].iter().product();
        Ok(input.reshape(&[batch, features])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let dims = self
            .cached_dims
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward(self.name()))?;
        Ok(grad_output.reshape(dims)?)
    }

    fn spec(&self) -> Result<crate::spec::LayerSpec, NnError> {
        Ok(crate::spec::LayerSpec::Flatten)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_and_unflatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]).unwrap();
        let y = f.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 12]);
        let g = f.backward(&y).unwrap();
        assert_eq!(g.dims(), x.dims());
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    fn flatten_rejects_scalars_and_premature_backward() {
        let mut f = Flatten::new();
        assert!(f.forward(&Tensor::zeros(&[4]), Mode::Eval).is_err());
        assert!(matches!(
            f.backward(&Tensor::zeros(&[1, 4])),
            Err(NnError::BackwardBeforeForward(_))
        ));
    }
}
