//! Batch normalisation.

use crate::layers::{Layer, Mode};
use crate::{NnError, Parameter};
use fitact_tensor::Tensor;

/// Per-channel batch normalisation over `[batch, channels, height, width]`.
///
/// In [`Mode::Train`] the layer normalises with batch statistics and updates
/// exponential running averages; in [`Mode::Eval`] it uses the running
/// averages. `gamma`/`beta` are trainable parameters, the running statistics
/// are buffers — all four live in parameter memory and are therefore part of
/// the fault space.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Parameter,
    beta: Parameter,
    running_mean: Parameter,
    running_var: Parameter,
    channels: usize,
    eps: f32,
    momentum: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    mode: Mode,
    dims: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps with the usual
    /// defaults (`eps = 1e-5`, `momentum = 0.1`).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Parameter::new("gamma", Tensor::ones(&[channels])),
            beta: Parameter::new("beta", Tensor::zeros(&[channels])),
            running_mean: Parameter::buffer("running_mean", Tensor::zeros(&[channels])),
            running_var: Parameter::buffer("running_var", Tensor::ones(&[channels])),
            channels,
            eps: 1e-5,
            momentum: 0.1,
            cache: None,
        }
    }

    /// Number of normalised channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize), NnError> {
        if input.ndim() != 4 || input.dims()[1] != self.channels {
            return Err(NnError::InvalidInput {
                layer: self.name(),
                expected: format!("[batch, {}, h, w]", self.channels),
                actual: input.dims().to_vec(),
            });
        }
        Ok((input.dims()[0], input.dims()[2], input.dims()[3]))
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> String {
        format!("batchnorm2d({})", self.channels)
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor, NnError> {
        let (batch, h, w) = self.check_input(input)?;
        let spatial = h * w;
        let per_channel = (batch * spatial) as f32;
        let c = self.channels;
        let x = input.as_slice();

        // Per-channel mean and variance (batch statistics in Train, running in Eval).
        let (mean, var): (Vec<f32>, Vec<f32>) = match mode {
            Mode::Train => {
                let mut mean = vec![0.0f32; c];
                let mut var = vec![0.0f32; c];
                for n in 0..batch {
                    for (ch, m) in mean.iter_mut().enumerate() {
                        let base = (n * c + ch) * spatial;
                        *m += x[base..base + spatial].iter().sum::<f32>();
                    }
                }
                for m in &mut mean {
                    *m /= per_channel;
                }
                for n in 0..batch {
                    for ch in 0..c {
                        let base = (n * c + ch) * spatial;
                        var[ch] += x[base..base + spatial]
                            .iter()
                            .map(|v| (v - mean[ch]) * (v - mean[ch]))
                            .sum::<f32>();
                    }
                }
                for v in &mut var {
                    *v /= per_channel;
                }
                // Update running statistics.
                let rm = self.running_mean.data_mut().as_mut_slice();
                let rv = self.running_var.data_mut().as_mut_slice();
                for ch in 0..c {
                    rm[ch] = (1.0 - self.momentum) * rm[ch] + self.momentum * mean[ch];
                    rv[ch] = (1.0 - self.momentum) * rv[ch] + self.momentum * var[ch];
                }
                (mean, var)
            }
            Mode::Eval => (
                self.running_mean.data().as_slice().to_vec(),
                self.running_var.data().as_slice().to_vec(),
            ),
        };

        let inv_std: Vec<f32> = var.iter().map(|v| 1.0 / (v + self.eps).sqrt()).collect();
        let gamma = self.gamma.data().as_slice();
        let beta = self.beta.data().as_slice();

        let mut x_hat = Tensor::zeros(input.dims());
        let mut out = Tensor::zeros(input.dims());
        {
            let xh = x_hat.as_mut_slice();
            let o = out.as_mut_slice();
            for n in 0..batch {
                for ch in 0..c {
                    let base = (n * c + ch) * spatial;
                    for i in base..base + spatial {
                        let normed = (x[i] - mean[ch]) * inv_std[ch];
                        xh[i] = normed;
                        o[i] = gamma[ch] * normed + beta[ch];
                    }
                }
            }
        }
        self.cache = Some(BnCache {
            x_hat,
            inv_std,
            mode,
            dims: input.dims().to_vec(),
        });
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let cache = self
            .cache
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward(self.name()))?;
        if grad_output.dims() != cache.dims.as_slice() {
            return Err(NnError::InvalidInput {
                layer: self.name(),
                expected: format!("gradient of shape {:?}", cache.dims),
                actual: grad_output.dims().to_vec(),
            });
        }
        let c = self.channels;
        let batch = cache.dims[0];
        let spatial = cache.dims[2] * cache.dims[3];
        let m = (batch * spatial) as f32;
        let g = grad_output.as_slice();
        let xh = cache.x_hat.as_slice();
        let gamma = self.gamma.data().as_slice();

        // Parameter gradients.
        let mut dgamma = vec![0.0f32; c];
        let mut dbeta = vec![0.0f32; c];
        for n in 0..batch {
            for ch in 0..c {
                let base = (n * c + ch) * spatial;
                for i in base..base + spatial {
                    dgamma[ch] += g[i] * xh[i];
                    dbeta[ch] += g[i];
                }
            }
        }

        let mut dx = Tensor::zeros(&cache.dims);
        let dxs = dx.as_mut_slice();
        match cache.mode {
            Mode::Train => {
                // dx = gamma * inv_std / m * (m*g - dbeta - x_hat * dgamma)
                for n in 0..batch {
                    for ch in 0..c {
                        let base = (n * c + ch) * spatial;
                        let scale = gamma[ch] * cache.inv_std[ch] / m;
                        for i in base..base + spatial {
                            dxs[i] = scale * (m * g[i] - dbeta[ch] - xh[i] * dgamma[ch]);
                        }
                    }
                }
            }
            Mode::Eval => {
                // Running statistics are constants: the layer is a per-channel
                // affine map, so dx = g * gamma * inv_std.
                for n in 0..batch {
                    for (ch, &gm) in gamma.iter().enumerate() {
                        let base = (n * c + ch) * spatial;
                        let scale = gm * cache.inv_std[ch];
                        for i in base..base + spatial {
                            dxs[i] = scale * g[i];
                        }
                    }
                }
            }
        }

        self.gamma
            .grad_mut()
            .add_assign(&Tensor::from_vec(dgamma, &[c])?)?;
        self.beta
            .grad_mut()
            .add_assign(&Tensor::from_vec(dbeta, &[c])?)?;
        Ok(dx)
    }

    fn params(&self) -> Vec<&Parameter> {
        vec![
            &self.gamma,
            &self.beta,
            &self.running_mean,
            &self.running_var,
        ]
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![
            &mut self.gamma,
            &mut self.beta,
            &mut self.running_mean,
            &mut self.running_var,
        ]
    }

    fn spec(&self) -> Result<crate::spec::LayerSpec, NnError> {
        Ok(crate::spec::LayerSpec::BatchNorm2d {
            channels: self.channels,
        })
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fitact_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn train_forward_normalises_each_channel() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        let x = init::normal(&[4, 2, 3, 3], 5.0, 2.0, &mut rng);
        let y = bn.forward(&x, Mode::Train).unwrap();
        // With gamma=1, beta=0 the output of each channel has ~zero mean, unit variance.
        let spatial = 9;
        for ch in 0..2 {
            let mut vals = Vec::new();
            for n in 0..4 {
                let base = (n * 2 + ch) * spatial;
                vals.extend_from_slice(&y.as_slice()[base..base + spatial]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ch} var {var}");
        }
    }

    #[test]
    fn running_stats_track_batch_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::full(&[2, 1, 2, 2], 10.0);
        for _ in 0..50 {
            bn.forward(&x, Mode::Train).unwrap();
        }
        // Constant input: batch mean 10, batch var 0.
        assert!((bn.running_mean.data().as_slice()[0] - 10.0).abs() < 0.1);
        assert!(bn.running_var.data().as_slice()[0] < 0.1);
    }

    #[test]
    fn eval_uses_running_statistics() {
        let mut bn = BatchNorm2d::new(1);
        // Set running stats manually: mean 2, var 4 → inv_std 0.5 (approx).
        bn.running_mean.data_mut().fill(2.0);
        bn.running_var.data_mut().fill(4.0);
        let x = Tensor::full(&[1, 1, 1, 1], 6.0);
        let y = bn.forward(&x, Mode::Eval).unwrap();
        assert!((y.as_slice()[0] - 2.0).abs() < 1e-3); // (6-2)/2 = 2
    }

    #[test]
    fn gamma_beta_scale_and_shift() {
        let mut bn = BatchNorm2d::new(1);
        bn.running_mean.data_mut().fill(0.0);
        bn.running_var.data_mut().fill(1.0);
        bn.gamma.data_mut().fill(3.0);
        bn.beta.data_mut().fill(-1.0);
        let x = Tensor::full(&[1, 1, 1, 1], 2.0);
        let y = bn.forward(&x, Mode::Eval).unwrap();
        assert!((y.as_slice()[0] - 5.0).abs() < 1e-3); // 3*2 - 1
    }

    #[test]
    fn rejects_wrong_channels() {
        let mut bn = BatchNorm2d::new(3);
        assert!(bn
            .forward(&Tensor::zeros(&[1, 2, 4, 4]), Mode::Train)
            .is_err());
        assert!(bn.forward(&Tensor::zeros(&[2, 4, 4]), Mode::Train).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut bn = BatchNorm2d::new(1);
        assert!(matches!(
            bn.backward(&Tensor::zeros(&[1, 1, 1, 1])),
            Err(NnError::BackwardBeforeForward(_))
        ));
    }

    #[test]
    fn train_backward_gradient_check() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = StdRng::seed_from_u64(1);
        let x = init::uniform(&[3, 2, 2, 2], -2.0, 2.0, &mut rng);
        bn.forward(&x, Mode::Train).unwrap();
        // Use a non-uniform output weighting so the normalisation terms matter.
        let gw = init::uniform(&[3, 2, 2, 2], 0.5, 1.5, &mut rng);
        let dx = bn.backward(&gw).unwrap();
        let eps = 1e-2f32;
        let loss = |bn: &mut BatchNorm2d, x: &Tensor| -> f32 {
            bn.forward(x, Mode::Train).unwrap().mul(&gw).unwrap().sum()
        };
        let mut x_pert = x.clone();
        for idx in [0usize, 5, 13, 23] {
            let orig = x.as_slice()[idx];
            x_pert.as_mut_slice()[idx] = orig + eps;
            let plus = loss(&mut bn, &x_pert);
            x_pert.as_mut_slice()[idx] = orig - eps;
            let minus = loss(&mut bn, &x_pert);
            x_pert.as_mut_slice()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let a = dx.as_slice()[idx];
            assert!(
                (a - numeric).abs() < 0.05,
                "idx {idx}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn eval_backward_is_affine_scaling() {
        let mut bn = BatchNorm2d::new(1);
        bn.running_var.data_mut().fill(3.0);
        bn.gamma.data_mut().fill(2.0);
        let x = Tensor::full(&[1, 1, 1, 1], 1.0);
        bn.forward(&x, Mode::Eval).unwrap();
        let g = Tensor::full(&[1, 1, 1, 1], 1.0);
        let dx = bn.backward(&g).unwrap();
        let expected = 2.0 / (3.0f32 + 1e-5).sqrt();
        assert!((dx.as_slice()[0] - expected).abs() < 1e-4);
    }

    #[test]
    fn params_include_buffers() {
        let bn = BatchNorm2d::new(4);
        let names: Vec<&str> = bn.params().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["gamma", "beta", "running_mean", "running_var"]);
        assert_eq!(bn.channels(), 4);
        // Buffers are not trainable, gamma/beta are.
        assert!(bn.params()[0].trainable());
        assert!(!bn.params()[2].trainable());
    }
}
