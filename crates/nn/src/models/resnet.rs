//! ResNet50 (CIFAR variant).

use crate::layers::{
    ActivationLayer, BatchNorm2d, Bottleneck, Conv2d, GlobalAvgPool, Linear, Sequential,
};
use crate::models::{ModelConfig, INPUT_CHANNELS, INPUT_SIZE};
use crate::{Network, NnError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of bottleneck blocks per stage in ResNet50.
const BLOCKS_PER_STAGE: [usize; 4] = [3, 4, 6, 3];
/// Internal width (planes) of the four stages before the expansion factor.
const STAGE_PLANES: [usize; 4] = [64, 128, 256, 512];
/// Stride of the first block in each stage.
const STAGE_STRIDES: [usize; 4] = [1, 2, 2, 2];

/// Builds the CIFAR-scale ResNet50 used in the paper's evaluation.
///
/// Structure: a 3×3 stem convolution with batch normalisation, four stages of
/// bottleneck blocks (`3/4/6/3` blocks with planes `64/128/256/512` and the
/// usual ×4 expansion), global average pooling and a linear classifier.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] if the configuration is invalid.
pub fn resnet50(config: &ModelConfig) -> Result<Network, NnError> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut net = Sequential::new();
    let mut size = INPUT_SIZE;

    // Stem: 3×3 convolution keeping the 32×32 resolution (the ImageNet 7×7/s2
    // stem and initial max-pool are dropped in CIFAR variants).
    let stem = config.scale(64);
    net.push(Box::new(Conv2d::new(
        INPUT_CHANNELS,
        stem,
        3,
        1,
        1,
        &mut rng,
    )));
    net.push(Box::new(BatchNorm2d::new(stem)));
    net.push(Box::new(ActivationLayer::relu("stem", &[stem, size, size])));

    let mut in_channels = stem;
    for (stage, ((blocks, planes), stride)) in BLOCKS_PER_STAGE
        .into_iter()
        .zip(STAGE_PLANES)
        .zip(STAGE_STRIDES)
        .enumerate()
    {
        let planes = config.scale(planes);
        for block in 0..blocks {
            let block_stride = if block == 0 { stride } else { 1 };
            let label = format!("stage{stage}.block{block}");
            let bottleneck = Bottleneck::new(
                in_channels,
                planes,
                block_stride,
                (size, size),
                &label,
                &mut rng,
            )?;
            net.push(Box::new(bottleneck));
            if block == 0 {
                size = size.div_ceil(block_stride);
            }
            in_channels = planes * Bottleneck::EXPANSION;
        }
    }

    net.push(Box::new(GlobalAvgPool::new()));
    net.push(Box::new(Linear::new(
        in_channels,
        config.num_classes,
        &mut rng,
    )));

    Ok(Network::new("resnet50", net))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use fitact_tensor::Tensor;

    fn tiny_config() -> ModelConfig {
        // Very narrow so the 50-layer topology stays fast in unit tests.
        ModelConfig::new(10).with_width(0.0626).with_seed(4)
    }

    #[test]
    fn forward_produces_class_logits() {
        let mut net = resnet50(&tiny_config()).unwrap();
        let y = net
            .forward(&Tensor::zeros(&[1, 3, 32, 32]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[1, 10]);
        assert!(y.is_finite());
    }

    #[test]
    fn has_expected_number_of_activation_slots() {
        // Stem ReLU + 3 ReLUs per bottleneck × 16 blocks = 49.
        let mut net = resnet50(&tiny_config()).unwrap();
        assert_eq!(net.activation_slots().len(), 1 + 3 * 16);
    }

    #[test]
    fn has_sixteen_bottleneck_blocks() {
        let net = resnet50(&tiny_config()).unwrap();
        let bottlenecks = net
            .root()
            .layers()
            .iter()
            .filter(|l| l.name().starts_with("bottleneck"))
            .count();
        assert_eq!(bottlenecks, BLOCKS_PER_STAGE.iter().sum::<usize>());
    }

    #[test]
    fn cifar100_head_has_100_outputs() {
        let cfg = ModelConfig::new(100).with_width(0.0626);
        let mut net = resnet50(&cfg).unwrap();
        let y = net
            .forward(&Tensor::zeros(&[1, 3, 32, 32]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[1, 100]);
    }

    #[test]
    fn full_width_parameter_count_is_resnet50_scale() {
        let net = resnet50(&ModelConfig::new(10)).unwrap();
        let params = net.num_parameters();
        // The CIFAR ResNet50 has ~23.5M parameters.
        assert!(params > 15_000_000, "got {params}");
        assert!(params < 40_000_000, "got {params}");
    }

    #[test]
    fn backward_pass_runs_in_train_mode() {
        let mut net = resnet50(&tiny_config()).unwrap();
        let x =
            fitact_tensor::init::uniform(&[1, 3, 32, 32], -1.0, 1.0, &mut StdRng::seed_from_u64(5));
        let y = net.forward(&x, Mode::Train).unwrap();
        let dx = net.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(dx.dims(), x.dims());
        assert!(dx.is_finite());
    }
}
